# Empty compiler generated dependencies file for smarco_baseline.
# This may be replaced when dependencies are built.
