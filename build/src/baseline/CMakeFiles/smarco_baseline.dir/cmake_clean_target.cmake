file(REMOVE_RECURSE
  "libsmarco_baseline.a"
)
