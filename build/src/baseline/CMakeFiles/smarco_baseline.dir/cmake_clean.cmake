file(REMOVE_RECURSE
  "CMakeFiles/smarco_baseline.dir/baseline_chip.cpp.o"
  "CMakeFiles/smarco_baseline.dir/baseline_chip.cpp.o.d"
  "libsmarco_baseline.a"
  "libsmarco_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
