file(REMOVE_RECURSE
  "libsmarco_workloads.a"
)
