file(REMOVE_RECURSE
  "CMakeFiles/smarco_workloads.dir/cdn.cpp.o"
  "CMakeFiles/smarco_workloads.dir/cdn.cpp.o.d"
  "CMakeFiles/smarco_workloads.dir/profile.cpp.o"
  "CMakeFiles/smarco_workloads.dir/profile.cpp.o.d"
  "CMakeFiles/smarco_workloads.dir/profile_stream.cpp.o"
  "CMakeFiles/smarco_workloads.dir/profile_stream.cpp.o.d"
  "CMakeFiles/smarco_workloads.dir/task.cpp.o"
  "CMakeFiles/smarco_workloads.dir/task.cpp.o.d"
  "libsmarco_workloads.a"
  "libsmarco_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
