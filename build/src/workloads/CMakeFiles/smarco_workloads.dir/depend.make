# Empty dependencies file for smarco_workloads.
# This may be replaced when dependencies are built.
