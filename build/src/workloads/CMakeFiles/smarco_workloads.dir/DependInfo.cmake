
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cdn.cpp" "src/workloads/CMakeFiles/smarco_workloads.dir/cdn.cpp.o" "gcc" "src/workloads/CMakeFiles/smarco_workloads.dir/cdn.cpp.o.d"
  "/root/repo/src/workloads/profile.cpp" "src/workloads/CMakeFiles/smarco_workloads.dir/profile.cpp.o" "gcc" "src/workloads/CMakeFiles/smarco_workloads.dir/profile.cpp.o.d"
  "/root/repo/src/workloads/profile_stream.cpp" "src/workloads/CMakeFiles/smarco_workloads.dir/profile_stream.cpp.o" "gcc" "src/workloads/CMakeFiles/smarco_workloads.dir/profile_stream.cpp.o.d"
  "/root/repo/src/workloads/task.cpp" "src/workloads/CMakeFiles/smarco_workloads.dir/task.cpp.o" "gcc" "src/workloads/CMakeFiles/smarco_workloads.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/smarco_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smarco_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
