file(REMOVE_RECURSE
  "CMakeFiles/smarco_noc.dir/direct_path.cpp.o"
  "CMakeFiles/smarco_noc.dir/direct_path.cpp.o.d"
  "CMakeFiles/smarco_noc.dir/network.cpp.o"
  "CMakeFiles/smarco_noc.dir/network.cpp.o.d"
  "CMakeFiles/smarco_noc.dir/packet.cpp.o"
  "CMakeFiles/smarco_noc.dir/packet.cpp.o.d"
  "CMakeFiles/smarco_noc.dir/ring.cpp.o"
  "CMakeFiles/smarco_noc.dir/ring.cpp.o.d"
  "libsmarco_noc.a"
  "libsmarco_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
