file(REMOVE_RECURSE
  "libsmarco_noc.a"
)
