# Empty compiler generated dependencies file for smarco_noc.
# This may be replaced when dependencies are built.
