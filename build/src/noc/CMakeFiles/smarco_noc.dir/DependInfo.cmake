
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/direct_path.cpp" "src/noc/CMakeFiles/smarco_noc.dir/direct_path.cpp.o" "gcc" "src/noc/CMakeFiles/smarco_noc.dir/direct_path.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/smarco_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/smarco_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/packet.cpp" "src/noc/CMakeFiles/smarco_noc.dir/packet.cpp.o" "gcc" "src/noc/CMakeFiles/smarco_noc.dir/packet.cpp.o.d"
  "/root/repo/src/noc/ring.cpp" "src/noc/CMakeFiles/smarco_noc.dir/ring.cpp.o" "gcc" "src/noc/CMakeFiles/smarco_noc.dir/ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smarco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smarco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smarco_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
