
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/instr_stream.cpp" "src/isa/CMakeFiles/smarco_isa.dir/instr_stream.cpp.o" "gcc" "src/isa/CMakeFiles/smarco_isa.dir/instr_stream.cpp.o.d"
  "/root/repo/src/isa/micro_op.cpp" "src/isa/CMakeFiles/smarco_isa.dir/micro_op.cpp.o" "gcc" "src/isa/CMakeFiles/smarco_isa.dir/micro_op.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smarco_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
