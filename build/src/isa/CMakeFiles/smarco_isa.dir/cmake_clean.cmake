file(REMOVE_RECURSE
  "CMakeFiles/smarco_isa.dir/instr_stream.cpp.o"
  "CMakeFiles/smarco_isa.dir/instr_stream.cpp.o.d"
  "CMakeFiles/smarco_isa.dir/micro_op.cpp.o"
  "CMakeFiles/smarco_isa.dir/micro_op.cpp.o.d"
  "libsmarco_isa.a"
  "libsmarco_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
