# Empty compiler generated dependencies file for smarco_isa.
# This may be replaced when dependencies are built.
