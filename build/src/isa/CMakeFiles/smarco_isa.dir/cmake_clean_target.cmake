file(REMOVE_RECURSE
  "libsmarco_isa.a"
)
