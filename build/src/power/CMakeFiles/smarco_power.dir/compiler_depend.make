# Empty compiler generated dependencies file for smarco_power.
# This may be replaced when dependencies are built.
