file(REMOVE_RECURSE
  "CMakeFiles/smarco_power.dir/power_model.cpp.o"
  "CMakeFiles/smarco_power.dir/power_model.cpp.o.d"
  "libsmarco_power.a"
  "libsmarco_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
