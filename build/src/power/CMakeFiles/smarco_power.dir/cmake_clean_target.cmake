file(REMOVE_RECURSE
  "libsmarco_power.a"
)
