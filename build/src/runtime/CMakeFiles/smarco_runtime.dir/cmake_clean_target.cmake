file(REMOVE_RECURSE
  "libsmarco_runtime.a"
)
