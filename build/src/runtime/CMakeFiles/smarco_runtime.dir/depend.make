# Empty dependencies file for smarco_runtime.
# This may be replaced when dependencies are built.
