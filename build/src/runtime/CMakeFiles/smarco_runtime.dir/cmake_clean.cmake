file(REMOVE_RECURSE
  "CMakeFiles/smarco_runtime.dir/mapreduce.cpp.o"
  "CMakeFiles/smarco_runtime.dir/mapreduce.cpp.o.d"
  "CMakeFiles/smarco_runtime.dir/threading.cpp.o"
  "CMakeFiles/smarco_runtime.dir/threading.cpp.o.d"
  "libsmarco_runtime.a"
  "libsmarco_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
