# Empty compiler generated dependencies file for smarco_core.
# This may be replaced when dependencies are built.
