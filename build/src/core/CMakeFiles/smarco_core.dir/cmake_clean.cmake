file(REMOVE_RECURSE
  "CMakeFiles/smarco_core.dir/tcg_core.cpp.o"
  "CMakeFiles/smarco_core.dir/tcg_core.cpp.o.d"
  "libsmarco_core.a"
  "libsmarco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
