
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/tcg_core.cpp" "src/core/CMakeFiles/smarco_core.dir/tcg_core.cpp.o" "gcc" "src/core/CMakeFiles/smarco_core.dir/tcg_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smarco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smarco_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smarco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/smarco_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
