file(REMOVE_RECURSE
  "libsmarco_core.a"
)
