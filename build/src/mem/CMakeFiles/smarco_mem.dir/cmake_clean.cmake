file(REMOVE_RECURSE
  "CMakeFiles/smarco_mem.dir/cache.cpp.o"
  "CMakeFiles/smarco_mem.dir/cache.cpp.o.d"
  "CMakeFiles/smarco_mem.dir/dram.cpp.o"
  "CMakeFiles/smarco_mem.dir/dram.cpp.o.d"
  "CMakeFiles/smarco_mem.dir/mact.cpp.o"
  "CMakeFiles/smarco_mem.dir/mact.cpp.o.d"
  "CMakeFiles/smarco_mem.dir/spm.cpp.o"
  "CMakeFiles/smarco_mem.dir/spm.cpp.o.d"
  "libsmarco_mem.a"
  "libsmarco_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
