# Empty compiler generated dependencies file for smarco_mem.
# This may be replaced when dependencies are built.
