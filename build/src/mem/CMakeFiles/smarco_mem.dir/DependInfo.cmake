
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/smarco_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/smarco_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/mem/CMakeFiles/smarco_mem.dir/dram.cpp.o" "gcc" "src/mem/CMakeFiles/smarco_mem.dir/dram.cpp.o.d"
  "/root/repo/src/mem/mact.cpp" "src/mem/CMakeFiles/smarco_mem.dir/mact.cpp.o" "gcc" "src/mem/CMakeFiles/smarco_mem.dir/mact.cpp.o.d"
  "/root/repo/src/mem/spm.cpp" "src/mem/CMakeFiles/smarco_mem.dir/spm.cpp.o" "gcc" "src/mem/CMakeFiles/smarco_mem.dir/spm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smarco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smarco_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
