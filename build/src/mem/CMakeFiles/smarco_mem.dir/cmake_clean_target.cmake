file(REMOVE_RECURSE
  "libsmarco_mem.a"
)
