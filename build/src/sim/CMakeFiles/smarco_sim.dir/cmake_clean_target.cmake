file(REMOVE_RECURSE
  "libsmarco_sim.a"
)
