file(REMOVE_RECURSE
  "CMakeFiles/smarco_sim.dir/event_queue.cpp.o"
  "CMakeFiles/smarco_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/smarco_sim.dir/logging.cpp.o"
  "CMakeFiles/smarco_sim.dir/logging.cpp.o.d"
  "CMakeFiles/smarco_sim.dir/random.cpp.o"
  "CMakeFiles/smarco_sim.dir/random.cpp.o.d"
  "CMakeFiles/smarco_sim.dir/simulator.cpp.o"
  "CMakeFiles/smarco_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/smarco_sim.dir/stats.cpp.o"
  "CMakeFiles/smarco_sim.dir/stats.cpp.o.d"
  "libsmarco_sim.a"
  "libsmarco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
