# Empty dependencies file for smarco_sim.
# This may be replaced when dependencies are built.
