
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/chain_table.cpp" "src/sched/CMakeFiles/smarco_sched.dir/chain_table.cpp.o" "gcc" "src/sched/CMakeFiles/smarco_sched.dir/chain_table.cpp.o.d"
  "/root/repo/src/sched/main_scheduler.cpp" "src/sched/CMakeFiles/smarco_sched.dir/main_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/smarco_sched.dir/main_scheduler.cpp.o.d"
  "/root/repo/src/sched/sub_scheduler.cpp" "src/sched/CMakeFiles/smarco_sched.dir/sub_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/smarco_sched.dir/sub_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smarco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smarco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/smarco_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smarco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smarco_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
