# Empty compiler generated dependencies file for smarco_sched.
# This may be replaced when dependencies are built.
