file(REMOVE_RECURSE
  "libsmarco_sched.a"
)
