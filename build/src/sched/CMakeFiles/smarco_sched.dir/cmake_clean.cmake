file(REMOVE_RECURSE
  "CMakeFiles/smarco_sched.dir/chain_table.cpp.o"
  "CMakeFiles/smarco_sched.dir/chain_table.cpp.o.d"
  "CMakeFiles/smarco_sched.dir/main_scheduler.cpp.o"
  "CMakeFiles/smarco_sched.dir/main_scheduler.cpp.o.d"
  "CMakeFiles/smarco_sched.dir/sub_scheduler.cpp.o"
  "CMakeFiles/smarco_sched.dir/sub_scheduler.cpp.o.d"
  "libsmarco_sched.a"
  "libsmarco_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
