file(REMOVE_RECURSE
  "libsmarco_chip.a"
)
