# Empty dependencies file for smarco_chip.
# This may be replaced when dependencies are built.
