file(REMOVE_RECURSE
  "CMakeFiles/smarco_chip.dir/chip_config.cpp.o"
  "CMakeFiles/smarco_chip.dir/chip_config.cpp.o.d"
  "CMakeFiles/smarco_chip.dir/smarco_chip.cpp.o"
  "CMakeFiles/smarco_chip.dir/smarco_chip.cpp.o.d"
  "libsmarco_chip.a"
  "libsmarco_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smarco_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
