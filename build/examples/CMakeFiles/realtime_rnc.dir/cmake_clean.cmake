file(REMOVE_RECURSE
  "CMakeFiles/realtime_rnc.dir/realtime_rnc.cpp.o"
  "CMakeFiles/realtime_rnc.dir/realtime_rnc.cpp.o.d"
  "realtime_rnc"
  "realtime_rnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_rnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
