# Empty dependencies file for realtime_rnc.
# This may be replaced when dependencies are built.
