# Empty compiler generated dependencies file for cdn_offload.
# This may be replaced when dependencies are built.
