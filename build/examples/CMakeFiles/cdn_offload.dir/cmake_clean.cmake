file(REMOVE_RECURSE
  "CMakeFiles/cdn_offload.dir/cdn_offload.cpp.o"
  "CMakeFiles/cdn_offload.dir/cdn_offload.cpp.o.d"
  "cdn_offload"
  "cdn_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
