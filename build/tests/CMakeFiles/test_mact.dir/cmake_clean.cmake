file(REMOVE_RECURSE
  "CMakeFiles/test_mact.dir/test_mact.cpp.o"
  "CMakeFiles/test_mact.dir/test_mact.cpp.o.d"
  "test_mact"
  "test_mact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
