# Empty compiler generated dependencies file for test_mact.
# This may be replaced when dependencies are built.
