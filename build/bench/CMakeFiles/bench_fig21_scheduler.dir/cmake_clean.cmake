file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_scheduler.dir/bench_fig21_scheduler.cpp.o"
  "CMakeFiles/bench_fig21_scheduler.dir/bench_fig21_scheduler.cpp.o.d"
  "bench_fig21_scheduler"
  "bench_fig21_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
