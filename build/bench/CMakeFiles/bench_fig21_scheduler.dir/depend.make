# Empty dependencies file for bench_fig21_scheduler.
# This may be replaced when dependencies are built.
