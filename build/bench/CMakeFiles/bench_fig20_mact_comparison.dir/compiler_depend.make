# Empty compiler generated dependencies file for bench_fig20_mact_comparison.
# This may be replaced when dependencies are built.
