# Empty dependencies file for bench_fig23_scalability.
# This may be replaced when dependencies are built.
