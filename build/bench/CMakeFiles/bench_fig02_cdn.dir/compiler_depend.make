# Empty compiler generated dependencies file for bench_fig02_cdn.
# This may be replaced when dependencies are built.
