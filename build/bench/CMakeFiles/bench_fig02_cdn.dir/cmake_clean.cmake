file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_cdn.dir/bench_fig02_cdn.cpp.o"
  "CMakeFiles/bench_fig02_cdn.dir/bench_fig02_cdn.cpp.o.d"
  "bench_fig02_cdn"
  "bench_fig02_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
