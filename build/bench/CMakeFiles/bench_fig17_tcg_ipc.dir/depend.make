# Empty dependencies file for bench_fig17_tcg_ipc.
# This may be replaced when dependencies are built.
