file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_prototype.dir/bench_fig26_prototype.cpp.o"
  "CMakeFiles/bench_fig26_prototype.dir/bench_fig26_prototype.cpp.o.d"
  "bench_fig26_prototype"
  "bench_fig26_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
