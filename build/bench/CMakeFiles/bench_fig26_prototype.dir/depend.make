# Empty dependencies file for bench_fig26_prototype.
# This may be replaced when dependencies are built.
