
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_components.cpp" "bench/CMakeFiles/bench_micro_components.dir/bench_micro_components.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_components.dir/bench_micro_components.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/smarco_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/smarco_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/smarco_power.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/smarco_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/smarco_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/smarco_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smarco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/smarco_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smarco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smarco_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smarco_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
