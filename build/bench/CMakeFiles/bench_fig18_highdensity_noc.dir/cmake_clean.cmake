file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_highdensity_noc.dir/bench_fig18_highdensity_noc.cpp.o"
  "CMakeFiles/bench_fig18_highdensity_noc.dir/bench_fig18_highdensity_noc.cpp.o.d"
  "bench_fig18_highdensity_noc"
  "bench_fig18_highdensity_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_highdensity_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
