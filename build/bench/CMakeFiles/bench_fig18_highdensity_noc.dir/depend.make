# Empty dependencies file for bench_fig18_highdensity_noc.
# This may be replaced when dependencies are built.
