# Empty dependencies file for bench_fig19_mact_threshold.
# This may be replaced when dependencies are built.
