file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_conventional.dir/bench_fig01_conventional.cpp.o"
  "CMakeFiles/bench_fig01_conventional.dir/bench_fig01_conventional.cpp.o.d"
  "bench_fig01_conventional"
  "bench_fig01_conventional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_conventional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
