# Empty dependencies file for bench_fig01_conventional.
# This may be replaced when dependencies are built.
