/**
 * @file
 * Fig. 17 — per-core IPC of a TCG core as the live thread count
 * grows from 1 to 8 (4-wide issue, in-pair threads past 4). Includes
 * the DESIGN.md ablation: in-pair vs coarse-grained vs no switching.
 */
#include "bench_util.hpp"

#include "workloads/profile_stream.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

double
coreIpc(const workloads::BenchProfile &prof, std::uint32_t threads,
        core::ThreadScheme scheme)
{
    Simulator sim;
    auto cfg = chip::ChipConfig::scaled(1, 4);
    cfg.core.numThreads = threads;
    cfg.core.maxRunning = std::min<std::uint32_t>(threads, 4);
    cfg.core.scheme = scheme;
    chip::SmarcoChip chip(sim, cfg);
    // This harness attaches tasks to the core directly instead of
    // going through runSmarco, so arm --faults campaigns here too.
    auto campaign = armFaultsFromCli(sim, chip);
    for (std::uint32_t t = 0; t < threads; ++t) {
        workloads::TaskSpec ts;
        ts.id = t;
        ts.profile = &prof;
        ts.numOps = 40000;
        ts.seed = 11 + t;
        chip.core(0).attachTask(
            ts,
            std::make_unique<workloads::ProfileStream>(
                prof, chip.layoutFor(ts, 0), ts.numOps, ts.seed),
            nullptr);
    }
    chip.runUntilDone(20'000'000);
    return chip.core(0).ipc();
}

} // namespace

int
main()
{
    banner("Fig. 17", "IPC of one TCG core vs thread count (1..8)");

    std::printf("%-12s", "bench");
    for (std::uint32_t t = 1; t <= 8; ++t)
        std::printf("  T=%u  ", t);
    std::printf("\n");
    for (const auto &prof : workloads::htcProfiles()) {
        std::printf("%-12s", prof.name.c_str());
        for (std::uint32_t t = 1; t <= 8; ++t)
            std::printf(" %5.2f ",
                        coreIpc(prof, t, core::ThreadScheme::InPair));
        std::printf("\n");
    }

    std::printf("\nAblation (8 threads): thread scheme comparison\n");
    std::printf("%-12s %10s %14s %10s\n", "bench", "in-pair",
                "coarse-grain", "no-switch");
    for (const auto &prof : workloads::htcProfiles()) {
        std::printf("%-12s %10.2f %14.2f %10.2f\n", prof.name.c_str(),
                    coreIpc(prof, 8, core::ThreadScheme::InPair),
                    coreIpc(prof, 8, core::ThreadScheme::CoarseGrained),
                    coreIpc(prof, 8, core::ThreadScheme::NoSwitch));
    }

    note("");
    note("paper shape: IPC grows almost linearly from 1 to 4 threads,");
    note("then slowly from 4 to 8 as in-pair threads hide memory");
    note("latency; search saturates early and barely gains (4.2.1).");
    return 0;
}
