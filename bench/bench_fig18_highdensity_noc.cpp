/**
 * @file
 * Fig. 18 — throughput-rate improvement of the high-density NoC as
 * the channel slice width shrinks from 16 to 2 bytes. A saturated
 * sub-ring carries packets whose sizes follow each benchmark's
 * memory-access-granularity distribution; the metric is delivered
 * packets per unit time, normalised to the 16-byte slicing (the
 * conventional-most configuration the paper compares against).
 */
#include "bench_util.hpp"

#include "noc/ring.hpp"
#include "sim/random.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

/** Closed-loop saturation throughput of one sub-ring (packets/cycle). */
double
ringThroughput(const workloads::BenchProfile &prof,
               std::uint32_t slice_bytes)
{
    Simulator sim;
    noc::RingParams rp;
    rp.name = "subRing";
    rp.numStops = 17;              // 16 cores + gateway
    rp.fixedBytesPerDir = 8;       // 256-bit sub-ring
    rp.flexBytes = 16;
    rp.sliceBytes = slice_bytes;
    noc::Ring ring(sim, rp, "ring");

    Rng rng(1234, slice_bytes);
    DiscreteDist gran(prof.granularityWeights);
    std::uint64_t delivered = 0;
    for (std::uint32_t s = 0; s < rp.numStops; ++s)
        ring.setHandler(s, [&delivered](noc::Packet &&) {
            ++delivered;
        });

    const int warmup = 500, window = 4000;
    std::uint64_t measured = 0;
    for (int cycle = 0; cycle < warmup + window; ++cycle) {
        if (cycle == warmup)
            measured = delivered;
        // Every stop keeps offering memory-access packets: payload is
        // the access granularity plus a small header flit.
        for (std::uint32_t s = 0; s < rp.numStops; ++s) {
            noc::Packet p;
            p.payloadBytes =
                workloads::kGranularitySizes[gran.sample(rng)] + 4;
            const std::uint32_t dst = static_cast<std::uint32_t>(
                (s + 1 + rng.nextBelow(rp.numStops - 1)) % rp.numStops);
            if (dst != s)
                ring.inject(s, dst, std::move(p));
        }
        sim.run(1);
    }
    return static_cast<double>(delivered - measured) /
           static_cast<double>(window);
}

} // namespace

int
main()
{
    banner("Fig. 18", "throughput improvement vs channel slice width "
                      "(normalised to 16-byte slices)");

    const std::uint32_t slices[] = {16, 8, 4, 2};
    std::printf("%-12s %10s %10s %10s %10s   (packets/cycle @16B)\n",
                "bench", "16B", "8B", "4B", "2B");
    for (const auto &prof : workloads::htcProfiles()) {
        double base = 0.0;
        std::printf("%-12s", prof.name.c_str());
        for (std::uint32_t s : slices) {
            const double tput = ringThroughput(prof, s);
            if (s == 16)
                base = tput;
            std::printf(" %9.2fx", base > 0.0 ? tput / base : 0.0);
        }
        std::printf("   (%.2f)\n", base);
    }

    note("");
    note("paper shape: throughput rises as slices shrink; KMP and RNC");
    note("(byte-granularity) keep gaining from 4B to 2B, K-means gains");
    note("almost nothing below 8B (Section 4.2.2).");
    return 0;
}
