/**
 * @file
 * Fig. 22 — performance and energy-efficiency of the full 256-core
 * SmarCo over the Xeon E7-8890V4 baseline on the six HTC benchmarks
 * (all expressed as MapReduce-style task streams).
 *
 * Performance is task throughput in real time:
 *   speedup = (tasks/cycle_smarco x 1.5 GHz) /
 *             (tasks/cycle_xeon   x 2.2 GHz)
 * Energy efficiency divides each side by its operating power
 * (analytical SmarCo model at its measured activity; 165 W TDP curve
 * for the Xeon at its measured utilisation).
 */
#include "bench_util.hpp"

#include "power/power_model.hpp"

using namespace smarco;
using namespace smarco::bench;

int
main()
{
    banner("Fig. 22", "SmarCo (256 cores, 2048 threads) vs Xeon "
                      "E7-8890V4 (24 cores, 48 threads)");

    const auto cfg = chip::ChipConfig::simulated256();
    baseline::BaselineParams xeon;

    std::printf("%-12s %10s %10s %9s %9s %9s %10s\n", "bench",
                "SmarCo", "Xeon", "speedup", "SmarCoW", "XeonW",
                "energyEff");
    std::printf("%-12s %10s %10s %9s %9s %9s %10s\n", "",
                "(t/Mcy)", "(t/Mcy)", "", "", "", "");

    std::vector<double> speedups, effs;
    for (const auto &prof : workloads::htcProfiles()) {
        // Steady-state throughput: enough tasks to fill all 2048
        // SmarCo thread contexts and to amortise the Xeon's one-time
        // pthread creation, at the profile's native task size.
        const auto sm = runSmarco(cfg, prof, 3072, 0, 57);
        const auto xe = runBaseline(xeon, prof, 3072, 48, 0, 57,
                                    /*max_cycles=*/2'000'000'000);

        const double sm_rate =
            sm.metrics.tasksPerMCycle * cfg.freqGHz;
        const double xe_rate =
            xe.tasksPerMCycle * xeon.freqGHz;
        const double speedup = sm_rate / xe_rate;

        power::SmarcoPowerSpec spec;
        spec.activity = 0.3 + 0.7 * sm.utilisation;
        const double sm_watts =
            power::smarcoPower(spec).totalPowerW();
        const double xe_watts = power::xeonPowerW(xe.cpuUtilisation);
        const double eff = speedup * xe_watts / sm_watts;

        speedups.push_back(speedup);
        effs.push_back(eff);
        std::printf("%-12s %10.1f %10.1f %8.2fx %9.1f %9.1f %9.2fx\n",
                    prof.name.c_str(), sm.metrics.tasksPerMCycle,
                    xe.tasksPerMCycle, speedup, sm_watts, xe_watts,
                    eff);
    }

    std::printf("\nmean speedup          = %.2fx   (paper: 10.11x, "
                "range 4.86x..18.57x)\n", geomean(speedups));
    std::printf("mean energy efficiency = %.2fx   (paper: 6.95x, "
                "range 3.34x..12.77x)\n", geomean(effs));

    note("");
    note("paper shape: every benchmark favours SmarCo; the small-");
    note("granularity, memory-bound kernels (KMP, RNC) gain the most,");
    note("the compute-heavy K-means / low-memory search the least.");
    return 0;
}
