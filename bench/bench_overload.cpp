/**
 * @file
 * Overload sweep — goodput and tail latency versus offered load,
 * SmarCo versus the conventional baseline, with end-to-end overload
 * control armed (admission + deadline-aware shedding on the chip,
 * SLO-bounded retries in the driver). Not a paper figure: the paper
 * motivates SmarCo with open-loop datacenter serving (CDN, RNC) but
 * only reports closed-loop throughput; this harness checks that the
 * reproduced chip degrades gracefully when offered load exceeds
 * capacity instead of collapsing.
 *
 * Each chip is first calibrated closed-loop to find its saturation
 * rate, then swept open-loop at 0.5x..4x that rate with a mixed
 * request stream (deadline CDN-chunk traffic plus a best-effort
 * slice). The harness asserts the overload-control contract:
 *
 *   1. goodput plateaus — the 4x point keeps >= 90% of the peak
 *      goodput rate seen anywhere in the sweep (no congestion
 *      collapse), and
 *   2. p99 end-to-end latency of completions stays bounded by a
 *      small multiple of the request deadline (shedding, not
 *      queueing, absorbs the excess).
 *
 * Exits non-zero when either check fails.
 *
 * Usage: bench_overload [--quick]
 */
#include <algorithm>
#include <cstring>
#include <functional>

#include "bench_util.hpp"
#include "runtime/overload.hpp"
#include "workloads/cdn.hpp"
#include "workloads/request_gen.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

/** Work per request: enough to queue, small enough to sweep fast. */
constexpr std::uint64_t kOpsPerRequest = 4000;
/** Request deadline, in units of the calibrated per-task interval. */
constexpr Cycle kDeadlineIntervals = 48;
/** Per-point arrival stream seed (same stream, different rates). */
constexpr std::uint64_t kArrivalSeed = 11;

struct SweepPoint {
    double mult = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t goodput = 0;
    std::uint64_t shed = 0;
    std::uint64_t retries = 0;
    std::uint64_t expired = 0;
    /** Goodput per kilocycle over the serving window — from the
     *  first cycle to one deadline past the last arrival (the span
     *  in which a completion can still be goodput). Dividing by the
     *  whole run would dilute overloaded points with the idle
     *  backoff/drain tail after arrivals stop. */
    double goodputRate = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

void
printHeader(const char *chip_name, double cap_rate, Cycle deadline)
{
    std::printf("\n%s: capacity %.3f tasks/kcycle, deadline %llu "
                "cycles\n", chip_name, cap_rate,
                static_cast<unsigned long long>(deadline));
    std::printf("%6s %9s %8s %7s %8s %8s %10s %9s %9s %9s\n", "load",
                "requests", "goodput", "shed", "retries", "expired",
                "rate", "p50", "p95", "p99");
}

void
printPoint(const SweepPoint &p)
{
    std::printf("%5.1fx %9llu %8llu %7llu %8llu %8llu %10.3f %9.0f "
                "%9.0f %9.0f\n", p.mult,
                static_cast<unsigned long long>(p.requests),
                static_cast<unsigned long long>(p.goodput),
                static_cast<unsigned long long>(p.shed),
                static_cast<unsigned long long>(p.retries),
                static_cast<unsigned long long>(p.expired),
                p.goodputRate, p.p50, p.p95, p.p99);
}

/**
 * Check the overload-control contract over one chip's sweep; returns
 * the number of failed checks.
 */
int
checkSweep(const char *chip_name, const std::vector<SweepPoint> &pts,
           Cycle deadline)
{
    int failures = 0;
    double peak = 0.0;
    for (const auto &p : pts)
        peak = std::max(peak, p.goodputRate);
    const auto &last = pts.back();
    if (last.goodputRate < 0.9 * peak) {
        std::printf("FAIL %s: goodput collapsed at %.1fx (%.3f vs "
                    "peak %.3f tasks/kcycle)\n", chip_name, last.mult,
                    last.goodputRate, peak);
        ++failures;
    }
    const double p99_bound = 3.0 * static_cast<double>(deadline);
    for (const auto &p : pts) {
        if (p.p99 > p99_bound) {
            std::printf("FAIL %s: p99 unbounded at %.1fx (%.0f > "
                        "%.0f cycles)\n", chip_name, p.mult, p.p99,
                        p99_bound);
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("  OK: goodput at %.1fx within 10%% of peak, p99 "
                    "<= 3x deadline at every point\n", last.mult);
    return failures;
}

/**
 * Mixed traffic: 90% of the offered rate is deadline chunk traffic,
 * 10% a best-effort slice (what degraded mode sheds first). Kept as
 * two separate streams so the deadline class gets its own latency
 * histogram — the best-effort tail has no SLO and would otherwise
 * drown the p99 check.
 */
std::vector<workloads::TaskSpec>
makeStream(const workloads::BenchProfile &profile, std::uint64_t count,
           double rate, Cycle deadline, Cycle start, bool best_effort)
{
    workloads::RequestGenParams gp;
    gp.count = best_effort ? std::max<std::uint64_t>(1, count / 10)
                           : count - count / 10;
    gp.start = start;
    gp.ratePerKCycle =
        std::max(1e-6, best_effort ? 0.1 * rate : 0.9 * rate);
    gp.relativeDeadline = best_effort ? kNoCycle : deadline;
    gp.realtime = !best_effort;
    gp.opsOverride = kOpsPerRequest;
    gp.seed = kArrivalSeed + (best_effort ? 1 : 0);
    gp.firstId = best_effort ? 1'000'000 : 0;
    return makePoissonRequests(profile, gp);
}

// ---------------------------------------------------------------- SmarCo

/** Closed-loop saturation rate of the SmarCo config (tasks/kcycle). */
double
calibrateSmarco(const chip::ChipConfig &cfg,
                const workloads::BenchProfile &profile,
                std::uint64_t count)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, cfg);
    workloads::TaskSetParams tp;
    tp.count = count;
    tp.seed = 5;
    auto tasks = workloads::makeTaskSet(profile, tp);
    for (auto &t : tasks)
        t.numOps = kOpsPerRequest;
    chip.submit(tasks);
    const Cycle end = chip.runUntilDone(200'000'000);
    return static_cast<double>(count) * 1000.0 /
           static_cast<double>(end);
}

SweepPoint
runSmarcoPoint(const chip::ChipConfig &cfg,
               const workloads::BenchProfile &profile,
               std::uint64_t count, double rate, double mult,
               Cycle deadline, Cycle interval)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, cfg);

    sched::AdmissionParams ap;
    ap.subQueueCap = 32;
    ap.queuedCost = interval;
    chip.enableOverloadControl(ap);

    runtime::OverloadParams op;
    op.backoffBase = std::max<Cycle>(interval, 64);
    op.backoffMax = deadline;
    op.latencyHistMax = 8.0 * static_cast<double>(deadline);
    runtime::OverloadDriver deadline_class(chip, op,
                                           "runtime.overload.dl");
    op.seed = 2;
    runtime::OverloadDriver best_effort(chip, op,
                                        "runtime.overload.be");

    const auto dl_reqs =
        makeStream(profile, count, rate, deadline, 0, false);
    const auto be_reqs =
        makeStream(profile, count, rate, deadline, 0, true);
    Cycle last_arrival = 0;
    for (const auto &r : dl_reqs)
        last_arrival = std::max(last_arrival, r.release);
    for (const auto &r : be_reqs)
        last_arrival = std::max(last_arrival, r.release);
    deadline_class.drive(dl_reqs);
    best_effort.drive(be_reqs);
    auto campaign = armFaultsFromCli(sim, chip);
    chip.runUntilDone(400'000'000);

    SweepPoint p;
    p.mult = mult;
    p.requests = deadline_class.requests() + best_effort.requests();
    p.goodput = deadline_class.goodput() + best_effort.goodput();
    p.shed = deadline_class.shedEvents() + best_effort.shedEvents();
    p.retries = deadline_class.retries() + best_effort.retries();
    p.expired = deadline_class.expired() + best_effort.expired();
    p.goodputRate = static_cast<double>(p.goodput) * 1000.0 /
                    static_cast<double>(last_arrival + deadline);
    // Tail-latency contract is on the deadline class; best-effort
    // completions have no SLO.
    p.p50 = deadline_class.latency().percentile(0.50);
    p.p95 = deadline_class.latency().percentile(0.95);
    p.p99 = deadline_class.latency().percentile(0.99);
    return p;
}

// -------------------------------------------------------------- baseline

double
calibrateBaseline(const baseline::BaselineParams &params,
                  const workloads::BenchProfile &profile,
                  std::uint32_t workers, std::uint64_t count)
{
    Simulator sim;
    baseline::BaselineChip chip(sim, params);
    workloads::TaskSetParams tp;
    tp.count = count;
    tp.seed = 5;
    auto tasks = workloads::makeTaskSet(profile, tp);
    for (auto &t : tasks)
        t.numOps = kOpsPerRequest;
    chip.spawnWorkers(workers, std::move(tasks));
    const Cycle end = sim.run(400'000'000);
    return static_cast<double>(chip.tasksCompleted()) * 1000.0 /
           static_cast<double>(end);
}

SweepPoint
runBaselinePoint(const baseline::BaselineParams &params,
                 const workloads::BenchProfile &profile,
                 std::uint32_t workers, std::uint64_t count,
                 double rate, double mult, Cycle deadline,
                 Cycle interval)
{
    Simulator sim;
    baseline::BaselineChip chip(sim, params);
    chip.enableAdmission(64, 8.0 * static_cast<double>(deadline));
    chip.spawnWorkers(workers, {}, /*persistent=*/true);

    // Arrivals start once every worker has finished its staggered
    // spawn ramp, so the measured window is all steady state.
    const Cycle start = static_cast<Cycle>(workers + 1) *
                        params.threadCreateCost;

    // The baseline has no hardware admission path, so the driver-side
    // retry loop lives here: bounced injections back off and re-try
    // until the request's own deadline makes the retry pointless.
    auto requests =
        makeStream(profile, count, rate, deadline, start, false);
    const auto be_reqs =
        makeStream(profile, count, rate, deadline, start, true);
    requests.insert(requests.end(), be_reqs.begin(), be_reqs.end());
    std::uint64_t retries = 0;
    std::uint64_t dropped = 0;
    Rng backoff = namedRng(kArrivalSeed, "overload.backoff");
    auto submit = std::make_shared<
        std::function<void(workloads::TaskSpec, std::uint32_t)>>();
    *submit = [&sim, &chip, &retries, &dropped, backoff, submit,
               interval](workloads::TaskSpec task,
                         std::uint32_t attempt) mutable {
        if (chip.tryInjectTask(task))
            return;
        const Cycle shift = std::min<std::uint32_t>(attempt, 20);
        Cycle wait = std::min<Cycle>(interval << shift, 64 * interval);
        wait += backoff.nextBelow(wait / 2 + 1);
        const Cycle at = sim.now() + wait;
        if (attempt >= 8 ||
            (task.hasDeadline() && at + task.numOps > task.deadline)) {
            ++dropped;
            return;
        }
        ++retries;
        sim.events().schedule(at, [submit, task, attempt]() {
            (*submit)(task, attempt + 1);
        });
    };
    Cycle last_arrival = 0;
    for (const auto &r : requests) {
        last_arrival = std::max(last_arrival, r.release);
        sim.events().schedule(r.release, [submit, r]() {
            (*submit)(r, 0);
        });
    }
    auto campaign = armFaultsFromCli(sim, chip);
    // Persistent workers never drain the chip, so the run stops at
    // the end of the serving window — the same span the goodput rate
    // divides by; completions past it would not be goodput anyway.
    sim.run(last_arrival + deadline);

    const auto &lat = sim.stats().getAs<Histogram>("base.e2eLatency");
    SweepPoint p;
    p.mult = mult;
    p.requests = count;
    p.goodput = chip.tasksCompleted();
    p.shed = chip.tasksShed();
    p.retries = retries;
    p.expired = chip.tasksExpired() + dropped;
    p.goodputRate = static_cast<double>(p.goodput) * 1000.0 /
                    static_cast<double>(last_arrival + deadline - start);
    p.p50 = lat.percentile(0.50);
    p.p95 = lat.percentile(0.95);
    p.p99 = lat.percentile(0.99);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    banner("overload", "goodput and tail latency versus offered load "
                       "(0.5x..4x saturation)");

    const std::vector<double> mults =
        quick ? std::vector<double>{0.5, 1.0, 4.0}
              : std::vector<double>{0.5, 1.0, 2.0, 4.0};
    // Requests offered at 1x; each point scales its count with the
    // load multiplier so every point serves the same window length
    // (a fixed count would squeeze the 4x window to a quarter and
    // bias its rate with edge effects).
    const std::uint64_t base_count = quick ? 120 : 240;
    const auto pointCount = [base_count](double m) {
        return static_cast<std::uint64_t>(
            static_cast<double>(base_count) * m);
    };

    // Request work: CDN chunk service at a mid-size connection count
    // (the paper's motivating open-loop workload), shrunk to
    // kOpsPerRequest so the sweep stays laptop-fast.
    workloads::CdnWorkload cdn;
    const auto profile = cdn.chunkProfile(300);

    int failures = 0;

    // --- SmarCo ---------------------------------------------------
    const auto cfg = chip::ChipConfig::scaled(1, 4);
    const double sm_cap =
        calibrateSmarco(cfg, profile, quick ? 64 : 128);
    const Cycle sm_interval =
        static_cast<Cycle>(std::max(1.0, 1000.0 / sm_cap));
    const Cycle sm_deadline = kDeadlineIntervals * sm_interval;
    printHeader(cfg.name.c_str(), sm_cap, sm_deadline);
    std::vector<SweepPoint> sm_pts;
    for (double m : mults) {
        sm_pts.push_back(runSmarcoPoint(cfg, profile, pointCount(m),
                                        m * sm_cap, m, sm_deadline,
                                        sm_interval));
        printPoint(sm_pts.back());
    }
    failures += checkSweep(cfg.name.c_str(), sm_pts, sm_deadline);

    // --- conventional baseline ------------------------------------
    baseline::BaselineParams bp;
    const std::uint32_t workers = quick ? 8 : 16;
    const double ba_cap =
        calibrateBaseline(bp, profile, workers, quick ? 64 : 128);
    const Cycle ba_interval =
        static_cast<Cycle>(std::max(1.0, 1000.0 / ba_cap));
    const Cycle ba_deadline = kDeadlineIntervals * ba_interval;
    printHeader("baseline", ba_cap, ba_deadline);
    std::vector<SweepPoint> ba_pts;
    for (double m : mults) {
        ba_pts.push_back(runBaselinePoint(bp, profile, workers,
                                          pointCount(m), m * ba_cap,
                                          m, ba_deadline,
                                          ba_interval));
        printPoint(ba_pts.back());
    }
    failures += checkSweep("baseline", ba_pts, ba_deadline);

    note("");
    note("shape: goodput rises with offered load until saturation,");
    note("then plateaus -- admission + deadline-aware shedding turn");
    note("the excess into shed/expired requests instead of queueing");
    note("collapse, and completion p99 stays within 3x the deadline.");
    return failures == 0 ? 0 : 1;
}
