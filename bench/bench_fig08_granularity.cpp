/**
 * @file
 * Fig. 8 — distribution of memory access granularity: six HTC
 * applications (left) versus eleven SPLASH2-class conventional
 * applications (right). Measured from the generated access streams,
 * not just the configured weights.
 */
#include <map>

#include "bench_util.hpp"

#include "workloads/profile_stream.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

void
printDistribution(const std::vector<workloads::BenchProfile> &profiles)
{
    std::printf("%-12s", "bench");
    for (std::size_t g = 0; g < workloads::kNumGranularities; ++g)
        std::printf(" %5uB", workloads::kGranularitySizes[g]);
    std::printf("   mean\n");

    for (const auto &prof : profiles) {
        workloads::AddressLayout layout;
        layout.spmLocalBase = 0x1000'0000;
        layout.heapBase = 0x8000'0000;
        layout.heapSize = prof.heapWorkingSet;
        layout.streamBase = 0x9000'0000;
        workloads::ProfileStream stream(prof, layout, 60000, 99);

        std::map<std::uint8_t, std::uint64_t> hist;
        std::uint64_t total = 0;
        double mean = 0.0;
        isa::MicroOp op;
        while (stream.next(op) && op.kind != isa::OpKind::Halt) {
            if (!op.isMem())
                continue;
            ++hist[op.size];
            ++total;
            mean += op.size;
        }
        std::printf("%-12s", prof.name.c_str());
        for (std::size_t g = 0; g < workloads::kNumGranularities; ++g) {
            const double pct = total
                ? 100.0 * static_cast<double>(
                      hist[workloads::kGranularitySizes[g]]) /
                      static_cast<double>(total)
                : 0.0;
            std::printf(" %5.1f%%", pct);
        }
        std::printf("  %5.1fB\n", total ? mean / total : 0.0);
    }
}

} // namespace

int
main()
{
    banner("Fig. 8", "memory access granularity distribution");

    std::printf("\nHTC applications (left of Fig. 8):\n");
    printDistribution(workloads::htcProfiles());

    std::printf("\nConventional SPLASH2 applications (right of "
                "Fig. 8):\n");
    printDistribution(workloads::conventionalProfiles());

    note("");
    note("paper shape: HTC accesses concentrate at 1-8 bytes (KMP/RNC");
    note("byte-dominated, K-means at 4-8B); conventional applications");
    note("concentrate at 8-64 bytes.");
    return 0;
}
