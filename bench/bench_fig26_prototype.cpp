/**
 * @file
 * Fig. 26 — energy efficiency of the taped-out TSMC 40 nm prototype
 * (256 threads at most) over the Xeon E7-8890V4. Same methodology as
 * Fig. 22 but with the prototype configuration and the 40 nm power
 * model.
 */
#include "bench_util.hpp"

#include "power/power_model.hpp"

using namespace smarco;
using namespace smarco::bench;

int
main()
{
    banner("Fig. 26", "prototype (TSMC 40 nm, 32 cores / 256 threads) "
                      "energy efficiency vs Xeon E7-8890V4");

    const auto cfg = chip::ChipConfig::prototype40nm();
    baseline::BaselineParams xeon;

    std::printf("%-12s %10s %10s %9s %9s %9s %10s\n", "bench",
                "proto", "Xeon", "speedup", "protoW", "XeonW",
                "energyEff");
    std::printf("%-12s %10s %10s %9s %9s %9s %10s\n", "",
                "(t/Mcy)", "(t/Mcy)", "", "", "", "");

    std::vector<double> effs;
    for (const auto &prof : workloads::htcProfiles()) {
        const auto sm = runSmarco(cfg, prof, 768, 0, 63);
        const auto xe = runBaseline(xeon, prof, 768, 48, 0, 63,
                                    /*max_cycles=*/2'000'000'000);

        const double sm_rate =
            sm.metrics.tasksPerMCycle * cfg.freqGHz;
        const double xe_rate = xe.tasksPerMCycle * xeon.freqGHz;
        const double speedup = sm_rate / xe_rate;

        power::SmarcoPowerSpec spec;
        spec.node = power::TechNode::nm40();
        spec.numCores = cfg.numCores();
        spec.numSubRings = cfg.noc.numSubRings;
        spec.freqGHz = cfg.freqGHz;
        spec.numMemCtrls = cfg.noc.numMemCtrls;
        spec.memBandwidthGBs = 34.1;
        spec.activity = 0.3 + 0.7 * sm.utilisation;
        const double sm_watts =
            power::smarcoPower(spec).totalPowerW();
        const double xe_watts = power::xeonPowerW(xe.cpuUtilisation);
        const double eff = speedup * xe_watts / sm_watts;
        effs.push_back(eff);

        std::printf("%-12s %10.1f %10.1f %8.2fx %9.1f %9.1f %9.2fx\n",
                    prof.name.c_str(), sm.metrics.tasksPerMCycle,
                    xe.tasksPerMCycle, speedup, sm_watts, xe_watts,
                    eff);
    }

    std::printf("\nmean energy efficiency = %.2fx   "
                "(paper: 3.85x, range 2.05x..6.84x)\n", geomean(effs));

    note("");
    note("paper shape: the small prototype loses raw speed (8x fewer");
    note("threads than the simulated chip) but still beats the Xeon on");
    note("energy efficiency on every benchmark (Section 4.4).");
    return 0;
}
