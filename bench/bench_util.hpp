/**
 * @file
 * Shared helpers for the experiment harnesses. Each bench binary
 * regenerates one table or figure of the paper and prints the same
 * rows/series the paper reports (EXPERIMENTS.md maps them).
 */
#pragma once

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/baseline_chip.hpp"
#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "fault/fault_campaign.hpp"
#include "fault/fault_spec.hpp"
#include "sim/logging.hpp"
#include "sim/observability.hpp"
#include "workloads/profile.hpp"
#include "workloads/task.hpp"

namespace smarco::bench {

/** Print a figure/table banner. */
inline void
banner(const char *id, const char *title)
{
    std::printf("\n======================================================="
                "=================\n");
    std::printf("%s  --  %s\n", id, title);
    std::printf("========================================================="
                "===============\n");
}

inline void
note(const char *text)
{
    std::printf("  %s\n", text);
}

// Campaign construction from --faults/--fault-seed lives with the
// fault subsystem so examples get it too; keep the old bench-local
// name working.
using fault::armFaultsFromCli;

/** Result of one SmarCo chip run. */
struct SmarcoRun {
    chip::ChipMetrics metrics;
    /** Issue-slot utilisation (activity proxy for the power model). */
    double utilisation = 0.0;
    double dramBytes = 0.0;
};

/** Run count tasks of a profile on a SmarCo configuration. */
inline SmarcoRun
runSmarco(const chip::ChipConfig &cfg,
          const workloads::BenchProfile &prof, std::uint64_t count,
          std::uint64_t ops_override = 0, std::uint64_t seed = 17,
          Cycle max_cycles = 200'000'000)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, cfg);
    workloads::TaskSetParams tp;
    tp.count = count;
    tp.seed = seed;
    auto tasks = workloads::makeTaskSet(prof, tp);
    if (ops_override) {
        for (auto &t : tasks)
            t.numOps = ops_override;
    }
    chip.submit(tasks);
    auto campaign = armFaultsFromCli(sim, chip);
    chip.runUntilDone(max_cycles);

    SmarcoRun run;
    run.metrics = chip.metrics();
    const double used = sim.stats().total("chip.core", ".slotsUsed");
    const double offered =
        sim.stats().total("chip.core", ".slotsOffered");
    run.utilisation = offered > 0.0 ? used / offered : 0.0;
    run.dramBytes = chip.dram().totalBytes();
    return run;
}

/** Run count tasks on the conventional baseline with T sw threads. */
inline baseline::BaselineMetrics
runBaseline(const baseline::BaselineParams &params,
            const workloads::BenchProfile &prof, std::uint64_t count,
            std::uint32_t threads, std::uint64_t ops_override = 0,
            std::uint64_t seed = 17, Cycle max_cycles = 400'000'000)
{
    Simulator sim;
    baseline::BaselineChip chip(sim, params);
    workloads::TaskSetParams tp;
    tp.count = count;
    tp.seed = seed;
    auto tasks = workloads::makeTaskSet(prof, tp);
    if (ops_override) {
        for (auto &t : tasks)
            t.numOps = ops_override;
    }
    chip.spawnWorkers(threads, std::move(tasks));
    auto campaign = armFaultsFromCli(sim, chip);
    sim.run(max_cycles);
    return chip.metrics();
}

inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace smarco::bench
