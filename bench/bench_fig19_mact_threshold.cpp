/**
 * @file
 * Fig. 19 — execution speedup versus the MACT time threshold
 * (4..64 cycles), normalised to the 8-cycle threshold as in the
 * paper. Full-chip runs on a reduced SmarCo slice.
 */
#include "bench_util.hpp"

using namespace smarco;
using namespace smarco::bench;

int
main()
{
    banner("Fig. 19", "speedup vs MACT time threshold "
                      "(normalised to 8 cycles)");

    const Cycle thresholds[] = {4, 8, 16, 32, 64};
    std::printf("%-12s", "bench");
    for (Cycle th : thresholds)
        std::printf("   th=%-3llu", static_cast<unsigned long long>(th));
    std::printf("\n");

    for (const auto &prof : workloads::htcProfiles()) {
        std::vector<double> cycles(std::size(thresholds), 0.0);
        // Average over three seeds: the optimum is shallow, so a
        // single run's placement noise would mask the ordering.
        for (std::uint64_t seed : {23ull, 101ull, 907ull}) {
            std::size_t i = 0;
            for (Cycle th : thresholds) {
                auto cfg = chip::ChipConfig::scaled(4, 8);
                cfg.mact.threshold = th;
                const auto run = runSmarco(cfg, prof, 96, 10000, seed);
                cycles[i++] +=
                    static_cast<double>(run.metrics.cycles);
            }
        }
        const double base = cycles[1]; // normalise to 8 cycles
        std::printf("%-12s", prof.name.c_str());
        for (double c : cycles)
            std::printf("   %6.3f", base / c);
        std::printf("\n");
    }

    note("");
    note("paper shape: a 16-cycle threshold is the best point for most");
    note("benchmarks (Section 4.2.3); shorter thresholds forfeit");
    note("merging, longer ones delay the collected requests.");
    return 0;
}
