/**
 * @file
 * Fig. 21 — exit time of each RNC task thread in one sub-ring
 * (128 threads): software Deadline Scheduler versus the hardware
 * laxity-aware scheduler. The paper's y-axis is the per-thread exit
 * cycle; we print the sorted exit-time series plus summary rows.
 */
#include <algorithm>

#include "bench_util.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

struct ExitSeries {
    std::vector<Cycle> exits;
    std::uint64_t misses = 0;
};

ExitSeries
runSubRing(sched::SchedPolicy policy, Cycle deadline)
{
    Simulator sim;
    auto cfg = chip::ChipConfig::scaled(1, 16); // one full sub-ring
    cfg.subSched.policy = policy;
    cfg.core.issuePolicy =
        policy == sched::SchedPolicy::HardwareLaxity
            ? core::IssuePolicy::LaxityAware
            : core::IssuePolicy::RoundRobin;
    // The hardware scheduler tracks laxity per cycle; gate leaders
    // tightly so same-deadline tasks converge (Section 3.7).
    cfg.core.laxityGate = 500;
    chip::SmarcoChip chip(sim, cfg);

    const auto &prof = workloads::htcProfile("rnc");
    workloads::TaskSetParams tp;
    tp.count = 128; // 16 cores x 8 thread contexts
    tp.seed = 41;
    tp.opsJitter = 0.05; // RNC streams are near-uniform
    tp.deadline = deadline;
    tp.realtime = true;
    for (auto &t : workloads::makeTaskSet(prof, tp)) {
        t.numOps = 24000;
        chip.submitTo(0, t);
    }
    auto campaign = armFaultsFromCli(sim, chip);
    chip.runUntilDone(200'000'000);

    ExitSeries series;
    for (const auto &e : chip.subScheduler(0).exits()) {
        series.exits.push_back(e.finish);
        series.misses += e.metDeadline ? 0 : 1;
    }
    std::sort(series.exits.begin(), series.exits.end());
    return series;
}

void
printSeries(const char *name, const ExitSeries &s, Cycle deadline)
{
    std::printf("\n%s (deadline = %llu cycles, %llu misses)\n", name,
                static_cast<unsigned long long>(deadline),
                static_cast<unsigned long long>(s.misses));
    std::printf("  exit cycles (sorted, every 8th of 128 threads):\n   ");
    for (std::size_t i = 0; i < s.exits.size(); i += 8)
        std::printf(" %7llu",
                    static_cast<unsigned long long>(s.exits[i]));
    std::printf("\n    min=%llu  max=%llu  spread=%llu\n",
                static_cast<unsigned long long>(s.exits.front()),
                static_cast<unsigned long long>(s.exits.back()),
                static_cast<unsigned long long>(
                    s.exits.back() - s.exits.front()));
}

} // namespace

int
main()
{
    banner("Fig. 21", "exit time of 128 RNC task threads in one "
                      "sub-ring");

    // Calibrate the deadline from a dry run so some software-
    // scheduled threads land past it (as in the paper's 340k setup).
    const auto probe =
        runSubRing(sched::SchedPolicy::HardwareLaxity, kNoCycle);
    const Cycle deadline =
        probe.exits[probe.exits.size() * 9 / 10] + 2000;

    const auto sw =
        runSubRing(sched::SchedPolicy::SoftwareDeadline, deadline);
    const auto hw =
        runSubRing(sched::SchedPolicy::HardwareLaxity, deadline);

    printSeries("software Deadline Scheduler", sw, deadline);
    printSeries("hardware laxity-aware scheduler", hw, deadline);

    std::printf("\nspread: software=%llu  hardware=%llu  "
                "(hardware/software = %.2f)\n",
                static_cast<unsigned long long>(
                    sw.exits.back() - sw.exits.front()),
                static_cast<unsigned long long>(
                    hw.exits.back() - hw.exits.front()),
                static_cast<double>(hw.exits.back() - hw.exits.front()) /
                    static_cast<double>(
                        sw.exits.back() - sw.exits.front()));
    std::printf("deadline misses: software=%llu  hardware=%llu\n",
                static_cast<unsigned long long>(sw.misses),
                static_cast<unsigned long long>(hw.misses));

    note("");
    note("paper shape: the software scheduler spreads exits widely");
    note("around the deadline (320k..354k vs 340k); the hardware");
    note("scheduler compresses the spread (334k..342k) -- its earliest");
    note("exit is LATER but the overall success rate improves (4.2.4).");
    return 0;
}
