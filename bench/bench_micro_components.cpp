/**
 * @file
 * Component micro-benchmarks (google-benchmark): raw speed of the
 * simulation kernel's hot paths — event queue, RNG, cache tag model,
 * MACT collection, ring traversal, and a small end-to-end chip step.
 * These guard the simulator's own performance, not the paper's
 * results.
 */
#include <benchmark/benchmark.h>

#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "mem/cache.hpp"
#include "mem/mact.hpp"
#include "noc/ring.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "workloads/profile.hpp"
#include "workloads/profile_stream.hpp"

using namespace smarco;

static void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    EventQueue q;
    Cycle now = 0;
    int sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(now + 1 + (i % 7), [&sink] { ++sink; });
        now += 8;
        q.runUntil(now);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleFire);

static void
BM_RngNext(benchmark::State &state)
{
    Rng rng(42);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc += rng.next();
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngNext);

static void
BM_ZipfSample(benchmark::State &state)
{
    ZipfDist zipf(4096, 0.9);
    Rng rng(43);
    std::size_t acc = 0;
    for (auto _ : state)
        acc += zipf.sample(rng);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ZipfSample);

static void
BM_CacheAccess(benchmark::State &state)
{
    StatRegistry reg;
    mem::CacheParams p;
    p.sizeBytes = 16 * 1024;
    mem::Cache cache(reg, p, "c");
    Rng rng(44);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.nextBelow(64 * 1024), false).hit);
}
BENCHMARK(BM_CacheAccess);

static void
BM_MactCollect(benchmark::State &state)
{
    Simulator sim;
    mem::MactParams p;
    mem::Mact mact(sim, p, "mact");
    mact.setSink([](mem::MactBatch &&) {});
    Rng rng(45);
    std::uint64_t id = 0;
    Cycle now = 0;
    for (auto _ : state) {
        mem::MemRequest req;
        req.id = ++id;
        req.addr = 0x9000'0000 + rng.nextBelow(4096);
        req.bytes = 4;
        benchmark::DoNotOptimize(mact.collect(req, now));
        mact.tick(++now);
    }
}
BENCHMARK(BM_MactCollect);

static void
BM_ProfileStreamNext(benchmark::State &state)
{
    const auto &prof = workloads::htcProfile("wordcount");
    workloads::AddressLayout layout;
    layout.spmLocalBase = 0x1000'0000;
    layout.heapBase = 0x8000'0000;
    layout.streamBase = 0x9000'0000;
    workloads::ProfileStream stream(prof, layout, ~0ull >> 2, 7);
    isa::MicroOp op;
    for (auto _ : state) {
        stream.next(op);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_ProfileStreamNext);

static void
BM_RingSaturatedCycle(benchmark::State &state)
{
    Simulator sim;
    noc::RingParams rp;
    rp.numStops = 17;
    noc::Ring ring(sim, rp, "ring");
    for (std::uint32_t s = 0; s < rp.numStops; ++s)
        ring.setHandler(s, [](noc::Packet &&) {});
    Rng rng(46);
    Cycle now = 0;
    for (auto _ : state) {
        for (std::uint32_t s = 0; s < rp.numStops; ++s) {
            noc::Packet pkt;
            pkt.payloadBytes = 8;
            ring.inject(s, (s + 5) % rp.numStops, std::move(pkt));
        }
        ring.tick(now++);
    }
}
BENCHMARK(BM_RingSaturatedCycle);

static void
BM_ChipCyclePerCore(benchmark::State &state)
{
    Simulator sim;
    auto cfg = chip::ChipConfig::scaled(2, 8);
    chip::SmarcoChip chip(sim, cfg);
    workloads::TaskSetParams tp;
    tp.count = 64;
    tp.seed = 3;
    auto tasks = workloads::makeTaskSet(
        workloads::htcProfile("wordcount"), tp);
    for (auto &t : tasks)
        t.numOps = 1u << 30; // effectively endless
    chip.submit(tasks);
    sim.run(5000); // warm up
    for (auto _ : state)
        sim.run(1);
    state.SetItemsProcessed(state.iterations() * chip.numCores());
}
BENCHMARK(BM_ChipCyclePerCore);

BENCHMARK_MAIN();
