/**
 * @file
 * Fig. 23 — scalability on KMP: performance (task throughput in real
 * time) versus the number of threads for SmarCo and the Xeon
 * baseline. SmarCo's thread count is the number of concurrently
 * resident tasks; the Xeon's is the software worker count.
 */
#include "bench_util.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

/**
 * Gops/s of the Xeon baseline with T software threads over a fixed
 * pool of work, so serial pthread creation and scheduling overhead
 * show up exactly where the thread count makes them significant.
 */
double
xeonPerf(std::uint32_t threads, const workloads::BenchProfile &prof)
{
    baseline::BaselineParams params;
    const auto m =
        runBaseline(params, prof, /*count=*/4096, threads, 8000, 61,
                    /*max_cycles=*/2'000'000'000);
    const double secs = static_cast<double>(m.cycles) /
                        (params.freqGHz * 1e9);
    return secs > 0.0
        ? static_cast<double>(m.opsCommitted) / secs / 1e9
        : 0.0;
}

/** Gops/s of SmarCo with exactly T resident task threads. */
double
smarcoPerf(std::uint32_t threads, const workloads::BenchProfile &prof)
{
    const auto cfg = chip::ChipConfig::simulated256();
    // T long-running tasks: thread count stays at T for the whole
    // measurement window.
    const std::uint64_t ops = std::max<std::uint64_t>(
        6000, 1'500'000 / std::max(threads, 1u));
    const auto run = runSmarco(cfg, prof, threads, ops, 61);
    const double secs = static_cast<double>(run.metrics.cycles) /
                        (cfg.freqGHz * 1e9);
    return secs > 0.0
        ? static_cast<double>(run.metrics.opsCommitted) / secs / 1e9
        : 0.0;
}

} // namespace

int
main()
{
    banner("Fig. 23", "scalability on KMP: performance vs thread "
                      "count");

    const auto &prof = workloads::htcProfile("kmp");
    const std::uint32_t threads[] = {1,   2,   4,    8,   16,  32,
                                     64,  128, 256, 512, 1024, 2048};

    std::printf("%8s %14s %14s\n", "threads", "Xeon (Gops/s)",
                "SmarCo (Gops/s)");
    for (std::uint32_t t : threads) {
        const double xe = xeonPerf(std::min(t, 2048u), prof);
        const double sm = smarcoPerf(t, prof);
        std::printf("%8u %14.2f %14.2f%s\n", t, xe, sm,
                    sm > xe ? "   <- SmarCo ahead" : "");
    }

    note("");
    note("paper shape: the Xeon peaks around 32-64 threads and then");
    note("degrades under thread-creation/scheduling overhead; SmarCo");
    note("starts far lower but keeps scaling and crosses over past 64");
    note("threads (Section 4.2.6, Fig. 23).");
    return 0;
}
