/**
 * @file
 * Kernel micro-bench: simulated-cycles-per-wall-second with the
 * quiescence-aware fast-forward kernel on versus forced
 * tick-every-cycle mode.
 *
 * The workload is deliberately idle-heavy (Fig. 21 flavour): one full
 * sub-ring receives a sparse trickle of RNC tasks spread over a long
 * release span, so the chip spends most simulated cycles with every
 * component quiescent but the scheduler's chain table non-empty. The
 * forced kernel must tick through every gap; the fast-forward kernel
 * jumps straight to each release.
 *
 * kernel.* scalars are registered in each run's StatRegistry and
 * refreshed with a zero-length re-run after timing, so `--stats-json`
 * exports carry the measured throughput alongside the chip stats.
 *
 * Exits non-zero when fast-forward fails to reach a 1.5x speedup on
 * this workload, so the harness can gate on kernel regressions.
 */
#include <chrono>

#include "bench_util.hpp"
#include "sim/stats.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

struct KernelRun {
    Cycle simCycles = 0;
    double wallSec = 0.0;
    double cyclesPerSec = 0.0;
    Cycle skipped = 0;
    std::uint64_t jumps = 0;
    std::uint64_t tasks = 0;
};

KernelRun
measure(bool fast_forward)
{
    Simulator sim;
    sim.setFastForward(fast_forward);
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 16));

    Scalar cps(sim.stats(), "kernel.cyclesPerSec",
               "simulated cycles per wall-clock second");
    Scalar skipped(sim.stats(), "kernel.cyclesSkipped",
                   "cycles the kernel fast-forwarded over");
    Scalar jumps(sim.stats(), "kernel.fastForwards",
                 "number of multi-cycle clock jumps");
    Scalar mode(sim.stats(), "kernel.fastForward",
                "1 when fast-forward was enabled for this run");

    workloads::TaskSetParams tp;
    tp.count = 48;
    tp.seed = 29;
    tp.releaseSpan = 5'000'000; // sparse arrivals: long idle gaps
    // submitTo() lands the whole set in the sub-scheduler's chain
    // table up front (paper's pre-loaded chain-table regime), so the
    // scheduler stays busy() across every release gap and only the
    // quiescence kernel can skip the waiting cycles. chip.submit()
    // would defer injection through the event queue and let the
    // legacy whole-chip idle jump hide the difference.
    for (const auto &t : workloads::makeTaskSet(
             workloads::htcProfile("rnc"), tp))
        chip.submitTo(0, t);

    auto campaign = armFaultsFromCli(sim, chip);
    const auto t0 = std::chrono::steady_clock::now();
    const Cycle end = chip.runUntilDone(50'000'000);
    const auto t1 = std::chrono::steady_clock::now();

    KernelRun r;
    r.simCycles = end;
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    if (r.wallSec <= 0.0)
        r.wallSec = 1e-9;
    r.cyclesPerSec = static_cast<double>(end) / r.wallSec;
    r.skipped = sim.cyclesSkipped();
    r.jumps = sim.fastForwards();
    r.tasks = chip.metrics().tasksCompleted;

    mode.set(fast_forward ? 1.0 : 0.0);
    cps.set(r.cyclesPerSec);
    skipped.set(static_cast<double>(r.skipped));
    jumps.set(static_cast<double>(r.jumps));
    sim.run(0); // zero-length re-run refreshes the stats snapshot
    return r;
}

} // namespace

int
main()
{
    banner("KERNEL", "fast-forward vs tick-every-cycle throughput");
    note("idle-heavy workload: 48 rnc tasks over a 5M-cycle release "
         "span, 1 sub-ring x 16 cores");

    const KernelRun forced = measure(false);
    const KernelRun ff = measure(true);

    std::printf("\n  %-14s %14s %10s %14s %12s %8s\n", "mode",
                "sim cycles", "wall s", "cycles/s", "skipped",
                "jumps");
    const auto row = [](const char *name, const KernelRun &r) {
        std::printf("  %-14s %14llu %10.3f %14.3e %12llu %8llu\n",
                    name,
                    static_cast<unsigned long long>(r.simCycles),
                    r.wallSec, r.cyclesPerSec,
                    static_cast<unsigned long long>(r.skipped),
                    static_cast<unsigned long long>(r.jumps));
    };
    row("forced", forced);
    row("fast-forward", ff);

    if (ff.simCycles != forced.simCycles ||
        ff.tasks != forced.tasks) {
        std::printf("\n  FAIL: modes disagree on the simulation "
                    "itself (cycles %llu vs %llu, tasks %llu vs "
                    "%llu)\n",
                    static_cast<unsigned long long>(ff.simCycles),
                    static_cast<unsigned long long>(forced.simCycles),
                    static_cast<unsigned long long>(ff.tasks),
                    static_cast<unsigned long long>(forced.tasks));
        return 1;
    }

    const double speedup = forced.wallSec / ff.wallSec;
    std::printf("\n  speedup: %.2fx (%llu of %llu cycles skipped)\n",
                speedup,
                static_cast<unsigned long long>(ff.skipped),
                static_cast<unsigned long long>(ff.simCycles));
    if (speedup < 1.5) {
        std::printf("  FAIL: expected >= 1.5x on this idle-heavy "
                    "workload\n");
        return 1;
    }
    std::printf("  PASS\n");
    return 0;
}
