/**
 * @file
 * Fig. 1 — HTC applications on a conventional high-performance
 * processor (Xeon-like baseline):
 *  (a) idle ratio of logical resources vs thread count,
 *  (b) instruction starvation vs thread count,
 *  (c) L1/L2/LLC miss ratios,
 *  (d) L1/L2/LLC average access latencies.
 */
#include "bench_util.hpp"

using namespace smarco;
using namespace smarco::bench;

int
main()
{
    banner("Fig. 1", "HTC kernels on the conventional (Xeon-like) chip");

    // Three basic HTC algorithms, as in the paper's motivation
    // study. Figs. 1a/1b sweep the number of threads multiplexed on
    // ONE pipeline ("thread number in pipeline"), so the sweep runs
    // on a single-core configuration.
    const char *kernels[] = {"wordcount", "kmp", "search"};
    const std::uint32_t thread_counts[] = {1, 2, 4, 8, 16, 32};

    std::printf("\n(a) idle ratio / (b) instruction starvation vs "
                "threads in one pipeline\n");
    std::printf("%-10s", "bench");
    for (auto t : thread_counts)
        std::printf("   T=%-4u", t);
    std::printf("\n");

    baseline::BaselineParams one_core;
    one_core.numCores = 1;
    // One core's slice of the chip-level memory bandwidth.
    one_core.dram.channels = 1;
    one_core.dram.bytesPerCycle = 9.66;
    for (const char *k : kernels) {
        const auto &prof = workloads::htcProfile(k);
        std::vector<baseline::BaselineMetrics> runs;
        for (auto t : thread_counts)
            runs.push_back(runBaseline(one_core, prof,
                                       /*count=*/4ull * t + 16,
                                       t, /*ops=*/12000, /*seed=*/5));

        std::printf("%-10s", (std::string(k) + " idle").c_str());
        for (const auto &m : runs)
            std::printf("   %6.3f", m.idleSlotRatio);
        std::printf("\n");
        std::printf("%-10s", "  starve");
        for (const auto &m : runs)
            std::printf("   %6.3f", m.starvationRatio);
        std::printf("\n");
    }

    std::printf("\n(c) cache miss ratio / (d) average access latency "
                "(48 threads)\n");
    std::printf("%-10s %8s %8s %8s %10s %10s %10s\n", "bench",
                "L1 miss", "L2 miss", "LLC miss", "L1 lat", "L2 lat",
                "LLC lat");
    for (const char *k : kernels) {
        const auto &prof = workloads::htcProfile(k);
        const auto m = runBaseline({}, prof, 192, 48, 12000, 7);
        std::printf("%-10s %8.3f %8.3f %8.3f %10.1f %10.1f %10.1f\n",
                    k, m.l1MissRatio, m.l2MissRatio, m.llcMissRatio,
                    m.l1AvgLatency, m.l2AvgLatency, m.llcAvgLatency);
    }

    note("");
    note("paper shape: idle ratio and starvation grow with the thread");
    note("count; multi-level caches show high miss ratios and rising");
    note("access latency on HTC workloads (Section 1, Fig. 1).");
    return 0;
}
