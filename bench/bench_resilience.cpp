/**
 * @file
 * Resilience sweep — throughput and RNC deadline-miss-rate
 * degradation versus fault rate, SmarCo versus the conventional
 * baseline. Not a paper figure: the paper asserts datacenter-class
 * fault tolerance qualitatively (Section 6); this harness quantifies
 * how the reproduced chip degrades when faults are injected.
 *
 * Each sweep point multiplies a fixed base fault mix by rateScale.
 * Candidate fault arrivals are generated once at the ceiling rate and
 * thinned per point (src/fault/), so the accepted sets nest across
 * the sweep: a higher point replays every fault of a lower one plus
 * new ones, and throughput should be monotone non-increasing instead
 * of re-rolled noise. A run that wedges is killed by the campaign
 * watchdog, so completing the sweep at all demonstrates graceful
 * degradation.
 *
 * Usage: bench_resilience [--quick]
 */
#include <algorithm>
#include <cstring>

#include "bench_util.hpp"
#include "sched/sub_scheduler.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

/** Base fault mix at rateScale 1, per million cycles. */
fault::FaultSpec
baseSpec(double scale, double ceiling)
{
    fault::FaultSpec spec;
    spec.coreHangRate = 4.0;
    spec.coreKillRate = 4.0;
    spec.nocDegradeRate = 2.0;
    spec.nocDupRate = 2.0;
    spec.dramStallRate = 3.0;
    spec.mactLossRate = 2.0;
    spec.rateScale = scale;
    spec.rateScaleCeiling = ceiling;
    // The drop probability is continuous rather than scheduled, so it
    // scales directly with the sweep point.
    spec.nocDropProb = std::min(0.0005 * scale, 0.1);
    // A bounded fault storm: at the top sweep points the per-task
    // kill interval drops below the task runtime, so completion
    // during the storm is statistically impossible — the chip rides
    // it out and drains the re-dispatched tasks once it ends.
    spec.horizon = 2'000'000;
    spec.watchdogInterval = 250'000;
    // Detect hangs well inside the watchdog window.
    spec.heartbeatInterval = 5'000;
    spec.hangTimeout = 40'000;
    spec.dramStallDuration = 8'000;
    // The top sweep points kill tasks repeatedly; give re-dispatch
    // enough attempts that the workload drains instead of abandoning.
    spec.maxAttempts = 64;
    return spec;
}

struct Point {
    double scale = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t expected = 0;
    double throughput = 0.0; ///< tasks per Mcycle of useful work
    double missRate = 0.0;   ///< RNC deadline misses / RNC tasks
    std::uint64_t injected = 0;
};

struct SmarcoSetup {
    std::uint64_t searchCount;
    std::uint64_t rncCount;
    Cycle rncDeadline; ///< kNoCycle during calibration
};

/** One SmarCo run of the mixed search + RNC set at one sweep point.
 *  When rnc_last_finish is given, reports the latest RNC exit (used
 *  by the clean calibration run to fix the deadline). */
Point
runSmarcoPoint(const SmarcoSetup &setup, double scale, double ceiling,
               Cycle *rnc_last_finish = nullptr)
{
    Simulator sim;
    const auto cfg = chip::ChipConfig::scaled(2, 4);
    chip::SmarcoChip chip(sim, cfg);

    workloads::TaskSetParams sp;
    sp.count = setup.searchCount;
    sp.seed = 17;
    sp.releaseSpan = 100'000;
    auto tasks =
        workloads::makeTaskSet(workloads::htcProfile("search"), sp);

    workloads::TaskSetParams rp;
    rp.count = setup.rncCount;
    rp.seed = 43;
    rp.deadline = setup.rncDeadline;
    rp.realtime = setup.rncDeadline != kNoCycle;
    auto rnc =
        workloads::makeTaskSet(workloads::htcProfile("rnc"), rp);
    for (auto &t : rnc) {
        // makeTaskSet numbers each set from 0; the scheduler needs
        // chip-unique ids across the merged submission.
        t.id += setup.searchCount;
        tasks.push_back(t);
    }
    chip.submit(tasks);

    std::unique_ptr<fault::FaultCampaign> campaign;
    if (scale > 0.0) {
        campaign = std::make_unique<fault::FaultCampaign>(
            sim, baseSpec(scale, ceiling), 23);
        campaign->arm(chip.faultTargets());
    }
    chip.runUntilDone(400'000'000);

    const auto m = chip.metrics();
    Point p;
    p.scale = scale;
    p.completed = m.tasksCompleted;
    p.expected = setup.searchCount + setup.rncCount;
    p.throughput = m.lastTaskFinish > 0
                       ? static_cast<double>(m.tasksCompleted) * 1e6 /
                             static_cast<double>(m.lastTaskFinish)
                       : 0.0;
    p.missRate = setup.rncCount > 0
                     ? static_cast<double>(m.deadlineMisses) /
                           static_cast<double>(setup.rncCount)
                     : 0.0;
    p.injected = campaign ? campaign->injected() : 0;
    if (rnc_last_finish) {
        *rnc_last_finish = 0;
        for (std::uint32_t r = 0; r < cfg.noc.numSubRings; ++r)
            for (const auto &e : chip.subScheduler(r).exits())
                if (e.taskId >= setup.searchCount)
                    *rnc_last_finish =
                        std::max(*rnc_last_finish, e.finish);
    }
    return p;
}

/** One baseline run (core + DRAM faults only: no ring, no MACT). */
Point
runBaselinePoint(std::uint64_t count, double scale, double ceiling)
{
    Simulator sim;
    baseline::BaselineParams bp;
    bp.numCores = 4;
    bp.llc = mem::CacheParams{"llc", 4 * 1024 * 1024, 16, 64, 38};
    baseline::BaselineChip chip(sim, bp);
    workloads::TaskSetParams tp;
    tp.count = count;
    tp.seed = 17;
    chip.spawnWorkers(8, workloads::makeTaskSet(
                             workloads::htcProfile("search"), tp));
    std::unique_ptr<fault::FaultCampaign> campaign;
    if (scale > 0.0) {
        campaign = std::make_unique<fault::FaultCampaign>(
            sim, baseSpec(scale, ceiling), 23);
        campaign->arm(chip.faultTargets());
    }
    sim.run(800'000'000);
    const auto m = chip.metrics();
    Point p;
    p.scale = scale;
    p.completed = m.tasksCompleted;
    p.expected = count;
    p.throughput = m.lastTaskFinish > 0
                       ? static_cast<double>(m.tasksCompleted) * 1e6 /
                             static_cast<double>(m.lastTaskFinish)
                       : 0.0;
    p.injected = campaign ? campaign->injected() : 0;
    return p;
}

void
printPoints(const char *name, const std::vector<Point> &points,
            bool rnc)
{
    std::printf("\n%s\n", name);
    std::printf("  %8s %10s %12s %10s %10s\n", "scale", "faults",
                "tasks/Mcyc", rnc ? "missRate" : "-", "completed");
    for (const Point &p : points)
        std::printf("  %8.0f %10llu %12.3f %10.3f %6llu/%llu\n",
                    p.scale,
                    static_cast<unsigned long long>(p.injected),
                    p.throughput, rnc ? p.missRate : 0.0,
                    static_cast<unsigned long long>(p.completed),
                    static_cast<unsigned long long>(p.expected));
}

/** Monotone non-increasing within tolerance (thinning nests the
 *  fault sets, but recovery reshuffles schedules slightly). */
bool
checkMonotone(const std::vector<Point> &points)
{
    for (std::size_t i = 1; i < points.size(); ++i)
        if (points[i].throughput > points[i - 1].throughput * 1.02)
            return false;
    return true;
}

bool
checkGraceful(const std::vector<Point> &points)
{
    for (const Point &p : points)
        if (p.completed != p.expected || p.throughput <= 0.0)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    banner("Resilience",
           "throughput & deadline-miss degradation vs fault rate");

    std::vector<double> scales =
        quick ? std::vector<double>{0.0, 4.0, 64.0}
              : std::vector<double>{0.0, 1.0, 4.0, 16.0, 64.0};
    const double ceiling = 64.0;

    SmarcoSetup setup;
    setup.searchCount = quick ? 16 : 32;
    setup.rncCount = quick ? 8 : 16;
    setup.rncDeadline = kNoCycle;

    // Calibrate the RNC deadline off the clean run: 20% slack over
    // the latest clean finish, so misses measure fault impact, not a
    // deadline the clean chip already can't hold.
    Cycle clean_rnc_finish = 0;
    runSmarcoPoint(setup, 0.0, ceiling, &clean_rnc_finish);
    setup.rncDeadline = clean_rnc_finish + clean_rnc_finish / 5;
    std::printf("  RNC deadline calibrated to %llu cycles\n",
                static_cast<unsigned long long>(setup.rncDeadline));

    std::vector<Point> smarco;
    for (double s : scales)
        smarco.push_back(runSmarcoPoint(setup, s, ceiling));
    printPoints("SmarCo (search + RNC mix)", smarco, true);

    std::vector<Point> base;
    for (double s : scales)
        base.push_back(runBaselinePoint(quick ? 8 : 16, s, ceiling));
    printPoints("baseline 4-core / 8-thread (search)", base, false);

    const bool mono_s = checkMonotone(smarco);
    const bool mono_b = checkMonotone(base);
    const bool grace_s = checkGraceful(smarco);
    const bool grace_b = checkGraceful(base);
    std::printf("\nchecks:\n");
    std::printf("  smarco throughput monotone non-increasing: %s\n",
                mono_s ? "PASS" : "FAIL");
    std::printf("  baseline throughput monotone non-increasing: %s\n",
                mono_b ? "PASS" : "FAIL");
    std::printf("  smarco graceful degradation (all complete): %s\n",
                grace_s ? "PASS" : "FAIL");
    std::printf("  baseline graceful degradation (all complete): %s\n",
                grace_b ? "PASS" : "FAIL");

    note("");
    note("expected shape: throughput falls and the RNC miss rate");
    note("rises as the fault mix scales up; every point completes");
    note("(recovery re-dispatches killed/hung tasks) -- a wedged run");
    note("would be aborted by the campaign watchdog instead.");
    return (mono_s && mono_b && grace_s && grace_b) ? 0 : 1;
}
