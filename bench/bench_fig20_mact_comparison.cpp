/**
 * @file
 * Fig. 20 — MACT versus the conventional structure (no collection):
 * execution speedup, memory access request latency, NoC bandwidth
 * utilisation, and the number of memory access requests, per
 * benchmark. Also runs the DESIGN.md ablation of the direct star
 * datapath under the same load.
 */
#include "bench_util.hpp"

using namespace smarco;
using namespace smarco::bench;

int
main()
{
    banner("Fig. 20", "MACT vs conventional (per benchmark, "
                      "normalised to MACT off)");

    std::printf("%-12s %9s %12s %11s %11s\n", "bench", "speedup",
                "req latency", "NoC util", "#requests");

    for (const auto &prof : workloads::htcProfiles()) {
        auto cfg_on = chip::ChipConfig::scaled(4, 8);
        cfg_on.mact.enabled = true;
        auto cfg_off = cfg_on;
        cfg_off.mact.enabled = false;

        const auto on = runSmarco(cfg_on, prof, 96, 10000, 29);
        const auto off = runSmarco(cfg_off, prof, 96, 10000, 29);

        const double speedup =
            static_cast<double>(off.metrics.cycles) /
            static_cast<double>(on.metrics.cycles);
        const double lat_ratio =
            on.metrics.avgMemLatency / off.metrics.avgMemLatency;
        const double noc_ratio = off.metrics.nocUtilisation > 0.0
            ? on.metrics.nocUtilisation / off.metrics.nocUtilisation
            : 0.0;
        const double req_ratio =
            static_cast<double>(on.metrics.dramRequests) /
            static_cast<double>(off.metrics.dramRequests);
        std::printf("%-12s %8.3fx %11.3fx %10.3fx %10.3fx\n",
                    prof.name.c_str(), speedup, lat_ratio, noc_ratio,
                    req_ratio);
    }

    std::printf("\nAblation: direct star datapath on/off "
                "(RNC, realtime traffic)\n");
    {
        const auto &rnc = workloads::htcProfile("rnc");
        auto mk = [&](bool direct) {
            Simulator sim;
            auto cfg = chip::ChipConfig::scaled(4, 8);
            cfg.directPath.enabled = direct;
            chip::SmarcoChip chip(sim, cfg);
            workloads::TaskSetParams tp;
            tp.count = 96;
            tp.seed = 31;
            tp.realtime = true;
            auto tasks = workloads::makeTaskSet(rnc, tp);
            for (auto &t : tasks)
                t.numOps = 10000;
            chip.submit(tasks);
            chip.runUntilDone(200'000'000);
            return chip.metrics();
        };
        const auto with_dp = mk(true);
        const auto without_dp = mk(false);
        std::printf("  direct path ON : cycles=%llu  mem latency=%.1f\n",
                    static_cast<unsigned long long>(with_dp.cycles),
                    with_dp.avgMemLatency);
        std::printf("  direct path OFF: cycles=%llu  mem latency=%.1f\n",
                    static_cast<unsigned long long>(without_dp.cycles),
                    without_dp.avgMemLatency);
    }

    note("");
    note("paper shape: benchmarks with many small discrete accesses");
    note("(KMP, RNC, wordcount) speed up and issue far fewer memory");
    note("requests; K-means is at/below break-even because collection");
    note("adds latency; NoC bandwidth utilisation rises (4.2.3).");
    return 0;
}
