/**
 * @file
 * Table 2 — hardware configurations of the Xeon E7-8890V4 baseline
 * and SmarCo, printed from the actual model parameters so the table
 * cannot drift from what the simulators implement.
 */
#include "bench_util.hpp"

using namespace smarco;
using namespace smarco::bench;

int
main()
{
    banner("Table 2", "parameters of Xeon E7-8890V4 and SmarCo");

    const auto cfg = chip::ChipConfig::simulated256();
    baseline::BaselineParams xeon;

    const double smarco_l1i =
        cfg.numCores() * cfg.core.icache.sizeBytes / (1024.0 * 1024.0);
    const double smarco_l1d =
        cfg.numCores() * cfg.core.dcache.sizeBytes / (1024.0 * 1024.0);
    const double smarco_spm =
        cfg.numCores() * cfg.core.spm.sizeBytes / (1024.0 * 1024.0);
    const double smarco_bw =
        cfg.dram.channels * cfg.dram.bytesPerCycle * cfg.freqGHz;

    std::printf("%-12s | %-28s | %-28s\n", "", "Xeon E7-8890V4",
                "SmarCo");
    std::printf("%.88s\n",
                "-----------------------------------------------------"
                "-----------------------------------");
    std::printf("%-12s | %2u cores, %2u threads        | %3u cores, "
                "%4u threads\n", "Core", xeon.numCores,
                xeon.numCores * xeon.smtPerCore, cfg.numCores(),
                cfg.numThreadsTotal());
    std::printf("%-12s | %.1f GHz                     | %.1f GHz\n",
                "", xeon.freqGHz, cfg.freqGHz);
    std::printf("%-12s | %.2f MB L1I$, %.2f MB L1D$  | %.0f MB L1I$, "
                "%.0f MB L1D$,\n", "Cache & SPM",
                xeon.numCores * xeon.l1i.sizeBytes / (1024.0 * 1024.0),
                xeon.numCores * xeon.l1d.sizeBytes / (1024.0 * 1024.0),
                smarco_l1i, smarco_l1d);
    std::printf("%-12s | %.0f MB L2$, %.0f MB LLC      | %.0f MB SPM\n",
                "",
                xeon.numCores * xeon.l2.sizeBytes / (1024.0 * 1024.0),
                xeon.llc.sizeBytes / (1024.0 * 1024.0), smarco_spm);
    std::printf("%-12s | QPI                          | hierarchy "
                "ring,\n", "NoC");
    std::printf("%-12s |                              |   sub-ring "
                "%u-bit, main %u-bit\n", "",
                (cfg.noc.subFixedBytesPerDir * 2 + cfg.noc.subFlexBytes)
                    * 8,
                (cfg.noc.mainFixedBytesPerDir * 2 +
                 cfg.noc.mainFlexBytes) * 8);
    std::printf("%-12s | 256 GB, %.0f GB/s             | 64 GB, "
                "%.1f GB/s\n", "Memory",
                xeon.dram.channels * xeon.dram.bytesPerCycle *
                    xeon.freqGHz,
                smarco_bw);
    std::printf("%-12s | 14 nm                        | 32 nm "
                "(evaluation node)\n", "Process");
    std::printf("%-12s | 165 W                        | 240 W "
                "(Table 1)\n", "Power");
    std::printf("%-12s | -                            | 751 mm2 "
                "(Table 1)\n", "Die Area");

    note("");
    note("values printed from the live model parameters; compare with");
    note("the paper's Table 2.");
    return 0;
}
