/**
 * @file
 * Table 1 — area overheads and power consumptions of the SmarCo
 * design at the 32 nm node (McPAT/CACTI/Orion-style analytical
 * models), plus the 40 nm prototype and a 14 nm projection.
 */
#include "bench_util.hpp"

#include "power/power_model.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

void
printReport(const char *title, const power::ChipPowerReport &report)
{
    std::printf("\n%s\n", title);
    std::printf("%-18s %12s %12s\n", "Main Components", "Area (mm2)",
                "Power (Watt)");
    for (const auto &c : report.components)
        std::printf("%-18s %12.2f %12.2f\n", c.name.c_str(),
                    c.areaMm2, c.totalW());
    std::printf("%-18s %12.2f %12.2f\n", "Total",
                report.totalAreaMm2(), report.totalPowerW());
}

} // namespace

int
main()
{
    banner("Table 1", "area and power of SmarCo (1.5 GHz, 32 nm)");

    printReport("32 nm (paper's Table 1 configuration):",
                power::smarcoPower(power::SmarcoPowerSpec{}));

    power::SmarcoPowerSpec proto;
    proto.node = power::TechNode::nm40();
    proto.numCores = 32;
    proto.numSubRings = 2;
    proto.freqGHz = 1.0;
    proto.numMemCtrls = 1;
    proto.memBandwidthGBs = 34.1;
    printReport("TSMC 40 nm prototype (32 cores, 256 threads):",
                power::smarcoPower(proto));

    power::SmarcoPowerSpec scaled14;
    scaled14.node = power::TechNode::nm14();
    printReport("14 nm projection (full 256-core chip):",
                power::smarcoPower(scaled14));

    note("");
    note("paper Table 1 (32 nm): Cores 634.32/209.91, Ring 57.43/14.55,");
    note("MACT 1.43/0.14, SPM+Cache 44.90/1.84, MC+PHY 12.92/13.65,");
    note("Total 751.00 mm2 / 240.09 W.");
    return 0;
}
