/**
 * @file
 * Fig. 2 — CDN (Nginx-like video service) on the conventional
 * processor: achieved throughput saturates at the 10 Gbps NIC while
 * CPU utilisation stays low, and branch / L1 miss ratios degrade as
 * the client count approaches the limit.
 */
#include "bench_util.hpp"

#include "workloads/cdn.hpp"

using namespace smarco;
using namespace smarco::bench;

namespace {

/**
 * Run the CDN serving model for a window: chunk-service tasks arrive
 * at the NIC-capped rate and persistent worker threads serve them.
 */
workloads::CdnPoint
servePoint(const workloads::CdnWorkload &cdn, std::uint64_t clients,
           Cycle window)
{
    Simulator sim;
    baseline::BaselineParams params;
    baseline::BaselineChip chip(sim, params);
    chip.spawnWorkers(48, {}, /*persistent=*/true);

    // Chunk arrivals: NIC-paced, converted to core cycles.
    const double chunks_per_cycle =
        cdn.chunkRate(clients) / (params.freqGHz * 1e9);
    const auto profile =
        std::make_shared<workloads::BenchProfile>(
            cdn.chunkProfile(clients));
    const Cycle spacing = chunks_per_cycle > 0.0
        ? static_cast<Cycle>(1.0 / chunks_per_cycle)
        : window;
    std::uint64_t arrivals = 0;
    for (Cycle t = 30000; t + 30000 < window; t += spacing) {
        ++arrivals;
        sim.events().schedule(t, [&chip, profile, t]() {
            workloads::TaskSpec task;
            task.id = t;
            task.profile = profile.get();
            task.numOps = profile->opsPerTask;
            task.seed = t * 2654435761ull;
            chip.injectTask(task);
        });
    }
    auto campaign = armFaultsFromCli(sim, chip);
    sim.run(window);

    const auto m = chip.metrics();
    workloads::CdnPoint p;
    p.clients = clients;
    p.offeredGbps =
        static_cast<double>(clients) * cdn.params().videoMbps / 1000.0;
    const double served = static_cast<double>(chip.tasksCompleted());
    p.achievedGbps = served *
        static_cast<double>(cdn.params().chunkBytes) * 8.0 /
        (static_cast<double>(window) / (params.freqGHz * 1e9)) / 1e9;
    p.cpuUtilisation = m.cpuUtilisation;
    p.branchMissRatio = m.branchMissRatio;
    p.l1MissRatio = m.l1MissRatio;
    return p;
}

} // namespace

int
main()
{
    banner("Fig. 2", "conventional processor under the CDN workload "
                     "(25 Mbps streams, 10 Gbps NIC)");

    workloads::CdnWorkload cdn;
    std::printf("NIC saturates at %llu clients\n\n",
                static_cast<unsigned long long>(
                    cdn.saturationClients()));
    std::printf("%8s %10s %10s %9s %12s %9s\n", "clients",
                "offered", "achieved", "CPU util", "branch miss",
                "L1 miss");
    std::printf("%8s %10s %10s %9s %12s %9s\n", "", "(Gbps)",
                "(Gbps)", "", "", "");

    for (std::uint64_t clients : {50ull, 100ull, 200ull, 300ull,
                                  400ull, 500ull, 600ull}) {
        const auto p = servePoint(cdn, clients, 10'000'000);
        std::printf("%8llu %10.2f %10.2f %9.3f %12.3f %9.3f\n",
                    static_cast<unsigned long long>(p.clients),
                    p.offeredGbps, p.achievedGbps, p.cpuUtilisation,
                    p.branchMissRatio, p.l1MissRatio);
    }

    note("");
    note("paper shape: achieved bandwidth caps at the NIC limit, CPU");
    note("utilisation stays under ~10%, branch misses exceed 10% near");
    note("the limit, and the L1 miss ratio is ~40% (Section 1).");
    return 0;
}
