/**
 * @file
 * Quickstart: build a SmarCo chip, run a batch of HTC tasks through
 * the laxity-aware schedulers, and read the results.
 *
 *   $ ./quickstart [num_tasks]
 *
 * This walks the core public API surface:
 *   - Simulator: the cycle-driven kernel owning clock/events/stats
 *   - ChipConfig: presets (simulated256, prototype40nm, scaled)
 *   - SmarcoChip: the assembled 256-core processor
 *   - workloads::makeTaskSet: benchmark-profile task generation
 *   - ChipMetrics / StatRegistry: results
 */
#include <cstdio>
#include <cstdlib>

#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "fault/fault_campaign.hpp"
#include "workloads/profile.hpp"
#include "workloads/task.hpp"

using namespace smarco;

int
main(int argc, char **argv)
{
    const std::uint64_t num_tasks =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

    // 1. A Simulator owns simulated time, the event queue, and the
    //    statistics registry.
    Simulator sim;

    // 2. Pick a chip configuration. scaled(4, 16) is a quarter-size
    //    chip (4 sub-rings x 16 cores) that runs fast on a laptop;
    //    ChipConfig::simulated256() is the paper's full chip.
    auto cfg = chip::ChipConfig::scaled(4, 16);
    std::printf("chip: %s  (%u cores, %u hardware threads)\n",
                cfg.name.c_str(), cfg.numCores(),
                cfg.numThreadsTotal());

    // 3. Build the chip: TCG cores, hierarchical ring NoC, MACTs,
    //    direct datapath, DRAM, and the hardware schedulers.
    chip::SmarcoChip chip(sim, cfg);

    // 4. Generate a task set from one of the six HTC benchmark
    //    profiles and hand it to the main scheduler.
    const auto &profile = workloads::htcProfile("wordcount");
    workloads::TaskSetParams tp;
    tp.count = num_tasks;
    tp.seed = 42;
    chip.submit(workloads::makeTaskSet(profile, tp));

    // Optional: --faults=campaign.json arms a fault campaign.
    auto campaign = fault::armFaultsFromCli(sim, chip);

    // 5. Run until the chip drains.
    const Cycle end = chip.runUntilDone();

    // 6. Read whole-chip metrics...
    const auto m = chip.metrics();
    std::printf("\nfinished at cycle %llu\n",
                static_cast<unsigned long long>(end));
    std::printf("tasks completed : %llu\n",
                static_cast<unsigned long long>(m.tasksCompleted));
    std::printf("micro-ops       : %llu  (aggregate IPC %.1f)\n",
                static_cast<unsigned long long>(m.opsCommitted),
                m.aggregateIpc);
    std::printf("throughput      : %.1f tasks per Mcycle "
                "(%.2f Mtasks/s at %.1f GHz)\n", m.tasksPerMCycle,
                m.tasksPerMCycle * cfg.freqGHz / 1e3, cfg.freqGHz);
    std::printf("mem latency     : %.1f cycles (blocking requests)\n",
                m.avgMemLatency);
    std::printf("DRAM requests   : %llu\n",
                static_cast<unsigned long long>(m.dramRequests));
    std::printf("NoC utilisation : %.1f%%\n",
                100.0 * m.nocUtilisation);

    // ...or drill into any component stat by name.
    std::printf("\nper-component stats (sample):\n");
    for (const char *name : {"chip.mact00.batches",
                             "chip.mact00.batchSize",
                             "chip.noc.endToEnd",
                             "chip.core000.pairSwitches"}) {
        if (const Stat *s = sim.stats().find(name))
            std::printf("  %-28s %.2f\n", name, s->value());
    }
    return 0;
}
