/**
 * @file
 * Hard real-time RNC service on SmarCo (Sections 3.4, 3.5.2, 3.7).
 *
 * A Radio Network Controller stream must answer within a deadline.
 * This example submits deadline-tagged RNC tasks, compares the
 * hardware laxity-aware scheduler against the software deadline
 * scheduler, and shows the superior-real-time machinery at work:
 * priority requests bypass the MACT and ride the direct star
 * datapath.
 *
 *   $ ./realtime_rnc [num_tasks]
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "fault/fault_campaign.hpp"
#include "workloads/profile.hpp"
#include "workloads/task.hpp"

using namespace smarco;

namespace {

struct Outcome {
    std::uint64_t completed = 0;
    std::uint64_t misses = 0;
    Cycle firstExit = 0;
    Cycle lastExit = 0;
    double directTransfers = 0.0;
    double mactBypassed = 0.0;
};

Outcome
serve(sched::SchedPolicy policy, std::uint64_t num_tasks,
      Cycle deadline)
{
    Simulator sim;
    auto cfg = chip::ChipConfig::scaled(2, 16);
    cfg.subSched.policy = policy;
    cfg.core.issuePolicy =
        policy == sched::SchedPolicy::HardwareLaxity
            ? core::IssuePolicy::LaxityAware
            : core::IssuePolicy::RoundRobin;
    chip::SmarcoChip chip(sim, cfg);

    const auto &prof = workloads::htcProfile("rnc");
    workloads::TaskSetParams tp;
    tp.count = num_tasks;
    tp.seed = 7;
    tp.opsJitter = 0.05;
    tp.deadline = deadline;
    tp.realtime = true; // superior real-time priority class
    chip.submit(workloads::makeTaskSet(prof, tp));
    auto campaign = fault::armFaultsFromCli(sim, chip);
    chip.runUntilDone();

    Outcome out;
    std::vector<Cycle> exits;
    for (std::uint32_t g = 0; g < cfg.noc.numSubRings; ++g) {
        for (const auto &e : chip.subScheduler(g).exits()) {
            ++out.completed;
            out.misses += e.metDeadline ? 0 : 1;
            exits.push_back(e.finish);
        }
    }
    if (!exits.empty()) {
        out.firstExit = *std::min_element(exits.begin(), exits.end());
        out.lastExit = *std::max_element(exits.begin(), exits.end());
    }
    if (const Stat *s = sim.stats().find("chip.direct.transfers"))
        out.directTransfers = s->value();
    double bypassed = 0.0;
    for (std::uint32_t g = 0; g < cfg.noc.numSubRings; ++g)
        bypassed += static_cast<double>(chip.mact(g).bypassed());
    out.mactBypassed = bypassed;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t num_tasks =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

    // Deadline chosen so a well-scheduled run just fits (probe with
    // the hardware scheduler, pad by ~2%).
    const auto probe =
        serve(sched::SchedPolicy::HardwareLaxity, num_tasks, kNoCycle);
    const Cycle deadline = probe.lastExit; // exact hardware-run fit

    std::printf("RNC service: %llu deadline-tagged tasks, deadline "
                "%llu cycles\n\n",
                static_cast<unsigned long long>(num_tasks),
                static_cast<unsigned long long>(deadline));

    for (auto policy : {sched::SchedPolicy::SoftwareDeadline,
                        sched::SchedPolicy::HardwareLaxity}) {
        const bool hw = policy == sched::SchedPolicy::HardwareLaxity;
        const auto r = serve(policy, num_tasks, deadline);
        std::printf("%s scheduler:\n",
                    hw ? "hardware laxity-aware" : "software deadline");
        std::printf("  completed %llu, deadline misses %llu "
                    "(success rate %.1f%%)\n",
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.misses),
                    100.0 * static_cast<double>(r.completed - r.misses) /
                        static_cast<double>(r.completed));
        std::printf("  exit window [%llu .. %llu], spread %llu "
                    "cycles\n",
                    static_cast<unsigned long long>(r.firstExit),
                    static_cast<unsigned long long>(r.lastExit),
                    static_cast<unsigned long long>(
                        r.lastExit - r.firstExit));
        std::printf("  direct-datapath transfers: %.0f, MACT-bypassed "
                    "priority requests: %.0f\n\n",
                    r.directTransfers, r.mactBypassed);
    }

    std::printf("the hardware scheduler narrows the exit window and "
                "improves the\nsuccess rate; superior-real-time "
                "requests bypass the MACT and use\nthe star datapath "
                "for predictable memory latency.\n");
    return 0;
}
