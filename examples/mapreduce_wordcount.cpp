/**
 * @file
 * MapReduce WordCount on SmarCo (Section 3.6, Fig. 15).
 *
 * The framework is functional + timed: the map/reduce lambdas below
 * compute the real word counts on the host, while matching simulated
 * tasks run on the chip so the reported cycle counts include
 * scheduling, SPM staging, NoC and memory behaviour.
 *
 *   $ ./mapreduce_wordcount            # built-in sample text
 *   $ ./mapreduce_wordcount file.txt   # count words of a file
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "fault/fault_campaign.hpp"
#include "runtime/mapreduce.hpp"
#include "workloads/profile.hpp"

using namespace smarco;

namespace {

std::string
sampleText()
{
    std::string text;
    const char *lines[] = {
        "the quick brown fox jumps over the lazy dog",
        "high throughput computing pursues tasks per unit time",
        "the winner is the team with more cars passing the line",
        "datacenters serve many users before the deadline",
        "the fox and the dog chase tasks through the ring",
    };
    for (int rep = 0; rep < 40; ++rep)
        for (const char *l : lines)
            text += std::string(l) + "\n";
    return text;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        input = ss.str();
    } else {
        input = sampleText();
    }

    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(4, 16));

    // WordCount expressed against the MapReduce API.
    runtime::MapReduceJob::Config cfg;
    cfg.profile = &workloads::htcProfile("wordcount");
    cfg.sliceBytes = 2048;
    runtime::MapReduceJob job(
        [](const std::string &slice, runtime::Emitter &out) {
            std::string word;
            for (char c : slice) {
                if (c == ' ' || c == '\n' || c == '\t') {
                    if (!word.empty())
                        out.emit(word, "1");
                    word.clear();
                } else {
                    word.push_back(c);
                }
            }
            if (!word.empty())
                out.emit(word, "1");
        },
        [](const std::string &,
           const std::vector<std::string> &values) {
            std::uint64_t n = 0;
            for (const auto &v : values)
                n += std::strtoull(v.c_str(), nullptr, 10);
            return std::to_string(n);
        },
        cfg);

    auto campaign = fault::armFaultsFromCli(sim, chip);
    const auto counts = job.run(chip, input);

    // Top-10 words by count.
    std::vector<std::pair<std::uint64_t, std::string>> ranked;
    for (const auto &[word, count] : counts)
        ranked.emplace_back(std::strtoull(count.c_str(), nullptr, 10),
                            word);
    std::sort(ranked.rbegin(), ranked.rend());

    std::printf("input: %zu bytes, %zu distinct words\n\n",
                input.size(), counts.size());
    std::printf("top words:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size());
         ++i)
        std::printf("  %-16s %llu\n", ranked[i].second.c_str(),
                    static_cast<unsigned long long>(ranked[i].first));

    const auto &st = job.stats();
    std::printf("\nsimulated execution (Fig. 15 flow):\n");
    std::printf("  map    : %llu tasks, %llu cycles\n",
                static_cast<unsigned long long>(st.mapTasks),
                static_cast<unsigned long long>(st.mapCycles));
    std::printf("  reduce : %llu tasks, %llu cycles\n",
                static_cast<unsigned long long>(st.reduceTasks),
                static_cast<unsigned long long>(st.reduceCycles));
    std::printf("  total  : %llu cycles (%.2f us at 1.5 GHz)\n",
                static_cast<unsigned long long>(st.totalCycles),
                static_cast<double>(st.totalCycles) / 1500.0);
    return 0;
}
