/**
 * @file
 * CDN chunk-service offload (paper Section 1 + Section 6).
 *
 * The paper's motivating study shows a conventional server wasting a
 * Xeon on NIC-bound CDN traffic. SmarCo is built as a PCIe
 * accelerator: this example serves the same chunk-processing load on
 * (a) the conventional chip and (b) a SmarCo accelerator, and
 * compares throughput per watt.
 *
 *   $ ./cdn_offload [clients]
 */
#include <cstdio>
#include <cstdlib>

#include "baseline/baseline_chip.hpp"
#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "fault/fault_campaign.hpp"
#include "power/power_model.hpp"
#include "workloads/cdn.hpp"
#include "workloads/task.hpp"

using namespace smarco;

int
main(int argc, char **argv)
{
    const std::uint64_t clients =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;

    workloads::CdnWorkload cdn;
    // Host-side profile: everything cacheable, connection table in
    // DRAM. Accelerator-side profile: the same work with the chunk
    // payload and per-connection slice DMA-staged into the SPM.
    const auto host_profile = cdn.chunkProfile(clients);
    auto accel_profile = host_profile;
    accel_profile.name = "cdn-chunk-spm";
    accel_profile.fracSpmLocal = 0.58;
    accel_profile.fracHeap = 0.10;
    accel_profile.heapWorkingSet = 32 * 1024;
    accel_profile.taskInputBytes = cdn.params().chunkBytes / 4;
    accel_profile.validate();
    const std::uint64_t chunks = 128; // service batch under test

    std::printf("CDN offload: %llu clients (%.1f Gbps offered), "
                "%llu chunk tasks of %llu ops\n\n",
                static_cast<unsigned long long>(clients),
                static_cast<double>(clients) * cdn.params().videoMbps /
                    1000.0,
                static_cast<unsigned long long>(chunks),
                static_cast<unsigned long long>(
                    host_profile.opsPerTask));

    // (a) Conventional server path.
    double xeon_rate, xeon_watts;
    {
        Simulator sim;
        baseline::BaselineParams params;
        baseline::BaselineChip host(sim, params);
        workloads::TaskSetParams tp;
        tp.count = chunks;
        tp.seed = 3;
        host.spawnWorkers(48, workloads::makeTaskSet(host_profile, tp));
        auto campaign = fault::armFaultsFromCli(sim, host);
        sim.run(2'000'000'000);
        const auto m = host.metrics();
        xeon_rate = m.tasksPerMCycle * params.freqGHz; // tasks/ms
        xeon_watts = power::xeonPowerW(m.cpuUtilisation);
        std::printf("conventional Xeon : %8.1f chunks/ms at %.0f W\n",
                    xeon_rate * 1e3 / 1e3, xeon_watts);
    }

    // (b) SmarCo accelerator behind PCIe.
    double smarco_rate, smarco_watts;
    {
        Simulator sim;
        const auto cfg = chip::ChipConfig::prototype40nm();
        chip::SmarcoChip accel(sim, cfg);
        workloads::TaskSetParams tp;
        tp.count = chunks;
        tp.seed = 3;
        accel.submit(workloads::makeTaskSet(accel_profile, tp));
        auto campaign = fault::armFaultsFromCli(sim, accel);
        accel.runUntilDone();
        const auto m = accel.metrics();
        smarco_rate = m.tasksPerMCycle * cfg.freqGHz;
        power::SmarcoPowerSpec spec;
        spec.node = power::TechNode::nm40();
        spec.numCores = cfg.numCores();
        spec.numSubRings = cfg.noc.numSubRings;
        spec.freqGHz = cfg.freqGHz;
        spec.numMemCtrls = cfg.noc.numMemCtrls;
        spec.memBandwidthGBs = 34.1;
        spec.activity = 0.3 + 0.7 * std::min(1.0, m.aggregateIpc /
                                                      (cfg.numCores() *
                                                       2.0));
        smarco_watts = power::smarcoPower(spec).totalPowerW();
        std::printf("SmarCo prototype  : %8.1f chunks/ms at %.0f W\n",
                    smarco_rate * 1e3 / 1e3, smarco_watts);
    }

    std::printf("\nthroughput ratio      : %.2fx\n",
                smarco_rate / xeon_rate);
    std::printf("throughput-per-watt   : %.2fx\n",
                (smarco_rate / smarco_watts) /
                    (xeon_rate / xeon_watts));
    std::printf("\nthe accelerator frees the host CPU for request "
                "handling while\nserving chunk processing at a "
                "fraction of the energy.\n");
    return 0;
}
