/**
 * @file
 * Unit tests of the chain tables and schedulers (Section 3.7).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/logging.hpp"
#include "sched/chain_table.hpp"
#include "sched/main_scheduler.hpp"
#include "sched/sub_scheduler.hpp"
#include "workloads/profile.hpp"

using namespace smarco;
using namespace smarco::sched;

namespace {

workloads::TaskSpec
task(TaskId id, Cycle deadline = kNoCycle, bool realtime = false,
     std::uint64_t ops = 1000)
{
    workloads::TaskSpec t;
    t.id = id;
    t.numOps = ops;
    t.deadline = deadline;
    t.realtime = realtime;
    return t;
}

} // namespace

TEST(Laxity, DeadlineMinusRemaining)
{
    const auto t = task(1, 5000, false, 1000);
    EXPECT_DOUBLE_EQ(taskLaxity(t, 0), 4000.0);
    EXPECT_DOUBLE_EQ(taskLaxity(t, 1000), 3000.0);
    EXPECT_DOUBLE_EQ(taskLaxity(t, 6000), -1000.0);
}

TEST(Laxity, NoDeadlineIsInfinite)
{
    EXPECT_TRUE(std::isinf(taskLaxity(task(1), 0)));
}

TEST(ChainTable, FifoWithoutLaxity)
{
    TaskChainTable table(16);
    EXPECT_TRUE(table.insert(task(1)));
    EXPECT_TRUE(table.insert(task(2)));
    EXPECT_TRUE(table.insert(task(3)));
    EXPECT_EQ(table.size(), 3u);
    EXPECT_EQ(table.popNext(0, false)->id, 1u);
    EXPECT_EQ(table.popNext(0, false)->id, 2u);
    EXPECT_EQ(table.popNext(0, false)->id, 3u);
    EXPECT_FALSE(table.popNext(0, false).has_value());
}

TEST(ChainTable, LeastLaxityFirst)
{
    TaskChainTable table(16);
    table.insert(task(1, 9000, false, 1000)); // laxity 8000
    table.insert(task(2, 3000, false, 1000)); // laxity 2000
    table.insert(task(3, 5000, false, 1000)); // laxity 4000
    EXPECT_EQ(table.popNext(0, true)->id, 2u);
    EXPECT_EQ(table.popNext(0, true)->id, 3u);
    EXPECT_EQ(table.popNext(0, true)->id, 1u);
}

TEST(ChainTable, HighPriorityChainFirst)
{
    TaskChainTable table(16);
    table.insert(task(1, 100, false, 10));      // very urgent, normal
    table.insert(task(2, 90000, true, 10));     // relaxed, realtime
    EXPECT_EQ(table.highCount(), 1u);
    // The high-priority chain is always served first.
    EXPECT_EQ(table.popNext(0, true)->id, 2u);
    EXPECT_EQ(table.popNext(0, true)->id, 1u);
    EXPECT_EQ(table.highCount(), 0u);
}

TEST(ChainTable, CapacityExhaustion)
{
    TaskChainTable table(4);
    for (TaskId i = 0; i < 4; ++i)
        EXPECT_TRUE(table.insert(task(i)));
    EXPECT_FALSE(table.insert(task(99)));
    // Freeing one entry re-enables insertion (null chain recycling).
    table.popNext(0, false);
    EXPECT_TRUE(table.insert(task(100)));
}

TEST(ChainTable, InterleavedInsertPopKeepsIntegrity)
{
    TaskChainTable table(8);
    std::uint64_t inserted = 0, popped = 0;
    for (int round = 0; round < 100; ++round) {
        inserted += table.insert(task(round, 1000 + round * 10)) ? 1 : 0;
        if (round % 2 == 1) {
            auto t = table.popNext(round, true);
            ASSERT_TRUE(t.has_value());
            ++popped;
        }
    }
    while (table.popNext(0, true).has_value())
        ++popped;
    // Every successfully inserted task comes back out exactly once.
    EXPECT_EQ(popped, inserted);
    EXPECT_TRUE(table.empty());
    // And freed entries are recycled through the null chain.
    for (TaskId i = 0; i < 8; ++i)
        EXPECT_TRUE(table.insert(task(i)));
    EXPECT_FALSE(table.insert(task(9)));
}

namespace {

/** Fake core farm for scheduler tests (through real TcgCores). */
struct SchedEnv {
    Simulator sim;

    struct NullPort : core::MemPort {
        void
        request(CoreId, ThreadId, const isa::MicroOp &,
                core::MemDone done) override
        {
            if (done)
                done();
        }
        void writeback(CoreId, Addr) override {}
    };

    NullPort port;
    std::vector<std::unique_ptr<core::TcgCore>> cores;

    SubScheduler &
    make(SchedPolicy policy, std::uint32_t num_cores = 2)
    {
        SubSchedulerParams sp;
        sp.policy = policy;
        sub = std::make_unique<SubScheduler>(sim, sp, 0, "sched");
        for (std::uint32_t i = 0; i < num_cores; ++i) {
            core::CoreParams cp;
            cores.push_back(std::make_unique<core::TcgCore>(
                sim, cp, i, 0x1000'0000 + i * 0x20000, port,
                strprintf("core%u", i)));
            sub->addCore(cores.back().get());
        }
        sub->setStreamFactory(
            [](const workloads::TaskSpec &t, CoreId) {
                std::vector<isa::MicroOp> ops(t.numOps);
                isa::MicroOp halt;
                halt.kind = isa::OpKind::Halt;
                ops.push_back(halt);
                return std::make_unique<isa::TraceStream>(ops);
            });
        return *sub;
    }

    std::unique_ptr<SubScheduler> sub;
};

struct SchedFixture : ::testing::Test, SchedEnv {
};

} // namespace

TEST_F(SchedFixture, HardwareSchedulerDrainsQueue)
{
    auto &s = make(SchedPolicy::HardwareLaxity);
    for (TaskId i = 0; i < 40; ++i)
        s.submit(task(i, kNoCycle, false, 500));
    sim.run(1000000);
    EXPECT_EQ(s.tasksCompleted(), 40u);
    EXPECT_EQ(s.pendingTasks(), 0u);
    EXPECT_EQ(s.deadlineMisses(), 0u);
}

TEST_F(SchedFixture, SoftwareSchedulerDrainsQueue)
{
    auto &s = make(SchedPolicy::SoftwareDeadline);
    for (TaskId i = 0; i < 40; ++i)
        s.submit(task(i, kNoCycle, false, 500));
    sim.run(5000000);
    EXPECT_EQ(s.tasksCompleted(), 40u);
}

TEST_F(SchedFixture, ExitRecordsCarryDeadlineVerdict)
{
    auto &s = make(SchedPolicy::HardwareLaxity);
    s.submit(task(0, 2, false, 50000)); // impossible deadline
    s.submit(task(1, kNoCycle, false, 100));
    sim.run(1000000);
    ASSERT_EQ(s.exits().size(), 2u);
    EXPECT_EQ(s.deadlineMisses(), 1u);
    bool saw_missed = false;
    for (const auto &e : s.exits()) {
        if (e.taskId == 0) {
            EXPECT_FALSE(e.metDeadline);
            saw_missed = true;
        }
    }
    EXPECT_TRUE(saw_missed);
}

TEST_F(SchedFixture, HardwareDispatchFasterThanSoftware)
{
    // Dispatch latency of the first task: HW decides in a few
    // cycles, SW waits for its next quantum.
    Cycle hw_done, sw_done;
    {
        auto &s = make(SchedPolicy::HardwareLaxity);
        s.submit(task(0, kNoCycle, false, 100));
        sim.run(1000000);
        hw_done = s.exits().front().finish;
    }
    SchedEnv other;
    {
        auto &s = other.make(SchedPolicy::SoftwareDeadline);
        // Miss the cycle-0 quantum on purpose.
        other.sim.run(10);
        s.submit(task(0, kNoCycle, false, 100));
        other.sim.run(1000000);
        sw_done = s.exits().front().finish;
    }
    EXPECT_LT(hw_done, sw_done);
}

TEST_F(SchedFixture, ReleaseTimeRespected)
{
    auto &s = make(SchedPolicy::HardwareLaxity);
    auto t = task(0, kNoCycle, false, 10);
    t.release = 500;
    s.submit(t);
    sim.run(1000000);
    ASSERT_EQ(s.exits().size(), 1u);
    EXPECT_GE(s.exits().front().finish, 500u);
}

TEST_F(SchedFixture, LoadCountsQueuedAndInFlight)
{
    auto &s = make(SchedPolicy::HardwareLaxity, 1);
    for (TaskId i = 0; i < 20; ++i)
        s.submit(task(i, kNoCycle, false, 2000));
    EXPECT_EQ(s.load(), 20u);
    sim.run(50);
    EXPECT_GT(s.load(), 0u);
    sim.run(1000000);
    EXPECT_EQ(s.load(), 0u);
}

TEST(MainScheduler, BalancesAcrossSubRings)
{
    Simulator sim;
    SchedEnv::NullPort port;
    std::vector<std::unique_ptr<core::TcgCore>> cores;
    std::vector<std::unique_ptr<SubScheduler>> subs;
    SubSchedulerParams sp;
    for (std::uint32_t g = 0; g < 4; ++g) {
        subs.push_back(std::make_unique<SubScheduler>(
            sim, sp, g, strprintf("s%u", g)));
        core::CoreParams cp;
        cores.push_back(std::make_unique<core::TcgCore>(
            sim, cp, g, 0x1000'0000 + g * 0x20000, port,
            strprintf("c%u", g)));
        subs.back()->addCore(cores.back().get());
        subs.back()->setStreamFactory(
            [](const workloads::TaskSpec &t, CoreId) {
                std::vector<isa::MicroOp> ops(t.numOps);
                isa::MicroOp halt;
                halt.kind = isa::OpKind::Halt;
                ops.push_back(halt);
                return std::make_unique<isa::TraceStream>(ops);
            });
    }
    MainScheduler main(sim, {}, "main");
    for (auto &s : subs)
        main.addSubScheduler(s.get());

    std::vector<workloads::TaskSpec> tasks;
    for (TaskId i = 0; i < 64; ++i) {
        workloads::TaskSpec t;
        t.id = i;
        t.numOps = 3000;
        tasks.push_back(t);
    }
    main.submitAll(tasks);
    sim.run(5000000);

    std::uint64_t total = 0;
    for (auto &s : subs) {
        // Every sub-ring got a meaningful share.
        EXPECT_GT(s->tasksCompleted(), 8u);
        total += s->tasksCompleted();
    }
    EXPECT_EQ(total, 64u);
    EXPECT_EQ(main.tasksRouted(), 64u);
}
