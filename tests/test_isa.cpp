/**
 * @file
 * Unit tests of the micro-op model and instruction streams.
 */
#include <gtest/gtest.h>

#include "isa/instr_stream.hpp"
#include "isa/micro_op.hpp"

using namespace smarco;
using namespace smarco::isa;

TEST(MicroOp, Predicates)
{
    MicroOp op;
    op.kind = OpKind::Load;
    EXPECT_TRUE(op.isMem());
    EXPECT_TRUE(op.isLoad());
    EXPECT_FALSE(op.isStore());
    op.kind = OpKind::Store;
    EXPECT_TRUE(op.isMem());
    EXPECT_TRUE(op.isStore());
    op.kind = OpKind::Alu;
    EXPECT_FALSE(op.isMem());
}

TEST(MicroOp, DefaultsAreBenign)
{
    MicroOp op;
    EXPECT_EQ(op.kind, OpKind::Alu);
    EXPECT_EQ(op.memClass, MemClass::None);
    EXPECT_EQ(op.execLatency, 1);
    EXPECT_FALSE(op.mispredict);
    EXPECT_FALSE(op.priority);
}

TEST(MicroOp, ToStringCoversAllKinds)
{
    EXPECT_EQ(toString(OpKind::Alu), "alu");
    EXPECT_EQ(toString(OpKind::Mul), "mul");
    EXPECT_EQ(toString(OpKind::Fp), "fp");
    EXPECT_EQ(toString(OpKind::Branch), "branch");
    EXPECT_EQ(toString(OpKind::Load), "load");
    EXPECT_EQ(toString(OpKind::Store), "store");
    EXPECT_EQ(toString(OpKind::Halt), "halt");
    EXPECT_EQ(toString(MemClass::None), "none");
    EXPECT_EQ(toString(MemClass::SpmLocal), "spm-local");
    EXPECT_EQ(toString(MemClass::SpmRemote), "spm-remote");
    EXPECT_EQ(toString(MemClass::Heap), "heap");
    EXPECT_EQ(toString(MemClass::Stream), "stream");
}

TEST(TraceStream, ReplaysInOrder)
{
    std::vector<MicroOp> ops(3);
    ops[0].kind = OpKind::Alu;
    ops[1].kind = OpKind::Load;
    ops[2].kind = OpKind::Halt;
    TraceStream s(ops);
    EXPECT_EQ(s.remaining(), 3u);

    MicroOp op;
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.kind, OpKind::Alu);
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.kind, OpKind::Load);
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.kind, OpKind::Halt);
    EXPECT_FALSE(s.next(op));
    EXPECT_EQ(s.emitted(), 3u);
    EXPECT_EQ(s.remaining(), 0u);
}

TEST(TraceStream, EmptyStreamEndsImmediately)
{
    TraceStream s({});
    MicroOp op;
    EXPECT_FALSE(s.next(op));
}
