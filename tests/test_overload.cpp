/**
 * @file
 * Tests of the end-to-end overload-control layer: the open-loop
 * request generator, scheduler admission + deadline-aware shedding,
 * the SLO-bounded retry driver, the baseline chip's bounded bag, and
 * the determinism contract (same seed, byte-identical stats in both
 * kernel modes; composition with fault injection stays monotone and
 * never trips the campaign watchdog).
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/baseline_chip.hpp"
#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "fault/fault_campaign.hpp"
#include "fault/fault_spec.hpp"
#include "runtime/overload.hpp"
#include "sched/shed.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/cdn.hpp"
#include "workloads/profile.hpp"
#include "workloads/request_gen.hpp"

using namespace smarco;

namespace {

const workloads::BenchProfile &
prof()
{
    return workloads::htcProfile("wordcount");
}

workloads::TaskSpec
request(TaskId id, std::uint64_t ops, Cycle release = 0,
        Cycle deadline = kNoCycle)
{
    workloads::TaskSpec t;
    t.id = id;
    t.profile = &prof();
    t.numOps = ops;
    t.release = release;
    t.deadline = deadline;
    t.realtime = deadline != kNoCycle;
    return t;
}

} // namespace

// ------------------------------------------------- request generator

TEST(RequestGen, SameSeedSameStream)
{
    workloads::RequestGenParams gp;
    gp.count = 64;
    gp.ratePerKCycle = 2.0;
    gp.relativeDeadline = 10'000;
    gp.seed = 7;
    const auto a = makePoissonRequests(prof(), gp);
    const auto b = makePoissonRequests(prof(), gp);
    ASSERT_EQ(a.size(), 64u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].release, b[i].release);
        EXPECT_EQ(a[i].deadline, b[i].deadline);
        EXPECT_EQ(a[i].numOps, b[i].numOps);
    }
}

TEST(RequestGen, ArrivalsIncreaseAtRoughlyTheRate)
{
    workloads::RequestGenParams gp;
    gp.count = 512;
    gp.ratePerKCycle = 4.0; // mean gap 250 cycles
    gp.seed = 3;
    const auto reqs = makePoissonRequests(prof(), gp);
    Cycle prev = 0;
    double gap_sum = 0.0;
    for (const auto &r : reqs) {
        EXPECT_GT(r.release, prev);
        gap_sum += static_cast<double>(r.release - prev);
        prev = r.release;
    }
    const double mean_gap = gap_sum / 512.0;
    EXPECT_GT(mean_gap, 150.0);
    EXPECT_LT(mean_gap, 400.0);
}

TEST(RequestGen, DeadlineIsRelativeToArrival)
{
    workloads::RequestGenParams gp;
    gp.count = 32;
    gp.ratePerKCycle = 1.0;
    gp.relativeDeadline = 5'000;
    gp.realtime = true;
    gp.seed = 5;
    for (const auto &r : makePoissonRequests(prof(), gp)) {
        ASSERT_TRUE(r.hasDeadline());
        EXPECT_EQ(r.deadline, r.release + 5'000);
        EXPECT_TRUE(r.realtime);
    }
}

TEST(RequestGen, DeadlineFractionSplitsClasses)
{
    workloads::RequestGenParams gp;
    gp.count = 256;
    gp.ratePerKCycle = 1.0;
    gp.relativeDeadline = 5'000;
    gp.deadlineFraction = 0.5;
    gp.seed = 5;
    std::size_t with = 0;
    for (const auto &r : makePoissonRequests(prof(), gp))
        with += r.hasDeadline() ? 1 : 0;
    EXPECT_GT(with, 64u);
    EXPECT_LT(with, 192u);

    gp.deadlineFraction = 0.0;
    for (const auto &r : makePoissonRequests(prof(), gp)) {
        EXPECT_FALSE(r.hasDeadline());
        EXPECT_FALSE(r.realtime);
    }
}

TEST(RequestGen, TraceReplaysGivenArrivals)
{
    const std::vector<Cycle> arrivals{100, 50, 700};
    workloads::RequestGenParams gp;
    gp.relativeDeadline = 1'000;
    gp.firstId = 40;
    const auto reqs = makeTraceRequests(prof(), arrivals, gp);
    ASSERT_EQ(reqs.size(), 3u);
    EXPECT_EQ(reqs[0].release, 100u);
    EXPECT_EQ(reqs[1].release, 50u);
    EXPECT_EQ(reqs[2].release, 700u);
    EXPECT_EQ(reqs[0].id, 40u);
    EXPECT_EQ(reqs[2].deadline, 1'700u);
}

TEST(RequestGenDeath, RejectsBadParams)
{
    workloads::RequestGenParams gp;
    gp.count = 0;
    EXPECT_DEATH(makePoissonRequests(prof(), gp), "empty");
    gp.count = 4;
    gp.ratePerKCycle = 0.0;
    EXPECT_DEATH(makePoissonRequests(prof(), gp), "positive");
}

// --------------------------------------------- admission & shedding

namespace {

struct Outcomes {
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    sched::ShedReason lastReason = sched::ShedReason::QueueFull;

    chip::SmarcoChip::RequestHook hook()
    {
        return [this](const workloads::TaskSpec &,
                      const chip::SmarcoChip::RequestResult &res) {
            if (res.completed) {
                ++completed;
            } else {
                ++shed;
                lastReason = res.reason;
            }
        };
    }
};

sched::AdmissionParams
admission(std::uint32_t cap, Cycle queued_cost = 0,
          double enter = 2.0, double exit = 0.5)
{
    sched::AdmissionParams ap;
    ap.subQueueCap = cap;
    ap.queuedCost = queued_cost;
    ap.degradedEnter = enter; // > 1 keeps degraded mode out of the way
    ap.degradedExit = exit;
    return ap;
}

} // namespace

TEST(Admission, FullQueueShedsInsteadOfFatal)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    chip.enableOverloadControl(admission(4));

    Outcomes out;
    const std::uint64_t total = 32;
    for (std::uint64_t i = 0; i < total; ++i)
        chip.submitRequest(request(i, 50'000), out.hook());
    chip.runUntilDone(100'000'000);

    EXPECT_GT(out.shed, 0u);
    EXPECT_GT(out.completed, 0u);
    EXPECT_EQ(out.completed + out.shed, total);
    EXPECT_EQ(out.lastReason, sched::ShedReason::QueueFull);
    EXPECT_EQ(chip.scheduler().tasksShed(), out.shed);
    EXPECT_EQ(chip.scheduler().tasksAdmitted(), out.completed);
}

TEST(Admission, InfeasibleDeadlineShedsAtIngress)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    chip.enableOverloadControl(admission(16));

    Outcomes out;
    // 10k ops can never finish by cycle 100: laxity test rejects it
    // without wasting a queue slot.
    chip.submitRequest(request(1, 10'000, 0, 100), out.hook());
    chip.runUntilDone(1'000'000);

    EXPECT_EQ(out.shed, 1u);
    EXPECT_EQ(out.completed, 0u);
    EXPECT_EQ(out.lastReason, sched::ShedReason::Infeasible);
}

TEST(Admission, QueuedCostTightensFeasibility)
{
    // With queuedCost the feasibility test charges the backlog: a
    // deadline generous enough for an empty chip is rejected when 8
    // queued tasks are each expected to add 50k cycles of sojourn.
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    chip.enableOverloadControl(admission(32, 50'000));

    Outcomes out;
    for (std::uint64_t i = 0; i < 8; ++i)
        chip.submitRequest(request(i, 60'000), out.hook());
    chip.submitRequest(request(99, 1'000, 0, 200'000), out.hook());
    chip.runUntilDone(100'000'000);

    EXPECT_EQ(out.shed, 1u);
    EXPECT_EQ(out.lastReason, sched::ShedReason::Infeasible);
    EXPECT_EQ(out.completed, 8u);
}

TEST(Admission, QueuedRequestPastDeadlineIsDroppedEarly)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    chip.enableOverloadControl(admission(64));

    Outcomes fill, out;
    // 32 fillers with tight laxity grab every hardware context.
    for (std::uint64_t i = 0; i < 32; ++i)
        chip.submitRequest(request(i, 30'000, 0, 31'000), fill.hook());
    // The victim passes admission (now + 1000 <= 3000) but every
    // context is held for ~30k cycles; by the first free slot its
    // deadline is history and the scheduler drops it at pop time.
    chip.submitRequest(request(99, 1'000, 0, 3'000), out.hook());
    chip.runUntilDone(100'000'000);

    EXPECT_EQ(out.shed, 1u);
    EXPECT_EQ(out.lastReason, sched::ShedReason::Expired);
    EXPECT_EQ(fill.completed, 32u);
    EXPECT_GT(chip.subScheduler(0).tasksExpired(), 0u);
}

TEST(Admission, DegradedModeShedsBestEffortFirst)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    // Capacity is 8; degraded mode enters at load >= 2 and needs
    // load < 1 to leave (hysteresis).
    chip.enableOverloadControl(admission(8, 0, 0.25, 0.1));

    Outcomes out;
    for (std::uint64_t i = 0; i < 3; ++i)
        chip.submitRequest(request(i, 100'000, 0, 10'000'000),
                           out.hook());
    sim.run(2'000); // let the load build up

    Outcomes be, dl;
    chip.submitRequest(request(10, 1'000), be.hook());
    chip.submitRequest(request(11, 1'000, 0, 10'000'000), dl.hook());
    chip.runUntilDone(100'000'000);

    EXPECT_TRUE(chip.scheduler().degraded());
    EXPECT_EQ(be.shed, 1u);
    EXPECT_EQ(be.lastReason, sched::ShedReason::Degraded);
    EXPECT_EQ(dl.completed, 1u); // deadline traffic rides through
    EXPECT_EQ(out.completed, 3u);

    // Hysteresis: once drained the next submission leaves degraded
    // mode and best-effort traffic is admitted again.
    Outcomes late;
    chip.submitRequest(request(12, 1'000), late.hook());
    chip.runUntilDone(100'000'000);
    EXPECT_FALSE(chip.scheduler().degraded());
    EXPECT_EQ(late.completed, 1u);
}

TEST(AdmissionDeath, RejectsBadKnobs)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    EXPECT_DEATH(chip.enableOverloadControl(admission(0)), "cap");
    EXPECT_DEATH(chip.enableOverloadControl(admission(4, 0, 0.5, 0.9)),
                 "exit");
    sched::AdmissionParams over;
    over.subQueueCap = 100'000; // beyond the chain-table capacity
    EXPECT_DEATH(chip.enableOverloadControl(over), "capacity");
}

// ------------------------------------------------ SLO-bounded retry

TEST(Retry, ShedRequestsRetryAndComplete)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    chip.enableOverloadControl(admission(4));

    runtime::OverloadParams op;
    op.backoffBase = 1'000;
    op.maxRetries = 20;
    runtime::OverloadDriver driver(chip, op);

    std::vector<workloads::TaskSpec> reqs;
    for (std::uint64_t i = 0; i < 12; ++i)
        reqs.push_back(request(i, 20'000, 10 * i));
    driver.drive(reqs);
    chip.runUntilDone(100'000'000);

    EXPECT_EQ(driver.requests(), 12u);
    EXPECT_EQ(driver.completed(), 12u);
    EXPECT_EQ(driver.goodput(), 12u); // best-effort: any finish counts
    EXPECT_GT(driver.retries(), 0u);
    EXPECT_EQ(driver.expired(), 0u);
    EXPECT_EQ(driver.pending(), 0u);
    EXPECT_EQ(driver.latency().count(), 12u);
}

TEST(Retry, DeadlineCapsTheRetryBudget)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    chip.enableOverloadControl(admission(2));

    runtime::OverloadParams op;
    op.backoffBase = 2'000;
    op.maxRetries = 50;
    runtime::OverloadDriver driver(chip, op);

    std::vector<workloads::TaskSpec> reqs;
    for (std::uint64_t i = 0; i < 8; ++i)
        reqs.push_back(request(i, 20'000, 10 * i, 10 * i + 40'000));
    driver.drive(reqs);
    chip.runUntilDone(100'000'000);

    // A retry that cannot finish by the deadline is abandoned rather
    // than retried forever: every request resolves exactly once.
    EXPECT_EQ(driver.requests(), 8u);
    EXPECT_GT(driver.expired(), 0u);
    EXPECT_EQ(driver.completed() + driver.expired(), 8u);
    EXPECT_EQ(driver.completed(),
              driver.goodput() + driver.sloMisses());
    EXPECT_EQ(driver.pending(), 0u);
}

TEST(Retry, TerminalShedsAreNeverRetried)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    chip.enableOverloadControl(admission(16));

    runtime::OverloadDriver driver(chip, {});
    driver.drive({request(1, 10'000, 0, 100)}); // infeasible
    chip.runUntilDone(1'000'000);

    EXPECT_EQ(driver.expired(), 1u);
    EXPECT_EQ(driver.retries(), 0u);
    EXPECT_EQ(driver.completed(), 0u);
    EXPECT_EQ(driver.pending(), 0u);
}

// ------------------------------------------------- baseline parity

TEST(BaselineOverload, BoundedBagShedsAndRecords)
{
    Simulator sim;
    baseline::BaselineChip chip(sim, baseline::BaselineParams{});
    chip.enableAdmission(4);
    chip.spawnWorkers(2, {}, /*persistent=*/true);

    std::uint64_t accepted = 0;
    for (std::uint64_t i = 0; i < 10; ++i)
        accepted += chip.tryInjectTask(request(i, 5'000)) ? 1 : 0;
    sim.run(1'000'000);

    EXPECT_EQ(accepted, 4u);
    EXPECT_EQ(chip.tasksShed(), 6u);
    EXPECT_EQ(chip.tasksCompleted(), 4u);
    const auto &lat = sim.stats().getAs<Histogram>("base.e2eLatency");
    EXPECT_EQ(lat.count(), 4u);
}

TEST(BaselineOverload, ExpiredTasksDropAtPopNotAfterService)
{
    Simulator sim;
    baseline::BaselineParams params;
    baseline::BaselineChip chip(sim, params);
    chip.enableAdmission(64);
    chip.spawnWorkers(1, {}, /*persistent=*/true);

    // The single worker is only ready after its spawn ramp; these
    // deadlines are already history by then, so the bag drops them
    // at pop time instead of burning service cycles.
    ASSERT_TRUE(chip.tryInjectTask(request(1, 20'000)));
    for (std::uint64_t i = 2; i <= 5; ++i)
        ASSERT_TRUE(chip.tryInjectTask(
            request(i, 20'000, 0, params.threadCreateCost / 2)));
    sim.run(2'000'000);

    EXPECT_EQ(chip.tasksExpired(), 4u);
    EXPECT_EQ(chip.tasksCompleted(), 1u);
}

// --------------------------------------------------- determinism

namespace {

/**
 * A full mixed-class overload run; returns the stats JSON dump. The
 * default rate is ~11x the chip's capacity (real overload: sheds,
 * retries, expiries all exercised); pass a lower rate for runs that
 * must complete every request.
 */
std::string
overloadRun(bool fast_forward, std::uint64_t seed,
            const fault::FaultSpec *spec = nullptr, double rate = 1.5)
{
    // TaskSpec keeps a pointer to its profile; the profile must
    // outlive the whole run.
    const auto cdn_prof = workloads::CdnWorkload().chunkProfile(300);

    Simulator sim;
    sim.setFastForward(fast_forward);
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    chip.enableOverloadControl(admission(8, 5'000));

    runtime::OverloadParams op;
    op.backoffBase = 2'000;
    op.seed = seed;
    runtime::OverloadDriver deadline_class(chip, op,
                                           "runtime.overload.dl");
    op.seed = seed + 1;
    runtime::OverloadDriver best_effort(chip, op,
                                        "runtime.overload.be");

    workloads::RequestGenParams gp;
    gp.count = 48;
    gp.ratePerKCycle = rate;
    gp.relativeDeadline = 400'000;
    gp.realtime = true;
    gp.opsOverride = 4'000;
    gp.seed = seed;
    deadline_class.drive(makePoissonRequests(cdn_prof, gp));
    gp.count = 8;
    gp.ratePerKCycle = 0.25;
    gp.relativeDeadline = kNoCycle;
    gp.realtime = false;
    gp.seed = seed + 1;
    gp.firstId = 1'000'000;
    best_effort.drive(
        makePoissonRequests(workloads::htcProfile("wordcount"), gp));

    std::unique_ptr<fault::FaultCampaign> campaign;
    if (spec) {
        campaign =
            std::make_unique<fault::FaultCampaign>(sim, *spec, 23);
        campaign->arm(chip.faultTargets());
    }
    chip.runUntilDone(400'000'000);

    EXPECT_EQ(deadline_class.pending(), 0u);
    EXPECT_EQ(best_effort.pending(), 0u);

    std::ostringstream os;
    sim.stats().dumpJson(os);
    return os.str();
}

} // namespace

TEST(OverloadDeterminism, KernelModesAreByteIdentical)
{
    const std::string ff = overloadRun(true, 9);
    const std::string forced = overloadRun(false, 9);
    EXPECT_EQ(ff, forced)
        << "overload stats diverge between fast-forward and forced "
           "per-cycle kernels";
}

TEST(OverloadDeterminism, SameSeedSameStats)
{
    EXPECT_EQ(overloadRun(true, 9), overloadRun(true, 9));
}

TEST(OverloadDeterminism, SeedChangesTheRun)
{
    EXPECT_NE(overloadRun(true, 9), overloadRun(true, 10));
}

// ------------------------------------------- composition with faults

namespace {

fault::FaultSpec
moderateFaults()
{
    fault::FaultSpec spec;
    spec.coreHangRate = 2.0;
    spec.coreKillRate = 2.0;
    spec.dramStallRate = 1.0;
    spec.horizon = 300'000;
    spec.watchdogInterval = 100'000;
    spec.heartbeatInterval = 5'000;
    spec.hangTimeout = 20'000;
    spec.dramStallDuration = 4'000;
    spec.maxAttempts = 64;
    return spec;
}

std::uint64_t
goodputOf(const std::string &dump)
{
    // "runtime.overload.dl.goodput":{"kind":"scalar","value":N,...
    const auto key = dump.find("runtime.overload.dl.goodput");
    EXPECT_NE(key, std::string::npos);
    const auto v = dump.find("\"value\":", key);
    return std::strtoull(dump.c_str() + v + 8, nullptr, 10);
}

} // namespace

TEST(OverloadWithFaults, DegradesMonotonicallyAndNeverWedges)
{
    // The campaign watchdog aborts the process on a wedged run, so
    // merely finishing both runs proves liveness under overload +
    // faults. Run at half capacity so the clean run completes every
    // request — only then is "faults cannot raise goodput" a sound
    // monotonicity check (under heavy overload a fault-perturbed
    // schedule can luckily complete a different, larger subset).
    const double half_capacity = 0.07;
    const std::string clean =
        overloadRun(true, 13, nullptr, half_capacity);
    ASSERT_EQ(goodputOf(clean), 48u);

    const fault::FaultSpec spec = moderateFaults();
    const std::string faulted =
        overloadRun(true, 13, &spec, half_capacity);
    EXPECT_LE(goodputOf(faulted), goodputOf(clean));
}

TEST(OverloadWithFaults, FaultedRunIsStillDeterministic)
{
    const fault::FaultSpec spec = moderateFaults();
    EXPECT_EQ(overloadRun(true, 13, &spec),
              overloadRun(false, 13, &spec));
}
