/**
 * @file
 * Cross-module integration and property tests: paper-shape claims on
 * reduced configurations, parameterised sweeps over benchmarks, and
 * SmarCo-vs-baseline sanity.
 */
#include <gtest/gtest.h>

#include "baseline/baseline_chip.hpp"
#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "workloads/profile.hpp"
#include "workloads/profile_stream.hpp"
#include "workloads/task.hpp"

using namespace smarco;

namespace {

/** Run a scaled SmarCo chip on one benchmark, return metrics. */
chip::ChipMetrics
runSmarco(const workloads::BenchProfile &prof, std::uint64_t tasks,
          chip::ChipConfig cfg, std::uint64_t seed = 17)
{
    Simulator sim;
    chip::SmarcoChip c(sim, cfg);
    workloads::TaskSetParams tp;
    tp.count = tasks;
    tp.seed = seed;
    c.submit(workloads::makeTaskSet(prof, tp));
    c.runUntilDone(100'000'000);
    return c.metrics();
}

} // namespace

// ---------------------------------------------------------------------
// Parameterised per-benchmark properties.
class PerBenchmark : public ::testing::TestWithParam<const char *>
{
};

INSTANTIATE_TEST_SUITE_P(AllHtc, PerBenchmark,
                         ::testing::Values("wordcount", "terasort",
                                           "search", "kmeans", "kmp",
                                           "rnc"));

TEST_P(PerBenchmark, ChipDrainsTaskSet)
{
    const auto &prof = workloads::htcProfile(GetParam());
    const auto m = runSmarco(prof, 16, chip::ChipConfig::scaled(2, 4));
    EXPECT_EQ(m.tasksCompleted, 16u);
    EXPECT_GT(m.aggregateIpc, 0.1);
}

TEST_P(PerBenchmark, BaselineDrainsTaskSet)
{
    Simulator sim;
    baseline::BaselineChip chip(sim, {});
    workloads::TaskSetParams tp;
    tp.count = 16;
    tp.seed = 23;
    chip.spawnWorkers(
        8, workloads::makeTaskSet(workloads::htcProfile(GetParam()),
                                  tp));
    sim.run(500'000'000);
    EXPECT_EQ(chip.tasksCompleted(), 16u);
}

TEST_P(PerBenchmark, InPairBeatsNoSwitchOnThroughput)
{
    const auto &prof = workloads::htcProfile(GetParam());
    auto cfg = chip::ChipConfig::scaled(1, 4);
    cfg.core.scheme = core::ThreadScheme::InPair;
    const auto paired = runSmarco(prof, 24, cfg);
    cfg.core.scheme = core::ThreadScheme::NoSwitch;
    const auto noswitch = runSmarco(prof, 24, cfg);
    EXPECT_EQ(paired.tasksCompleted, noswitch.tasksCompleted);
    // Latency hiding must not make things slower.
    EXPECT_LE(paired.cycles, noswitch.cycles + noswitch.cycles / 20);
}

TEST_P(PerBenchmark, DeterministicEndCycle)
{
    const auto &prof = workloads::htcProfile(GetParam());
    const auto a = runSmarco(prof, 8, chip::ChipConfig::scaled(2, 4));
    const auto b = runSmarco(prof, 8, chip::ChipConfig::scaled(2, 4));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.opsCommitted, b.opsCommitted);
    EXPECT_EQ(a.dramRequests, b.dramRequests);
}

// ---------------------------------------------------------------------
// Paper-shape properties on reduced configurations.

TEST(PaperShape, IpcGrowsNearLinearlyUpToFourThreads)
{
    // Fig. 17 on one core: IPC(4) ~ 4x IPC(1), IPC(8) > IPC(4).
    const auto &prof = workloads::htcProfile("wordcount");
    const auto ipc_at = [&](std::uint32_t threads) {
        Simulator sim;
        auto cfg = chip::ChipConfig::scaled(1, 4);
        cfg.core.numThreads = threads;
        cfg.core.maxRunning = std::min<std::uint32_t>(threads, 4);
        chip::SmarcoChip c(sim, cfg);
        for (std::uint32_t t = 0; t < threads; ++t) {
            workloads::TaskSpec ts;
            ts.id = t;
            ts.profile = &prof;
            ts.numOps = 30000;
            ts.seed = t + 1;
            c.core(0).attachTask(
                ts,
                std::make_unique<workloads::ProfileStream>(
                    prof, c.layoutFor(ts, 0), ts.numOps, ts.seed),
                nullptr);
        }
        c.runUntilDone(20'000'000);
        return c.core(0).ipc();
    };
    const double ipc1 = ipc_at(1);
    const double ipc4 = ipc_at(4);
    const double ipc8 = ipc_at(8);
    EXPECT_GT(ipc4 / ipc1, 3.0);
    EXPECT_LT(ipc4 / ipc1, 4.5);
    EXPECT_GT(ipc8, ipc4 * 1.05);
    EXPECT_LT(ipc8, ipc4 * 1.9);
}

TEST(PaperShape, HighDensitySlicingImprovesThroughput)
{
    // Fig. 18: on a saturated ring, finer slices deliver more small
    // packets per unit time. Closed-loop injection with KMP's access
    // granularity distribution.
    const auto &prof = workloads::htcProfile("kmp");
    const auto throughput_at = [&](std::uint32_t slice) {
        Simulator sim;
        noc::RingParams rp;
        rp.numStops = 17;
        rp.fixedBytesPerDir = 8;
        rp.flexBytes = 16;
        rp.sliceBytes = slice;
        noc::Ring ring(sim, rp, "ring");
        Rng rng(42);
        DiscreteDist gran(prof.granularityWeights);
        std::uint64_t delivered = 0;
        for (std::uint32_t s = 0; s < rp.numStops; ++s)
            ring.setHandler(s, [&](noc::Packet &&) { ++delivered; });
        // Closed loop: keep the injection queues topped up.
        for (int cycle = 0; cycle < 3000; ++cycle) {
            for (std::uint32_t s = 0; s < rp.numStops; ++s) {
                noc::Packet p;
                p.payloadBytes = workloads::kGranularitySizes[
                    gran.sample(rng)] + 4; // payload + header flit
                ring.inject(s, (s + 3) % rp.numStops, std::move(p));
            }
            sim.run(1);
        }
        return static_cast<double>(delivered) / 3000.0;
    };
    const double t2 = throughput_at(2);
    const double t8 = throughput_at(8);
    const double t16 = throughput_at(16);
    EXPECT_GT(t2, t16 * 1.3); // fine slices win clearly
    EXPECT_GE(t2, t8);        // still improving below 8 bytes
}

TEST(PaperShape, MactImprovesKmpButNotKmeans)
{
    // Fig. 20: KMP (tiny, bursty, discrete accesses) gains the most
    // from the MACT; K-means gains the least because its scattered
    // float accesses rarely share a line, so collection mostly adds
    // waiting latency.
    const auto run_with = [&](const char *bench, bool mact) {
        auto cfg = chip::ChipConfig::scaled(2, 4);
        cfg.mact.enabled = mact;
        return runSmarco(workloads::htcProfile(bench), 24, cfg);
    };
    const auto kmp_on = run_with("kmp", true);
    const auto kmp_off = run_with("kmp", false);
    // Fewer DRAM requests with the table on.
    EXPECT_LT(kmp_on.dramRequests, kmp_off.dramRequests);
    const double kmp_speedup = static_cast<double>(kmp_off.cycles) /
                               static_cast<double>(kmp_on.cycles);

    const auto km_on = run_with("kmeans", true);
    const auto km_off = run_with("kmeans", false);
    const double km_speedup = static_cast<double>(km_off.cycles) /
                              static_cast<double>(km_on.cycles);
    // The benefit ordering of Fig. 20 must hold.
    EXPECT_GT(kmp_speedup, km_speedup);
    // And K-means must be close to break-even (paper: < 1.0).
    EXPECT_LT(km_speedup, 1.1);
}

TEST(PaperShape, HardwareSchedulerTightensExitSpread)
{
    // Fig. 21 on a reduced sub-ring: the laxity-aware hardware
    // scheduler compresses the exit-time spread of same-deadline
    // tasks relative to the software deadline scheduler.
    const auto spread_with = [&](sched::SchedPolicy policy) {
        Simulator sim;
        auto cfg = chip::ChipConfig::scaled(1, 8);
        cfg.subSched.policy = policy;
        cfg.core.issuePolicy =
            policy == sched::SchedPolicy::HardwareLaxity
                ? core::IssuePolicy::LaxityAware
                : core::IssuePolicy::RoundRobin;
        chip::SmarcoChip c(sim, cfg);
        const auto &prof = workloads::htcProfile("rnc");
        workloads::TaskSetParams tp;
        tp.count = 64; // 8 cores x 8 contexts
        tp.seed = 77;
        // RNC streams are near-uniform; the spread under test is the
        // scheduler's, not the workload's (Fig. 21).
        tp.opsJitter = 0.03;
        tp.deadline = 2'000'000;
        tp.realtime = true;
        for (auto &t : workloads::makeTaskSet(prof, tp))
            c.submitTo(0, t);
        c.runUntilDone(50'000'000);
        const auto &exits = c.subScheduler(0).exits();
        Cycle lo = kNoCycle, hi = 0;
        for (const auto &e : exits) {
            lo = std::min(lo, e.finish);
            hi = std::max(hi, e.finish);
        }
        EXPECT_EQ(exits.size(), 64u);
        return hi - lo;
    };
    const Cycle hw = spread_with(sched::SchedPolicy::HardwareLaxity);
    const Cycle sw = spread_with(sched::SchedPolicy::SoftwareDeadline);
    EXPECT_LT(hw, sw);
}

TEST(PaperShape, SmarcoBeatsBaselineOnThroughputPerCycle)
{
    // Fig. 22 direction on reduced configs: per-cycle task
    // throughput of a 32-core SmarCo slice exceeds the 24-core
    // baseline on small-granularity HTC work.
    const auto &prof = workloads::htcProfile("kmp");
    const auto sm = runSmarco(prof, 128,
                              chip::ChipConfig::scaled(2, 16));
    Simulator sim;
    baseline::BaselineChip base(sim, {});
    workloads::TaskSetParams tp;
    tp.count = 128;
    tp.seed = 17;
    base.spawnWorkers(48, workloads::makeTaskSet(prof, tp));
    sim.run(500'000'000);
    const auto bm = base.metrics();
    EXPECT_EQ(sm.tasksCompleted, bm.tasksCompleted);
    EXPECT_GT(sm.tasksPerMCycle, bm.tasksPerMCycle);
}

TEST(PaperShape, SharedInstrSegmentAblation)
{
    // Section 3.1.2: disabling the shared instruction segment raises
    // instruction starvation on multithreaded cores.
    const auto starvation_with = [&](bool shared) {
        Simulator sim;
        auto cfg = chip::ChipConfig::scaled(1, 4);
        cfg.core.sharedInstrSegment = shared;
        chip::SmarcoChip c(sim, cfg);
        workloads::TaskSetParams tp;
        tp.count = 32;
        tp.seed = 31;
        c.submit(workloads::makeTaskSet(
            workloads::htcProfile("search"), tp));
        c.runUntilDone(100'000'000);
        double starve = 0.0;
        for (CoreId id = 0; id < c.numCores(); ++id)
            starve += c.core(id).starvationRatio();
        return starve;
    };
    EXPECT_LT(starvation_with(true), starvation_with(false));
}
