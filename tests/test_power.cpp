/**
 * @file
 * Tests of the analytical power/area models, including the Table 1
 * calibration.
 */
#include <gtest/gtest.h>

#include "power/power_model.hpp"

using namespace smarco::power;

TEST(Power, Table1CalibrationAt32nm)
{
    const auto report = smarcoPower(SmarcoPowerSpec{});
    // Table 1 rows (32 nm, peak activity).
    EXPECT_NEAR(report.component("Cores").areaMm2, 634.32, 0.5);
    EXPECT_NEAR(report.component("Cores").totalW(), 209.91, 0.5);
    EXPECT_NEAR(report.component("Hierarchy Ring").areaMm2, 57.43, 0.3);
    EXPECT_NEAR(report.component("Hierarchy Ring").totalW(), 14.55, 0.2);
    EXPECT_NEAR(report.component("MACT").areaMm2, 1.43, 0.05);
    EXPECT_NEAR(report.component("MACT").totalW(), 0.14, 0.02);
    EXPECT_NEAR(report.component("SPM+Cache").areaMm2, 44.90, 0.3);
    EXPECT_NEAR(report.component("SPM+Cache").totalW(), 1.84, 0.1);
    EXPECT_NEAR(report.component("MC+PHY").areaMm2, 12.92, 0.1);
    EXPECT_NEAR(report.component("MC+PHY").totalW(), 13.65, 0.2);
    EXPECT_NEAR(report.totalAreaMm2(), 751.00, 1.0);
    EXPECT_NEAR(report.totalPowerW(), 240.09, 1.0);
}

TEST(Power, MactIsTinyFractionOfChip)
{
    const auto report = smarcoPower(SmarcoPowerSpec{});
    EXPECT_LT(report.component("MACT").areaMm2 /
                  report.totalAreaMm2(),
              0.005);
}

TEST(Power, ActivityScalesDynamicOnly)
{
    SmarcoPowerSpec idle;
    idle.activity = 0.0;
    SmarcoPowerSpec busy;
    busy.activity = 1.0;
    const auto r_idle = smarcoPower(idle);
    const auto r_busy = smarcoPower(busy);
    EXPECT_LT(r_idle.totalPowerW(), r_busy.totalPowerW());
    EXPECT_GT(r_idle.totalPowerW(), 0.0); // leakage remains
    EXPECT_DOUBLE_EQ(r_idle.totalAreaMm2(), r_busy.totalAreaMm2());
}

TEST(Power, TechScalingDirections)
{
    SmarcoPowerSpec at32;
    SmarcoPowerSpec at40 = at32;
    at40.node = TechNode::nm40();
    SmarcoPowerSpec at14 = at32;
    at14.node = TechNode::nm14();
    const auto r32 = smarcoPower(at32);
    const auto r40 = smarcoPower(at40);
    const auto r14 = smarcoPower(at14);
    // Older node: bigger and hungrier; newer node: smaller, cooler.
    EXPECT_GT(r40.totalAreaMm2(), r32.totalAreaMm2());
    EXPECT_GT(r40.totalPowerW(), r32.totalPowerW());
    EXPECT_LT(r14.totalAreaMm2(), r32.totalAreaMm2());
    EXPECT_LT(r14.totalPowerW(), r32.totalPowerW());
}

TEST(Power, PrototypeSmallerThanFullChip)
{
    SmarcoPowerSpec proto;
    proto.node = TechNode::nm40();
    proto.numCores = 32;
    proto.numSubRings = 2;
    proto.freqGHz = 1.0;
    proto.numMemCtrls = 1;
    proto.memBandwidthGBs = 34.1;
    const auto full = smarcoPower(SmarcoPowerSpec{});
    const auto p = smarcoPower(proto);
    EXPECT_LT(p.totalAreaMm2(), full.totalAreaMm2() / 3.0);
    EXPECT_LT(p.totalPowerW(), full.totalPowerW() / 3.0);
}

TEST(Power, CoreComplexityGrowsWithWidthAndThreads)
{
    PowerModel m(TechNode::nm32());
    const auto narrow = m.cores(1, 2, 4, 1.5);
    const auto wide = m.cores(1, 8, 4, 1.5);
    const auto few = m.cores(1, 4, 2, 1.5);
    const auto many = m.cores(1, 4, 8, 1.5);
    EXPECT_GT(wide.areaMm2, narrow.areaMm2);
    EXPECT_GT(wide.totalW(), narrow.totalW());
    EXPECT_GT(many.areaMm2, few.areaMm2);
}

TEST(Power, XeonPowerCurve)
{
    EXPECT_NEAR(xeonPowerW(1.0), 165.0, 1e-9);
    EXPECT_LT(xeonPowerW(0.0), 165.0 * 0.5);
    EXPECT_GT(xeonPowerW(0.5), xeonPowerW(0.1));
    // Clamped outside [0, 1].
    EXPECT_DOUBLE_EQ(xeonPowerW(2.0), xeonPowerW(1.0));
    EXPECT_DOUBLE_EQ(xeonPowerW(-1.0), xeonPowerW(0.0));
}

TEST(Power, EnergyEfficiencyRatioMatchesPaperArithmetic)
{
    // The paper's 6.95x mean energy-efficiency gain is its 10.11x
    // mean speedup scaled by the 165 W / 240 W power ratio.
    const auto report = smarcoPower(SmarcoPowerSpec{});
    const double ratio = 10.11 * xeonPowerW(1.0) /
                         report.totalPowerW();
    EXPECT_NEAR(ratio, 6.95, 0.05);
}
