/**
 * @file
 * Seed-determinism lockdown: two fresh Simulator instances fed the
 * same seeded workload must produce byte-identical StatRegistry JSON
 * dumps. Any divergence means hidden nondeterminism crept into the
 * kernel (iteration order, uninitialised state, wall-clock leakage)
 * and would silently invalidate every paper-figure comparison.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/baseline_chip.hpp"
#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "sim/simulator.hpp"
#include "workloads/profile.hpp"
#include "workloads/task.hpp"

using namespace smarco;

namespace {

std::string
dumpStats(Simulator &sim)
{
    std::ostringstream os;
    sim.stats().dumpJson(os);
    return os.str();
}

/** One full SmarCo run of a seeded task set; returns the stats dump. */
std::string
smarcoRun(const char *profile, std::uint64_t seed, bool fast_forward)
{
    Simulator sim;
    sim.setFastForward(fast_forward);
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(2, 4));
    workloads::TaskSetParams tp;
    tp.count = 24;
    tp.seed = seed;
    tp.releaseSpan = 50'000;
    chip.submit(workloads::makeTaskSet(workloads::htcProfile(profile),
                                       tp));
    chip.runUntilDone(100'000'000);
    return dumpStats(sim);
}

std::string
baselineRun(std::uint64_t seed, bool fast_forward)
{
    Simulator sim;
    sim.setFastForward(fast_forward);
    baseline::BaselineParams bp;
    bp.numCores = 4;
    bp.llc = mem::CacheParams{"llc", 4 * 1024 * 1024, 16, 64, 38};
    baseline::BaselineChip chip(sim, bp);
    workloads::TaskSetParams tp;
    tp.count = 16;
    tp.seed = seed;
    chip.spawnWorkers(8, workloads::makeTaskSet(
                             workloads::htcProfile("wordcount"), tp));
    sim.run(200'000'000);
    return dumpStats(sim);
}

/** First index at which two strings differ, for a readable failure. */
void
expectIdentical(const std::string &a, const std::string &b)
{
    if (a == b) {
        SUCCEED();
        return;
    }
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i])
        ++i;
    const std::size_t from = i > 40 ? i - 40 : 0;
    FAIL() << "stat dumps diverge at byte " << i << ":\n  run A: ..."
           << a.substr(from, 80) << "\n  run B: ..."
           << b.substr(from, 80);
}

} // namespace

TEST(Determinism, WordCountSameSeedSameStats)
{
    expectIdentical(smarcoRun("wordcount", 7, true),
                    smarcoRun("wordcount", 7, true));
}

TEST(Determinism, SearchSameSeedSameStats)
{
    expectIdentical(smarcoRun("search", 21, true),
                    smarcoRun("search", 21, true));
}

TEST(Determinism, RncSameSeedSameStats)
{
    expectIdentical(smarcoRun("rnc", 5, true),
                    smarcoRun("rnc", 5, true));
}

TEST(Determinism, DifferentSeedsDiverge)
{
    // Sanity check the harness has teeth: distinct seeds must not
    // collapse onto the same trajectory.
    EXPECT_NE(smarcoRun("wordcount", 7, true),
              smarcoRun("wordcount", 8, true));
}

TEST(Determinism, BaselineSameSeedSameStats)
{
    expectIdentical(baselineRun(3, true), baselineRun(3, true));
}

TEST(Determinism, ForcedModeIsAlsoDeterministic)
{
    expectIdentical(smarcoRun("search", 13, false),
                    smarcoRun("search", 13, false));
}
