/**
 * @file
 * Golden-stats harness locking down the quiescence-aware kernel.
 *
 * Two layers of protection:
 *  1. Mode equivalence — every covered config is run once with
 *     fast-forward enabled and once in forced tick-every-cycle mode;
 *     the StatRegistry JSON dumps must be byte-identical. A skipped
 *     cycle that would have mutated any stat shows up here.
 *  2. Checked-in snapshots — the fast-forward dump of one SmarCo and
 *     one baseline config is compared against golden JSON files under
 *     tests/golden/. Regeneration is a deliberate act:
 *
 *         ./tests/test_golden_stats --update-golden
 *     or  SMARCO_UPDATE_GOLDEN=1 ctest -L golden
 *
 *     rewrites the snapshots in the source tree; review the diff
 *     before committing.
 *
 * This file carries its own main() (not gtest_main) so it can accept
 * the --update-golden flag.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "baseline/baseline_chip.hpp"
#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "runtime/overload.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/cdn.hpp"
#include "workloads/profile.hpp"
#include "workloads/request_gen.hpp"
#include "workloads/task.hpp"

using namespace smarco;

namespace {

bool update_golden = false;

std::string
goldenPath(const char *file)
{
    return std::string(SMARCO_GOLDEN_DIR) + "/" + file;
}

std::string
dumpStats(Simulator &sim)
{
    std::ostringstream os;
    sim.stats().dumpJson(os);
    return os.str();
}

/** The covered SmarCo config: 1 sub-ring x 4 cores, mixed release
 *  times so the run has real idle gaps for fast-forward to skip. */
std::string
smarcoRun(bool fast_forward)
{
    Simulator sim;
    sim.setFastForward(fast_forward);
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    workloads::TaskSetParams tp;
    tp.count = 12;
    tp.seed = 42;
    tp.releaseSpan = 100'000;
    chip.submit(workloads::makeTaskSet(
        workloads::htcProfile("wordcount"), tp));
    chip.runUntilDone(100'000'000);
    return dumpStats(sim);
}

/** The covered baseline config: 4 cores, shrunken LLC for speed. */
std::string
baselineRun(bool fast_forward)
{
    Simulator sim;
    sim.setFastForward(fast_forward);
    baseline::BaselineParams bp;
    bp.numCores = 4;
    bp.llc = mem::CacheParams{"llc", 4 * 1024 * 1024, 16, 64, 38};
    baseline::BaselineChip chip(sim, bp);
    workloads::TaskSetParams tp;
    tp.count = 12;
    tp.seed = 42;
    chip.spawnWorkers(8, workloads::makeTaskSet(
                             workloads::htcProfile("search"), tp));
    sim.run(200'000'000);
    return dumpStats(sim);
}

/**
 * The covered overload config: the CDN chunk workload offered
 * open-loop at ~3x capacity through the admission + SLO-retry path,
 * locking down the whole overload-control layer (request generator,
 * shed decisions, backoff draws, lifecycle stats).
 */
std::string
cdnOverloadRun(bool fast_forward)
{
    const auto profile = workloads::CdnWorkload().chunkProfile(300);

    Simulator sim;
    sim.setFastForward(fast_forward);
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(1, 4));
    sched::AdmissionParams ap;
    ap.subQueueCap = 8;
    ap.queuedCost = 5'000;
    chip.enableOverloadControl(ap);

    runtime::OverloadParams op;
    op.seed = 42;
    runtime::OverloadDriver driver(chip, op);
    workloads::RequestGenParams gp;
    gp.count = 40;
    gp.ratePerKCycle = 0.4;
    gp.relativeDeadline = 300'000;
    gp.realtime = true;
    gp.opsOverride = 4'000;
    gp.seed = 42;
    driver.drive(makePoissonRequests(profile, gp));
    chip.runUntilDone(200'000'000);
    return dumpStats(sim);
}

void
expectIdentical(const std::string &a, const std::string &b,
                const char *what)
{
    if (a == b) {
        SUCCEED();
        return;
    }
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i])
        ++i;
    const std::size_t from = i > 40 ? i - 40 : 0;
    FAIL() << what << " diverges at byte " << i << ":\n  A: ..."
           << a.substr(from, 100) << "\n  B: ..."
           << b.substr(from, 100);
}

void
checkGolden(const std::string &actual, const char *file)
{
    const std::string path = goldenPath(file);
    if (update_golden) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "golden snapshot regenerated: " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — regenerate with --update-golden";
    std::ostringstream buf;
    buf << in.rdbuf();
    expectIdentical(buf.str(), actual, file);
}

} // namespace

TEST(GoldenStats, FastForwardMatchesForcedModeSmarco)
{
    expectIdentical(smarcoRun(true), smarcoRun(false),
                    "smarco fast-forward vs forced dump");
}

TEST(GoldenStats, FastForwardMatchesForcedModeBaseline)
{
    expectIdentical(baselineRun(true), baselineRun(false),
                    "baseline fast-forward vs forced dump");
}

TEST(GoldenStats, SmarcoSnapshotMatchesGolden)
{
    checkGolden(smarcoRun(true), "smarco_scaled_1x4_wordcount.json");
}

TEST(GoldenStats, BaselineSnapshotMatchesGolden)
{
    checkGolden(baselineRun(true), "baseline_4core_search.json");
}

TEST(GoldenStats, FastForwardMatchesForcedModeCdnOverload)
{
    expectIdentical(cdnOverloadRun(true), cdnOverloadRun(false),
                    "CDN overload fast-forward vs forced dump");
}

TEST(GoldenStats, CdnOverloadSnapshotMatchesGolden)
{
    checkGolden(cdnOverloadRun(true),
                "smarco_scaled_1x4_cdn_overload.json");
}

TEST(GoldenStats, UnsampledStatsSerializeExplicitZeros)
{
    // Stats that are registered but never sampled must still appear
    // in the dump with explicit zero values — absent keys would make
    // golden diffs depend on which paths a workload happened to hit.
    StatRegistry reg;
    Scalar s(reg, "idle.counter", "never incremented");
    Average a(reg, "idle.average", "never sampled");
    Histogram h(reg, "idle.hist", "never sampled", 0.0, 10.0, 2);
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string expected =
        "{\n"
        "\"idle.average\":{\"kind\":\"average\",\"value\":0,"
        "\"desc\":\"never sampled\",\"sum\":0,\"count\":0},\n"
        "\"idle.counter\":{\"kind\":\"scalar\",\"value\":0,"
        "\"desc\":\"never incremented\"},\n"
        "\"idle.hist\":{\"kind\":\"histogram\",\"value\":0,"
        "\"desc\":\"never sampled\",\"count\":0,\"stddev\":0,"
        "\"min\":0,\"max\":0,\"lo\":0,\"hi\":10,\"bucketWidth\":5,\"p50\":0,\"p95\":0,\"p99\":0,"
        "\"buckets\":[0,0]}\n"
        "}";
    EXPECT_EQ(os.str(), expected);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-golden")
            update_golden = true;
    if (const char *v = std::getenv("SMARCO_UPDATE_GOLDEN"))
        update_golden = *v != '\0' && *v != '0';
    return RUN_ALL_TESTS();
}
