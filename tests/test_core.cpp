/**
 * @file
 * Unit tests of the TCG core: pipeline issue, in-pair thread
 * switching, shared instruction segment, store buffer, and the
 * thread-scheme ablations.
 */
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "core/tcg_core.hpp"
#include "isa/instr_stream.hpp"
#include "sim/simulator.hpp"
#include "workloads/profile.hpp"
#include "workloads/profile_stream.hpp"

using namespace smarco;
using namespace smarco::core;
using isa::MemClass;
using isa::MicroOp;
using isa::OpKind;

namespace {

/** MemPort completing every request after a fixed latency. */
struct FixedLatencyPort : MemPort {
    explicit FixedLatencyPort(Simulator &sim, Cycle latency)
        : sim(sim), latency(latency) {}

    void
    request(CoreId, ThreadId, const MicroOp &, MemDone done) override
    {
        ++requests;
        sim.events().scheduleAfter(sim.now(), latency, std::move(done));
    }

    void
    writeback(CoreId, Addr) override
    {
        ++writebacks;
    }

    Simulator &sim;
    Cycle latency;
    int requests = 0;
    int writebacks = 0;
};

MicroOp
aluOp()
{
    return MicroOp{};
}

MicroOp
memOp(OpKind kind, MemClass cls, Addr addr, std::uint8_t size = 4)
{
    MicroOp op;
    op.kind = kind;
    op.memClass = cls;
    op.addr = addr;
    op.size = size;
    return op;
}

MicroOp
haltOp()
{
    MicroOp op;
    op.kind = OpKind::Halt;
    return op;
}

workloads::TaskSpec
task(std::uint64_t ops = 100)
{
    workloads::TaskSpec t;
    t.id = 1;
    t.profile = &workloads::htcProfile("wordcount");
    t.numOps = ops;
    t.seed = 3;
    return t;
}

struct CoreFixture : ::testing::Test {
    Simulator sim;
    CoreParams params;
    std::unique_ptr<FixedLatencyPort> port;
    std::unique_ptr<TcgCore> core;

    TcgCore &
    make(Cycle mem_latency = 50)
    {
        port = std::make_unique<FixedLatencyPort>(sim, mem_latency);
        core = std::make_unique<TcgCore>(sim, params, 0, 0x1000'0000,
                                         *port, "core");
        return *core;
    }
};

} // namespace

TEST_F(CoreFixture, RunsAluTraceToCompletion)
{
    auto &c = make();
    std::vector<MicroOp> ops(200, aluOp());
    ops.push_back(haltOp());
    bool finished = false;
    ASSERT_TRUE(c.attachTask(task(),
        std::make_unique<isa::TraceStream>(ops),
        [&](const workloads::TaskSpec &, Cycle) { finished = true; }));
    sim.run(10000);
    EXPECT_TRUE(finished);
    EXPECT_EQ(c.committedOps(), 200u);
    EXPECT_FALSE(c.busy());
}

TEST_F(CoreFixture, AttachFailsWhenAllContextsBusy)
{
    auto &c = make();
    for (std::uint32_t i = 0; i < params.numThreads; ++i) {
        std::vector<MicroOp> ops(1000, aluOp());
        EXPECT_TRUE(c.attachTask(task(),
            std::make_unique<isa::TraceStream>(ops), nullptr));
    }
    std::vector<MicroOp> ops(10, aluOp());
    EXPECT_FALSE(c.attachTask(task(),
        std::make_unique<isa::TraceStream>(ops), nullptr));
    EXPECT_EQ(c.freeContexts(), 0u);
}

TEST_F(CoreFixture, SpmLocalAccessDoesNotLeaveCore)
{
    auto &c = make();
    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i)
        ops.push_back(memOp(OpKind::Load, MemClass::SpmLocal,
                            0x1000'0000 + i * 8));
    ops.push_back(haltOp());
    c.attachTask(task(), std::make_unique<isa::TraceStream>(ops),
                 nullptr);
    sim.run(1000);
    EXPECT_EQ(port->requests, 0);
    EXPECT_EQ(c.spm().reads(), 50u);
}

TEST_F(CoreFixture, HeapMissBlocksUntilFill)
{
    auto &c = make(80);
    std::vector<MicroOp> ops;
    ops.push_back(memOp(OpKind::Load, MemClass::Heap, 0x8000'0000));
    ops.push_back(aluOp());
    ops.push_back(haltOp());
    bool finished = false;
    Cycle finish = 0;
    c.attachTask(task(), std::make_unique<isa::TraceStream>(ops),
                 [&](const workloads::TaskSpec &, Cycle f) {
                     finished = true;
                     finish = f;
                 });
    sim.run(10000);
    EXPECT_TRUE(finished);
    EXPECT_EQ(port->requests, 1);
    EXPECT_GE(finish, 80u); // waited for the fill
}

TEST_F(CoreFixture, HeapHitAfterFillIsFast)
{
    auto &c = make(80);
    std::vector<MicroOp> ops;
    ops.push_back(memOp(OpKind::Load, MemClass::Heap, 0x8000'0000));
    // Same line again: must hit, no second request.
    ops.push_back(memOp(OpKind::Load, MemClass::Heap, 0x8000'0008));
    ops.push_back(haltOp());
    c.attachTask(task(), std::make_unique<isa::TraceStream>(ops),
                 nullptr);
    sim.run(10000);
    EXPECT_EQ(port->requests, 1);
}

TEST_F(CoreFixture, StoresAreNonBlockingThroughStoreBuffer)
{
    auto &c = make(100);
    std::vector<MicroOp> ops;
    // A couple of stream stores then lots of ALU work.
    ops.push_back(memOp(OpKind::Store, MemClass::Stream, 0x9000'0000));
    ops.push_back(memOp(OpKind::Store, MemClass::Stream, 0x9000'0100));
    for (int i = 0; i < 100; ++i)
        ops.push_back(aluOp());
    ops.push_back(haltOp());
    bool finished = false;
    Cycle finish = 0;
    c.attachTask(task(), std::make_unique<isa::TraceStream>(ops),
                 [&](const workloads::TaskSpec &, Cycle f) {
                     finished = true;
                     finish = f;
                 });
    sim.run(10000);
    EXPECT_TRUE(finished);
    // Task completed well before 2x the memory latency: stores
    // overlapped with the ALU work.
    EXPECT_LT(finish, 200u);
    EXPECT_EQ(port->requests, 2);
}

TEST_F(CoreFixture, StoreBufferFullStallsThread)
{
    params.storeBufferSlots = 2;
    auto &c = make(500);
    std::vector<MicroOp> ops;
    for (int i = 0; i < 6; ++i)
        ops.push_back(memOp(OpKind::Store, MemClass::Stream,
                            0x9000'0000 + i * 256));
    ops.push_back(haltOp());
    bool finished = false;
    Cycle finish = 0;
    c.attachTask(task(), std::make_unique<isa::TraceStream>(ops),
                 [&](const workloads::TaskSpec &, Cycle f) {
                     finished = true;
                     finish = f;
                 });
    sim.run(100000);
    EXPECT_TRUE(finished);
    // 6 stores with only 2 slots at 500-cycle latency: the thread
    // must have waited for at least two full drain rounds.
    EXPECT_GE(finish, 1000u);
}

TEST_F(CoreFixture, InPairThreadsHideMemoryLatency)
{
    // Two threads of pure blocking loads; with in-pair switching the
    // total time approaches one thread's latency chain because each
    // hides the other's stalls.
    const auto run_with = [&](ThreadScheme scheme,
                              std::uint32_t threads) {
        Simulator s;
        CoreParams p;
        p.scheme = scheme;
        p.numThreads = threads;
        p.maxRunning = threads <= 4 ? threads : 4;
        FixedLatencyPort prt(s, 60);
        TcgCore c(s, p, 0, 0x1000'0000, prt, "c");
        for (std::uint32_t t = 0; t < threads; ++t) {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 40; ++i) {
                ops.push_back(memOp(OpKind::Load, MemClass::Stream,
                                    0x9000'0000 + i * 64));
                ops.push_back(aluOp());
            }
            ops.push_back(haltOp());
            workloads::TaskSpec ts;
            ts.id = t;
            ts.numOps = ops.size();
            // No profile: stream loads always reach the port.
            c.attachTask(ts, std::make_unique<isa::TraceStream>(ops),
                         nullptr);
        }
        s.run(1000000);
        return s.now();
    };

    const Cycle paired = run_with(ThreadScheme::InPair, 2);
    const Cycle unpaired = run_with(ThreadScheme::NoSwitch, 2);
    // NoSwitch leaves the second context idle... both threads have
    // their own slot at maxRunning=2, so compare 5 vs 8 contexts:
    const Cycle paired8 = run_with(ThreadScheme::InPair, 8);
    const Cycle noswitch8 = run_with(ThreadScheme::NoSwitch, 8);
    EXPECT_LT(paired8, noswitch8);
    (void)paired;
    (void)unpaired;
}

TEST_F(CoreFixture, PairPromotionOnStall)
{
    // With 8 threads (4 pairs), when a running thread stalls its
    // friend runs; the pairSwitches stat must advance.
    params.numThreads = 8;
    params.maxRunning = 4;
    auto &c = make(60);
    for (int t = 0; t < 8; ++t) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 20; ++i)
            ops.push_back(memOp(OpKind::Load, MemClass::Stream,
                                0x9000'0000 + i * 64));
        ops.push_back(haltOp());
        workloads::TaskSpec ts;
        ts.id = t;
        ts.numOps = ops.size();
        c.attachTask(ts, std::make_unique<isa::TraceStream>(ops),
                     nullptr);
    }
    sim.run(1000000);
    EXPECT_FALSE(c.busy());
    const Stat &switches = sim.stats().get("core.pairSwitches");
    EXPECT_GT(switches.value(), 0.0);
}

TEST_F(CoreFixture, MispredictFlushCostsCycles)
{
    auto &c = make();
    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i) {
        MicroOp b;
        b.kind = OpKind::Branch;
        b.mispredict = true;
        ops.push_back(b);
    }
    ops.push_back(haltOp());
    Cycle finish = 0;
    c.attachTask(task(), std::make_unique<isa::TraceStream>(ops),
                 [&](const workloads::TaskSpec &, Cycle f) {
                     finish = f;
                 });
    sim.run(100000);
    // Each mispredict costs ~branchPenalty cycles.
    EXPECT_GE(finish, 50u * params.branchPenalty);
}

TEST_F(CoreFixture, IpcImprovesWithThreads)
{
    const auto ipc_with = [&](std::uint32_t threads) {
        Simulator s;
        CoreParams p;
        p.numThreads = threads;
        p.maxRunning = std::min<std::uint32_t>(threads, 4);
        FixedLatencyPort prt(s, 60);
        TcgCore c(s, p, 0, 0x1000'0000, prt, "c");
        const auto &prof = workloads::htcProfile("wordcount");
        for (std::uint32_t t = 0; t < threads; ++t) {
            workloads::TaskSpec ts;
            ts.id = t;
            ts.profile = &prof;
            ts.numOps = 10000;
            ts.seed = 7 + t;
            workloads::AddressLayout l;
            l.spmLocalBase = 0x1000'0000;
            l.heapBase = 0x8000'0000;
            l.streamBase = 0x9000'0000;
            c.attachTask(ts, std::make_unique<workloads::ProfileStream>(
                             prof, l, ts.numOps, ts.seed),
                         nullptr);
        }
        s.run(10000000);
        return c.ipc();
    };
    const double ipc1 = ipc_with(1);
    const double ipc4 = ipc_with(4);
    const double ipc8 = ipc_with(8);
    EXPECT_GT(ipc4, ipc1 * 2.5); // near-linear up to 4 (Fig. 17)
    EXPECT_GT(ipc8, ipc4);       // pairing keeps helping
    EXPECT_LT(ipc8, ipc4 * 2.0); // but sub-linearly
}

TEST_F(CoreFixture, SharedInstrSegmentAvoidsStarvation)
{
    const auto starve_with = [&](bool shared) {
        Simulator s;
        CoreParams p;
        p.sharedInstrSegment = shared;
        FixedLatencyPort prt(s, 60);
        TcgCore c(s, p, 0, 0x1000'0000, prt, "c");
        const auto &prof = workloads::htcProfile("search"); // 12KB code
        for (std::uint32_t t = 0; t < 8; ++t) {
            workloads::TaskSpec ts;
            ts.id = t;
            ts.profile = &prof;
            ts.numOps = 5000;
            ts.seed = t;
            workloads::AddressLayout l;
            l.spmLocalBase = 0x1000'0000;
            l.heapBase = 0x8000'0000;
            l.streamBase = 0x9000'0000;
            c.attachTask(ts, std::make_unique<workloads::ProfileStream>(
                             prof, l, ts.numOps, ts.seed),
                         nullptr);
        }
        s.run(10000000);
        return c.starvationRatio();
    };
    // 8 threads x 12 KB private copies (96 KB) thrash the 16 KB
    // I-cache; one shared segment fits.
    EXPECT_LT(starve_with(true), starve_with(false));
}

TEST_F(CoreFixture, LaxityAwareIssueFavoursUrgentTask)
{
    params.issuePolicy = IssuePolicy::LaxityAware;
    auto &c = make(60);
    // Four identical tasks competing for 4 issue slots; only one has
    // a tight deadline, so under laxity-aware arbitration it issues
    // first each cycle and finishes earliest.
    Cycle urgent_finish = 0;
    Cycle lax_finish[3] = {0, 0, 0};
    for (int t = 0; t < 4; ++t) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 3000; ++i)
            ops.push_back(aluOp());
        ops.push_back(haltOp());
        workloads::TaskSpec ts;
        ts.id = t;
        ts.numOps = ops.size();
        ts.deadline = t == 0 ? 4000 : kNoCycle;
        c.attachTask(ts, std::make_unique<isa::TraceStream>(ops),
                     [&, t](const workloads::TaskSpec &, Cycle f) {
                         if (t == 0)
                             urgent_finish = f;
                         else
                             lax_finish[t - 1] = f;
                     });
    }
    sim.run(100000);
    EXPECT_GT(urgent_finish, 0u);
    for (Cycle f : lax_finish)
        EXPECT_GT(f, 0u);
    // With issue width 4 and per-thread ILP 2, the urgent task plus
    // at most one other run at full speed; the remaining two must
    // finish strictly later than the urgent one.
    EXPECT_LT(urgent_finish, lax_finish[1]);
    EXPECT_LT(urgent_finish, lax_finish[2]);
}
