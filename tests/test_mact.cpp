/**
 * @file
 * Unit tests of the Memory Access Collection Table (Section 3.4).
 */
#include <gtest/gtest.h>

#include <vector>

#include "mem/mact.hpp"
#include "sim/simulator.hpp"

using namespace smarco;
using namespace smarco::mem;

namespace {

struct MactFixture : ::testing::Test {
    Simulator sim;
    MactParams params;
    std::vector<MactBatch> batches;

    Mact &
    make()
    {
        mact = std::make_unique<Mact>(sim, params, "mact");
        mact->setSink([this](MactBatch &&b) {
            batches.push_back(std::move(b));
        });
        return *mact;
    }

    MemRequest
    req(Addr addr, std::uint32_t bytes, bool write = false,
        bool priority = false)
    {
        MemRequest r;
        r.id = nextId++;
        r.addr = addr;
        r.bytes = bytes;
        r.write = write;
        r.priority = priority;
        return r;
    }

    std::unique_ptr<Mact> mact;
    std::uint64_t nextId = 1;
};

} // namespace

TEST_F(MactFixture, CollectsSmallRequests)
{
    auto &m = make();
    EXPECT_TRUE(m.collect(req(0x1000, 4), 0));
    EXPECT_EQ(m.occupancy(), 1u);
    EXPECT_EQ(m.collected(), 1u);
}

TEST_F(MactFixture, PriorityRequestsBypass)
{
    auto &m = make();
    EXPECT_FALSE(m.collect(req(0x1000, 4, false, /*priority=*/true), 0));
    EXPECT_EQ(m.bypassed(), 1u);
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST_F(MactFixture, OversizeRequestsBypass)
{
    auto &m = make();
    EXPECT_FALSE(m.collect(req(0x1000, 64), 0)); // line fill
    EXPECT_FALSE(m.collect(req(0x1000, 32), 0)); // > maxCollectBytes
    EXPECT_EQ(m.bypassed(), 2u);
}

TEST_F(MactFixture, LineStraddlingBypasses)
{
    auto &m = make();
    EXPECT_FALSE(m.collect(req(0x103E, 8), 0)); // crosses 0x1040
    EXPECT_EQ(m.bypassed(), 1u);
}

TEST_F(MactFixture, MergesSameLineSameType)
{
    auto &m = make();
    EXPECT_TRUE(m.collect(req(0x1000, 4), 0));
    EXPECT_TRUE(m.collect(req(0x1008, 4), 1));
    EXPECT_TRUE(m.collect(req(0x1010, 8), 2));
    EXPECT_EQ(m.occupancy(), 1u); // one line
    m.flushAll();
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].requests.size(), 3u);
    EXPECT_EQ(batches[0].coveredBytes(), 16u);
    EXPECT_EQ(batches[0].lineBase, 0x1000u);
}

TEST_F(MactFixture, ReadsAndWritesUseSeparateLines)
{
    auto &m = make();
    EXPECT_TRUE(m.collect(req(0x1000, 4, false), 0));
    EXPECT_TRUE(m.collect(req(0x1008, 4, true), 0));
    EXPECT_EQ(m.occupancy(), 2u);
}

TEST_F(MactFixture, FullVectorFlushesImmediately)
{
    auto &m = make();
    // Four 16-byte reads cover the whole 64-byte line.
    for (Addr off = 0; off < 64; off += 16)
        EXPECT_TRUE(m.collect(req(0x2000 + off, 16), 0));
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].coveredBytes(), 64u);
    EXPECT_EQ(batches[0].vector, ~std::uint64_t{0});
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST_F(MactFixture, DeadlineFlushAfterThreshold)
{
    params.threshold = 16;
    auto &m = make();
    EXPECT_TRUE(m.collect(req(0x3000, 4), 100));
    m.tick(110); // not yet
    EXPECT_TRUE(batches.empty());
    m.tick(116); // 16 cycles after first collect
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST_F(MactFixture, ThresholdTimerStartsAtFirstCollect)
{
    params.threshold = 16;
    auto &m = make();
    EXPECT_TRUE(m.collect(req(0x3000, 4), 100));
    EXPECT_TRUE(m.collect(req(0x3008, 4), 110)); // merge, timer NOT reset
    m.tick(116);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].requests.size(), 2u);
}

TEST_F(MactFixture, CapacityEvictionFlushesOldest)
{
    params.lines = 2;
    params.threshold = 1000;
    auto &m = make();
    EXPECT_TRUE(m.collect(req(0x1000, 4), 1)); // oldest
    EXPECT_TRUE(m.collect(req(0x2000, 4), 2));
    EXPECT_TRUE(m.collect(req(0x3000, 4), 3)); // evicts 0x1000 line
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].lineBase, 0x1000u);
    EXPECT_EQ(m.occupancy(), 2u);
}

TEST_F(MactFixture, DisabledTableBypassesEverything)
{
    params.enabled = false;
    auto &m = make();
    EXPECT_FALSE(m.collect(req(0x1000, 2), 0));
    EXPECT_EQ(m.bypassed(), 1u);
}

TEST_F(MactFixture, BatchWireSizeSmallerThanIndividual)
{
    auto &m = make();
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(m.collect(req(0x4000 + i * 4, 4), 0));
    m.flushAll();
    ASSERT_EQ(batches.size(), 1u);
    // 8 individual read requests cost 8 * 12 wire bytes; the batch
    // costs one header + vector.
    EXPECT_LT(batches[0].wireBytes(), 8 * kReadReqBytes);
}

TEST_F(MactFixture, WriteBatchCarriesPayload)
{
    auto &m = make();
    EXPECT_TRUE(m.collect(req(0x5000, 8, true), 0));
    EXPECT_TRUE(m.collect(req(0x5010, 8, true), 0));
    m.flushAll();
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_TRUE(batches[0].write);
    EXPECT_EQ(batches[0].wireBytes(),
              kReqHeaderBytes + 8u + batches[0].coveredBytes());
}

TEST_F(MactFixture, VectorBitsMatchOffsets)
{
    auto &m = make();
    EXPECT_TRUE(m.collect(req(0x6004, 2), 0)); // bytes 4..5
    m.flushAll();
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].vector, std::uint64_t{0x3} << 4);
}

TEST_F(MactFixture, BusyWhileOccupied)
{
    auto &m = make();
    EXPECT_FALSE(m.busy());
    EXPECT_TRUE(m.collect(req(0x7000, 4), 0));
    EXPECT_TRUE(m.busy());
    m.flushAll();
    EXPECT_FALSE(m.busy());
}
