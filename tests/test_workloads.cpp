/**
 * @file
 * Tests of benchmark profiles and the profile-driven generator,
 * including the distribution properties Fig. 8 depends on.
 */
#include <gtest/gtest.h>

#include <map>

#include "workloads/cdn.hpp"
#include "workloads/profile.hpp"
#include "workloads/profile_stream.hpp"
#include "workloads/task.hpp"

using namespace smarco;
using namespace smarco::workloads;

namespace {

AddressLayout
testLayout()
{
    AddressLayout l;
    l.spmLocalBase = 0x1000'0000;
    l.spmLocalSize = 96 * 1024;
    l.spmRemoteBase = 0x1002'0000;
    l.spmRemoteSize = 96 * 1024;
    l.heapBase = 0x8000'0000;
    l.heapSize = 64 * 1024;
    l.streamBase = 0x9000'0000;
    l.streamSize = 1024 * 1024;
    return l;
}

} // namespace

TEST(Profiles, SixHtcBenchmarksInPaperOrder)
{
    const auto &profs = htcProfiles();
    ASSERT_EQ(profs.size(), 6u);
    EXPECT_EQ(profs[0].name, "wordcount");
    EXPECT_EQ(profs[1].name, "terasort");
    EXPECT_EQ(profs[2].name, "search");
    EXPECT_EQ(profs[3].name, "kmeans");
    EXPECT_EQ(profs[4].name, "kmp");
    EXPECT_EQ(profs[5].name, "rnc");
}

TEST(Profiles, ElevenConventionalApplications)
{
    EXPECT_EQ(conventionalProfiles().size(), 11u);
}

TEST(Profiles, LookupByNameAndValidate)
{
    const auto &p = htcProfile("kmp");
    EXPECT_EQ(p.name, "kmp");
    p.validate();
    for (const auto &prof : conventionalProfiles())
        prof.validate();
}

TEST(Profiles, SearchHasLowestMemoryFraction)
{
    // Section 4.2.1: "search benchmark is characterized by lower
    // memory instruction".
    const auto &profs = htcProfiles();
    for (const auto &p : profs) {
        if (p.name != "search")
            EXPECT_LT(htcProfile("search").fracMem, p.fracMem);
    }
}

TEST(Profiles, HtcGranularitySmallerThanConventional)
{
    // The Fig. 8 characterisation: HTC mean access granularity is
    // much smaller than SPLASH2-class applications.
    double htc_max = 0.0;
    for (const auto &p : htcProfiles())
        htc_max = std::max(htc_max, meanGranularity(p));
    double conv_min = 1e9;
    for (const auto &p : conventionalProfiles())
        conv_min = std::min(conv_min, meanGranularity(p));
    EXPECT_LT(htc_max, conv_min);
}

TEST(Profiles, KmpIsByteDominated)
{
    const auto &kmp = htcProfile("kmp");
    DiscreteDist d(kmp.granularityWeights);
    EXPECT_GT(d.probability(0) + d.probability(1), 0.7);
}

TEST(Profiles, KmeansAvoidsTinyAccesses)
{
    // Section 4.2.2: K-means contains few 1-2 byte packets.
    const auto &km = htcProfile("kmeans");
    DiscreteDist d(km.granularityWeights);
    EXPECT_LT(d.probability(0) + d.probability(1), 0.1);
}

TEST(Profiles, OnlyRncIsRealtimeHeavy)
{
    for (const auto &p : htcProfiles()) {
        if (p.name == "rnc")
            EXPECT_GT(p.fracPriority, 0.2);
        else
            EXPECT_DOUBLE_EQ(p.fracPriority, 0.0);
    }
}

TEST(ProfileStream, EmitsExactOpCountThenHalt)
{
    const auto &p = htcProfile("wordcount");
    ProfileStream s(p, testLayout(), 500, 42);
    isa::MicroOp op;
    std::uint64_t n = 0;
    while (s.next(op) && op.kind != isa::OpKind::Halt)
        ++n;
    EXPECT_EQ(n, 500u);
    EXPECT_EQ(op.kind, isa::OpKind::Halt);
    EXPECT_FALSE(s.next(op));
}

TEST(ProfileStream, DeterministicForSameSeed)
{
    const auto &p = htcProfile("terasort");
    ProfileStream a(p, testLayout(), 300, 7);
    ProfileStream b(p, testLayout(), 300, 7);
    isa::MicroOp oa, ob;
    while (a.next(oa)) {
        ASSERT_TRUE(b.next(ob));
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.size, ob.size);
    }
    EXPECT_FALSE(b.next(ob));
}

TEST(ProfileStream, MixMatchesProfileFractions)
{
    const auto &p = htcProfile("wordcount");
    ProfileStream s(p, testLayout(), 60000, 9);
    isa::MicroOp op;
    std::map<isa::OpKind, std::uint64_t> kinds;
    std::map<isa::MemClass, std::uint64_t> classes;
    std::uint64_t mem = 0, total = 0;
    while (s.next(op) && op.kind != isa::OpKind::Halt) {
        ++kinds[op.kind];
        ++total;
        if (op.isMem()) {
            ++mem;
            ++classes[op.memClass];
        }
    }
    const double frac_mem = static_cast<double>(mem) / total;
    EXPECT_NEAR(frac_mem, p.fracMem, 0.02);
    const double frac_branch =
        static_cast<double>(kinds[isa::OpKind::Branch]) / total;
    EXPECT_NEAR(frac_branch, p.fracBranch, 0.02);
    // Class split within memory ops (bursts must preserve it).
    EXPECT_NEAR(classes[isa::MemClass::SpmLocal] / double(mem),
                p.fracSpmLocal, 0.04);
    EXPECT_NEAR(classes[isa::MemClass::Stream] / double(mem),
                p.fracStream(), 0.04);
}

TEST(ProfileStream, AddressesStayInRegions)
{
    const auto &p = htcProfile("rnc");
    const auto layout = testLayout();
    ProfileStream s(p, layout, 20000, 4);
    isa::MicroOp op;
    while (s.next(op) && op.kind != isa::OpKind::Halt) {
        if (!op.isMem())
            continue;
        switch (op.memClass) {
          case isa::MemClass::SpmLocal:
            EXPECT_GE(op.addr, layout.spmLocalBase);
            EXPECT_LT(op.addr + op.size,
                      layout.spmLocalBase + layout.spmLocalSize + 64);
            break;
          case isa::MemClass::SpmRemote:
            EXPECT_GE(op.addr, layout.spmRemoteBase);
            break;
          case isa::MemClass::Heap:
            EXPECT_GE(op.addr, layout.heapBase);
            EXPECT_LT(op.addr, layout.heapBase + layout.heapSize);
            break;
          case isa::MemClass::Stream:
            EXPECT_GE(op.addr, layout.streamBase);
            EXPECT_LT(op.addr,
                      layout.streamBase + layout.streamSize + 64);
            break;
          case isa::MemClass::None:
            FAIL() << "memory op without a class";
        }
    }
}

TEST(ProfileStream, StreamAccessesAreBursty)
{
    // Consecutive stream accesses should frequently fall into the
    // same 64-byte line (what the MACT exploits).
    const auto &p = htcProfile("kmp");
    ProfileStream s(p, testLayout(), 40000, 21);
    isa::MicroOp op;
    Addr last_line = kNoAddr;
    std::uint64_t stream_ops = 0, same_line = 0;
    while (s.next(op) && op.kind != isa::OpKind::Halt) {
        if (op.memClass != isa::MemClass::Stream)
            continue;
        const Addr line = op.addr & ~Addr{63};
        if (line == last_line)
            ++same_line;
        last_line = line;
        ++stream_ops;
    }
    ASSERT_GT(stream_ops, 100u);
    EXPECT_GT(static_cast<double>(same_line) / stream_ops, 0.5);
}

TEST(ProfileStream, RealtimeFractionForRnc)
{
    const auto &p = htcProfile("rnc");
    ProfileStream s(p, testLayout(), 30000, 5);
    isa::MicroOp op;
    std::uint64_t pri = 0, total = 0;
    while (s.next(op) && op.kind != isa::OpKind::Halt) {
        ++total;
        pri += op.priority ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(pri) / total, p.fracPriority, 0.02);
}

TEST(TaskSet, GeneratesRequestedCountWithJitter)
{
    const auto &p = htcProfile("kmeans");
    TaskSetParams tp;
    tp.count = 100;
    tp.opsJitter = 0.2;
    tp.seed = 3;
    const auto tasks = makeTaskSet(p, tp);
    ASSERT_EQ(tasks.size(), 100u);
    bool varied = false;
    for (const auto &t : tasks) {
        EXPECT_GE(t.numOps, static_cast<std::uint64_t>(
                                p.opsPerTask * 0.79));
        EXPECT_LE(t.numOps, static_cast<std::uint64_t>(
                                p.opsPerTask * 1.21));
        varied |= t.numOps != p.opsPerTask;
        EXPECT_EQ(t.profile, &p);
    }
    EXPECT_TRUE(varied);
}

TEST(TaskSet, DeadlineAndReleaseApplied)
{
    const auto &p = htcProfile("rnc");
    TaskSetParams tp;
    tp.count = 50;
    tp.deadline = 340000;
    tp.realtime = true;
    tp.releaseSpan = 1000;
    const auto tasks = makeTaskSet(p, tp);
    for (const auto &t : tasks) {
        EXPECT_EQ(t.deadline, 340000u);
        EXPECT_TRUE(t.realtime);
        EXPECT_LE(t.release, 1000u);
        EXPECT_TRUE(t.hasDeadline());
    }
}

TEST(Cdn, NicSaturationPoint)
{
    CdnWorkload cdn;
    // 10 Gbps / 25 Mbps = 400 clients.
    EXPECT_EQ(cdn.saturationClients(), 400u);
}

TEST(Cdn, ChunkRateCapsAtNic)
{
    CdnWorkload cdn;
    const double below = cdn.chunkRate(200);
    const double at = cdn.chunkRate(400);
    const double above = cdn.chunkRate(800);
    EXPECT_LT(below, at);
    EXPECT_DOUBLE_EQ(at, above);
}

TEST(Cdn, WorkingSetGrowsWithClients)
{
    CdnWorkload cdn;
    const auto p100 = cdn.chunkProfile(100);
    const auto p400 = cdn.chunkProfile(400);
    EXPECT_LT(p100.heapWorkingSet, p400.heapWorkingSet);
    EXPECT_LT(p100.branchMissRate, p400.branchMissRate);
    p100.validate();
    p400.validate();
}
