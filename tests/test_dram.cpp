/**
 * @file
 * Unit tests of the DDR channel model.
 */
#include <gtest/gtest.h>

#include <vector>

#include "mem/dram.hpp"
#include "sim/simulator.hpp"

using namespace smarco;
using namespace smarco::mem;

namespace {

struct DramFixture : ::testing::Test {
    Simulator sim;
    DramParams params;

    std::unique_ptr<DramController>
    make()
    {
        return std::make_unique<DramController>(sim, params, "dram");
    }
};

} // namespace

TEST_F(DramFixture, ChannelInterleavingByLine)
{
    params.channels = 4;
    auto dram = make();
    // Consecutive lines cover all four channels...
    EXPECT_EQ(dram->channelOf(0x0000), 0u);
    EXPECT_EQ(dram->channelOf(0x0040), 1u);
    EXPECT_EQ(dram->channelOf(0x0080), 2u);
    EXPECT_EQ(dram->channelOf(0x00C0), 3u);
    // ...and the XOR-folded hash also spreads 256-byte strides
    // (4-line DMA chunks), which plain modulo would serialise.
    int seen[4] = {0, 0, 0, 0};
    for (Addr a = 0; a < 64 * 256; a += 256)
        ++seen[dram->channelOf(a)];
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(seen[c], 4) << "channel " << c << " starved";
}

TEST_F(DramFixture, SingleAccessLatency)
{
    auto dram = make();
    Cycle done_at = kNoCycle;
    dram->serve(0x40, 64, 0, [&] { done_at = sim.now(); });
    sim.run(1000);
    // accessLatency (48) + ceil(64/22.75)=3 transfer cycles.
    EXPECT_EQ(done_at, 51u);
}

TEST_F(DramFixture, BandwidthLimitsBackToBackRequests)
{
    auto dram = make();
    std::vector<Cycle> done;
    // Ten 64-byte reads on the same channel.
    for (int i = 0; i < 10; ++i)
        dram->serve(0x40, 64, 0, [&] { done.push_back(sim.now()); });
    sim.run(10000);
    ASSERT_EQ(done.size(), 10u);
    // Each request occupies the channel overhead(2)+3 = 5 cycles, so
    // completions are spaced ~5 cycles apart.
    for (std::size_t i = 1; i < done.size(); ++i)
        EXPECT_GE(done[i], done[i - 1] + 5);
}

TEST_F(DramFixture, ChannelsServeInParallel)
{
    auto dram = make();
    std::vector<Cycle> done;
    for (int i = 0; i < 4; ++i)
        dram->serve(static_cast<Addr>(i) * 64, 64, 0,
                    [&] { done.push_back(sim.now()); });
    sim.run(1000);
    ASSERT_EQ(done.size(), 4u);
    // All on different channels: same completion cycle.
    for (Cycle d : done)
        EXPECT_EQ(d, done[0]);
}

TEST_F(DramFixture, ReadsPrioritisedOverWrites)
{
    auto dram = make();
    Cycle read_done = 0, write_done = 0;
    // Queue several writes first, then a read on the same channel.
    for (int i = 0; i < 5; ++i)
        dram->serve(0x40, 64, 0,
                    [&] { write_done = sim.now(); },
                    /*is_write=*/true);
    dram->serve(0x40, 64, 0, [&] { read_done = sim.now(); });
    sim.run(10000);
    // The first write is already in service when the read arrives,
    // but the read overtakes the remaining queued writes.
    EXPECT_LT(read_done, write_done);
}

TEST_F(DramFixture, WriteDrainThresholdForcesWrites)
{
    params.writeDrainThreshold = 4;
    auto dram = make();
    int writes_done = 0;
    for (int i = 0; i < 8; ++i)
        dram->serve(0x40, 64, 0, [&] { ++writes_done; },
                    /*is_write=*/true);
    // Keep a steady stream of reads coming; writes must still drain.
    for (int i = 0; i < 50; ++i)
        dram->serve(0x40, 8, 0, nullptr);
    sim.run(10000);
    EXPECT_EQ(writes_done, 8);
}

TEST_F(DramFixture, SmallRequestsPayOverheadNotBandwidth)
{
    auto dram = make();
    // 32 4-byte requests: dominated by the per-request overhead, so
    // the channel serves them at ~1 per (overhead + 1) cycles.
    std::vector<Cycle> done;
    for (int i = 0; i < 32; ++i)
        dram->serve(0x40, 4, 0, [&] { done.push_back(sim.now()); });
    sim.run(10000);
    ASSERT_EQ(done.size(), 32u);
    const Cycle span = done.back() - done.front();
    EXPECT_NEAR(static_cast<double>(span), 31.0 * 3.0, 4.0);
}

TEST_F(DramFixture, StatsTrackRequestsAndBytes)
{
    auto dram = make();
    dram->serve(0x00, 64, 0, nullptr);
    dram->serve(0x40, 16, 0, nullptr, true);
    sim.run(1000);
    EXPECT_EQ(dram->requestsServed(), 2u);
    EXPECT_DOUBLE_EQ(dram->totalBytes(), 80.0);
}

TEST_F(DramFixture, BusyNowReflectsQueues)
{
    auto dram = make();
    EXPECT_FALSE(dram->busyNow());
    dram->serve(0x00, 64, 0, nullptr);
    EXPECT_TRUE(dram->busyNow());
    sim.run(1000);
    EXPECT_FALSE(dram->busyNow());
}

TEST_F(DramFixture, BatchingReducesTotalServiceTime)
{
    // The MACT effect at the controller: one 16-byte batch versus
    // four 4-byte requests.
    auto dram = make();
    Cycle batched_done = 0;
    dram->serve(0x40, 16, 0, [&] { batched_done = sim.now(); });
    sim.run(1000);

    Simulator sim2;
    DramController dram2(sim2, params, "dram2");
    Cycle last_done = 0;
    for (int i = 0; i < 4; ++i)
        dram2.serve(0x40, 4, 0, [&] { last_done = sim2.now(); });
    sim2.run(1000);
    EXPECT_LT(batched_done, last_done);
}
