/**
 * @file
 * Property-based and parameterised sweeps across modules: invariants
 * that must hold for every benchmark profile, slice width, MACT
 * threshold, and DRAM service class.
 */
#include <gtest/gtest.h>

#include <map>

#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "mem/dram.hpp"
#include "mem/mact.hpp"
#include "mem/mem_types.hpp"
#include "noc/ring.hpp"
#include "power/power_model.hpp"
#include "workloads/profile.hpp"
#include "workloads/profile_stream.hpp"

using namespace smarco;

// ---------------------------------------------------------------------
// Memory map invariants.

TEST(MemoryMap, SpmWindowsPartitionTheSpmRange)
{
    mem::MemoryMap map;
    for (CoreId c : {0u, 1u, 17u, 255u}) {
        const Addr base = map.spmBaseOf(c);
        EXPECT_TRUE(map.isSpm(base));
        EXPECT_TRUE(map.isSpm(base + map.spmPerCore - 1));
        EXPECT_EQ(map.spmOwner(base), c);
        EXPECT_EQ(map.spmOwner(base + map.spmPerCore - 1), c);
    }
    EXPECT_FALSE(map.isSpm(map.spmBase - 1));
    EXPECT_FALSE(map.isSpm(map.spmBase + 256ull * map.spmPerCore));
    EXPECT_TRUE(map.isDram(map.dramBase));
    EXPECT_FALSE(map.isDram(map.spmBase));
}

TEST(MemoryMap, SpmAndDramDisjoint)
{
    mem::MemoryMap map;
    for (Addr a = map.spmBase; a < map.spmBase + 4096; a += 64)
        EXPECT_FALSE(map.isDram(a));
    for (Addr a = map.dramBase; a < map.dramBase + 4096; a += 64)
        EXPECT_FALSE(map.isSpm(a));
}

// ---------------------------------------------------------------------
// Generator conservation properties over every HTC profile.

class EveryProfile : public ::testing::TestWithParam<const char *>
{
  protected:
    workloads::AddressLayout
    layout() const
    {
        workloads::AddressLayout l;
        l.spmLocalBase = 0x1000'0000;
        l.heapBase = 0x8000'0000;
        l.heapSize = 64 * 1024;
        l.streamBase = 0x9000'0000;
        l.streamSize = 8 * 1024 * 1024;
        return l;
    }
};

INSTANTIATE_TEST_SUITE_P(AllHtc, EveryProfile,
                         ::testing::Values("wordcount", "terasort",
                                           "search", "kmeans", "kmp",
                                           "rnc"));

TEST_P(EveryProfile, StreamFractionSurvivesBursting)
{
    // The burst-entry maths must keep the overall class mix at the
    // profile's fractions regardless of the burst length.
    const auto &prof = workloads::htcProfile(GetParam());
    workloads::ProfileStream s(prof, layout(), 80000, 5);
    isa::MicroOp op;
    std::uint64_t mem = 0, stream = 0;
    while (s.next(op) && op.kind != isa::OpKind::Halt) {
        if (!op.isMem())
            continue;
        ++mem;
        stream += op.memClass == isa::MemClass::Stream;
    }
    ASSERT_GT(mem, 1000u);
    EXPECT_NEAR(static_cast<double>(stream) / mem, prof.fracStream(),
                0.05);
}

TEST_P(EveryProfile, GranularityMatchesConfiguredWeights)
{
    const auto &prof = workloads::htcProfile(GetParam());
    DiscreteDist dist(prof.granularityWeights);
    workloads::ProfileStream s(prof, layout(), 80000, 9);
    isa::MicroOp op;
    std::map<std::uint8_t, std::uint64_t> sizes;
    std::uint64_t mem = 0;
    while (s.next(op) && op.kind != isa::OpKind::Halt) {
        if (op.isMem()) {
            ++sizes[op.size];
            ++mem;
        }
    }
    for (std::size_t g = 0; g < workloads::kNumGranularities; ++g) {
        const double expect = dist.probability(g);
        const double got =
            static_cast<double>(sizes[workloads::kGranularitySizes[g]]) /
            static_cast<double>(mem);
        EXPECT_NEAR(got, expect, 0.03) << "granularity index " << g;
    }
}

TEST_P(EveryProfile, SeedsProduceDistinctStreams)
{
    const auto &prof = workloads::htcProfile(GetParam());
    workloads::ProfileStream a(prof, layout(), 2000, 1);
    workloads::ProfileStream b(prof, layout(), 2000, 2);
    isa::MicroOp oa, ob;
    int diffs = 0;
    for (int i = 0; i < 2000; ++i) {
        a.next(oa);
        b.next(ob);
        diffs += oa.kind != ob.kind || oa.addr != ob.addr;
    }
    EXPECT_GT(diffs, 100);
}

// ---------------------------------------------------------------------
// Ring invariants over every slice width.

class EverySlice : public ::testing::TestWithParam<std::uint32_t>
{
};

INSTANTIATE_TEST_SUITE_P(Slices, EverySlice,
                         ::testing::Values(0u, 2u, 4u, 8u, 16u));

TEST_P(EverySlice, PacketConservationUnderLoad)
{
    Simulator sim;
    noc::RingParams rp;
    rp.numStops = 9;
    rp.sliceBytes = GetParam();
    noc::Ring ring(sim, rp, "ring");
    std::uint64_t delivered = 0;
    for (std::uint32_t s = 0; s < rp.numStops; ++s)
        ring.setHandler(s, [&](noc::Packet &&) { ++delivered; });
    Rng rng(3, GetParam());
    std::uint64_t injected = 0;
    for (int round = 0; round < 300; ++round) {
        for (std::uint32_t s = 0; s < rp.numStops; ++s) {
            noc::Packet p;
            p.payloadBytes =
                static_cast<std::uint32_t>(1 + rng.nextBelow(64));
            const auto dst = static_cast<std::uint32_t>(
                (s + 1 + rng.nextBelow(rp.numStops - 1)) % rp.numStops);
            if (dst != s && ring.inject(s, dst, std::move(p)))
                ++injected;
        }
        sim.run(1);
    }
    sim.run(20000);
    EXPECT_EQ(delivered, injected);
    EXPECT_EQ(ring.inFlight(), 0u);
}

TEST(RingFlex, BidirectionalPoolFollowsTheLoadedDirection)
{
    // All-one-way traffic must beat the fixed per-direction width
    // alone (the two flexible datapaths join the loaded direction).
    Simulator sim;
    noc::RingParams rp;
    rp.numStops = 8;
    rp.fixedBytesPerDir = 8;
    rp.flexBytes = 16;
    rp.sliceBytes = 2;
    noc::Ring ring(sim, rp, "ring");
    std::uint64_t bytes = 0;
    ring.setHandler(1, [&](noc::Packet &&p) {
        bytes += p.payloadBytes;
    });
    for (int i = 0; i < 60; ++i) {
        noc::Packet p;
        p.payloadBytes = 16;
        ring.inject(0, 1, std::move(p));
    }
    sim.run(50);
    // 50 cycles x 8 fixed bytes = 400 B; the pool must push past it.
    EXPECT_GT(bytes, 500u);
}

// ---------------------------------------------------------------------
// MACT conservation over every threshold.

class EveryThreshold : public ::testing::TestWithParam<Cycle>
{
};

INSTANTIATE_TEST_SUITE_P(Thresholds, EveryThreshold,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u));

TEST_P(EveryThreshold, NoRequestLostOrDuplicated)
{
    Simulator sim;
    mem::MactParams mp;
    mp.threshold = GetParam();
    mp.lines = 8;
    mem::Mact mact(sim, mp, "mact");
    std::uint64_t batched_reqs = 0;
    mact.setSink([&](mem::MactBatch &&b) {
        batched_reqs += b.requests.size();
        // The bitmap must cover at least one byte per merged request
        // line (same-offset merges may overlap).
        EXPECT_GE(b.coveredBytes(), 1u);
        EXPECT_LE(b.coveredBytes(), 64u);
    });
    Rng rng(7, GetParam());
    std::uint64_t accepted = 0;
    for (Cycle now = 0; now < 3000; ++now) {
        mact.tick(now);
        if (rng.chance(0.4)) {
            mem::MemRequest req;
            req.id = now;
            req.addr = 0x9000'0000 + rng.nextBelow(1024);
            req.bytes = static_cast<std::uint32_t>(
                1 + rng.nextBelow(8));
            req.write = rng.chance(0.4);
            accepted += mact.collect(req, now) ? 1 : 0;
        }
    }
    mact.flushAll();
    EXPECT_EQ(batched_reqs, accepted);
    EXPECT_EQ(mact.occupancy(), 0u);
}

// ---------------------------------------------------------------------
// DRAM service classes.

TEST(DramClasses, DemandOvertakesBulk)
{
    Simulator sim;
    mem::DramParams params;
    mem::DramController dram(sim, params, "dram");
    Cycle bulk_done = 0, demand_done = 0;
    for (int i = 0; i < 10; ++i)
        dram.serve(0x40, 256, 0, [&] { bulk_done = sim.now(); },
                   mem::DramClass::Bulk);
    dram.serve(0x40, 8, 0, [&] { demand_done = sim.now(); },
               mem::DramClass::DemandRead);
    sim.run(10000);
    EXPECT_LT(demand_done, bulk_done);
}

TEST(DramClasses, BulkNotStarvedByDemandStream)
{
    Simulator sim;
    mem::DramParams params;
    params.demandStreakLimit = 3;
    mem::DramController dram(sim, params, "dram");
    int bulk_served = 0;
    for (int i = 0; i < 8; ++i)
        dram.serve(0x40, 64, 0, [&] { ++bulk_served; },
                   mem::DramClass::Bulk);
    // A long steady stream of demand reads on the same channel.
    for (int i = 0; i < 200; ++i)
        dram.serve(0x40, 8, 0, nullptr, mem::DramClass::DemandRead);
    sim.run(1200);
    // The anti-starvation share must have served all bulk requests
    // even though demand never went empty.
    EXPECT_EQ(bulk_served, 8);
}

TEST(DramClasses, ChannelHashCoversAllChannelsForStrides)
{
    Simulator sim;
    mem::DramParams params;
    mem::DramController dram(sim, params, "dram");
    for (std::uint32_t stride : {64u, 128u, 256u, 512u, 4096u}) {
        int seen[4] = {0, 0, 0, 0};
        for (Addr a = 0; a < 256ull * stride; a += stride)
            ++seen[dram.channelOf(a)];
        for (int c = 0; c < 4; ++c)
            EXPECT_GT(seen[c], 16)
                << "stride " << stride << " starves channel " << c;
    }
}

// ---------------------------------------------------------------------
// Power-model monotonicity properties.

TEST(PowerProperties, MoreCoresMoreAreaAndPower)
{
    power::SmarcoPowerSpec small;
    small.numCores = 64;
    power::SmarcoPowerSpec big;
    big.numCores = 256;
    EXPECT_LT(power::smarcoPower(small).totalAreaMm2(),
              power::smarcoPower(big).totalAreaMm2());
    EXPECT_LT(power::smarcoPower(small).totalPowerW(),
              power::smarcoPower(big).totalPowerW());
}

TEST(PowerProperties, FrequencyScalesDynamicOnly)
{
    power::SmarcoPowerSpec slow;
    slow.freqGHz = 1.0;
    power::SmarcoPowerSpec fast;
    fast.freqGHz = 2.0;
    const auto r_slow = power::smarcoPower(slow);
    const auto r_fast = power::smarcoPower(fast);
    EXPECT_LT(r_slow.totalPowerW(), r_fast.totalPowerW());
    EXPECT_DOUBLE_EQ(r_slow.totalAreaMm2(), r_fast.totalAreaMm2());
}

// ---------------------------------------------------------------------
// Chip-level conservation across configurations.

class EveryChipScale
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

INSTANTIATE_TEST_SUITE_P(
    Scales, EveryChipScale,
    ::testing::Values(std::make_pair(1, 4), std::make_pair(2, 4),
                      std::make_pair(2, 16), std::make_pair(4, 8)));

TEST_P(EveryChipScale, TasksNeverLostAcrossTopologies)
{
    const auto [rings, cores] = GetParam();
    Simulator sim;
    chip::SmarcoChip chip(
        sim, chip::ChipConfig::scaled(rings, cores));
    workloads::TaskSetParams tp;
    tp.count = static_cast<std::uint64_t>(rings) * cores * 3;
    tp.seed = 19;
    auto tasks = workloads::makeTaskSet(
        workloads::htcProfile("terasort"), tp);
    for (auto &t : tasks)
        t.numOps = 3000;
    chip.submit(tasks);
    chip.runUntilDone(100'000'000);
    EXPECT_EQ(chip.metrics().tasksCompleted, tp.count);
    EXPECT_TRUE(sim.finishedIdle());
}
