/**
 * @file
 * Unit tests of the scratch-pad memory and its DMA engine.
 */
#include <gtest/gtest.h>

#include <vector>

#include "mem/spm.hpp"
#include "sim/stats.hpp"

using namespace smarco;
using namespace smarco::mem;

TEST(Spm, AddressRangeAndControlWindow)
{
    StatRegistry reg;
    SpmParams p;
    p.sizeBytes = 128 * 1024;
    p.controlBytes = 256;
    Spm spm(reg, p, 0x1000'0000, "spm");

    EXPECT_TRUE(spm.contains(0x1000'0000));
    EXPECT_TRUE(spm.contains(0x1000'0000 + spm.dataBytes() - 1));
    EXPECT_FALSE(spm.contains(0x1000'0000 + spm.dataBytes()));
    EXPECT_FALSE(spm.contains(0x0fff'ffff));

    // Top 256 bytes are DMA control registers (Section 3.5.1).
    EXPECT_TRUE(spm.isControl(0x1000'0000 + spm.dataBytes()));
    EXPECT_TRUE(spm.isControl(0x1000'0000 + p.sizeBytes - 1));
    EXPECT_FALSE(spm.isControl(0x1000'0000));
    EXPECT_EQ(spm.dataBytes(), 128 * 1024 - 256u);
}

TEST(Spm, AccessCountsAndLatency)
{
    StatRegistry reg;
    SpmParams p;
    p.accessLatency = 1;
    Spm spm(reg, p, 0, "spm");
    EXPECT_EQ(spm.access(false), 1u);
    EXPECT_EQ(spm.access(true), 1u);
    EXPECT_EQ(spm.access(true), 1u);
    EXPECT_EQ(spm.reads(), 1u);
    EXPECT_EQ(spm.writes(), 2u);
}

namespace {

/** Transport that records chunks and completes them on demand. */
struct ManualTransport {
    struct Chunk {
        Addr src, dst;
        std::uint32_t bytes;
        std::function<void()> done;
    };
    std::vector<Chunk> chunks;

    DmaEngine::Transport
    fn()
    {
        return [this](Addr s, Addr d, std::uint32_t b,
                      std::function<void()> done) {
            chunks.push_back(Chunk{s, d, b, std::move(done)});
        };
    }
};

} // namespace

TEST(Dma, SplitsIntoChunksWithWindow)
{
    StatRegistry reg;
    DmaEngine dma(reg, 256, "dma", /*max_outstanding=*/4);
    ManualTransport tr;
    dma.setTransport(tr.fn());

    bool done = false;
    dma.start(0x1000, 0x2000, 1000, [&] { done = true; });
    // Only the window is in flight, not all 4 chunks... 1000B = 4 chunks.
    EXPECT_EQ(tr.chunks.size(), 4u);
    EXPECT_TRUE(dma.busy());

    // Chunk addressing covers the transfer contiguously.
    EXPECT_EQ(tr.chunks[0].src, 0x1000u);
    EXPECT_EQ(tr.chunks[0].bytes, 256u);
    EXPECT_EQ(tr.chunks[3].src, 0x1000u + 768);
    EXPECT_EQ(tr.chunks[3].bytes, 232u); // 1000 - 768

    for (auto &c : tr.chunks)
        c.done();
    EXPECT_TRUE(done);
    EXPECT_FALSE(dma.busy());
}

TEST(Dma, WindowLimitsOutstandingChunks)
{
    StatRegistry reg;
    DmaEngine dma(reg, 64, "dma", /*max_outstanding=*/2);
    ManualTransport tr;
    dma.setTransport(tr.fn());

    bool done = false;
    dma.start(0, 0x8000, 64 * 10, [&] { done = true; });
    EXPECT_EQ(tr.chunks.size(), 2u); // window of 2
    tr.chunks[0].done();
    EXPECT_EQ(tr.chunks.size(), 3u); // next chunk issued
    tr.chunks[1].done();
    tr.chunks[2].done();
    EXPECT_EQ(tr.chunks.size(), 5u);
    while (tr.chunks.size() < 10 || !done) {
        bool progressed = false;
        // Index loop: completing a chunk appends new ones, which
        // would invalidate range-for iterators.
        for (std::size_t i = 0; i < tr.chunks.size(); ++i) {
            if (tr.chunks[i].done) {
                auto d = std::move(tr.chunks[i].done);
                tr.chunks[i].done = nullptr;
                d();
                progressed = true;
            }
        }
        ASSERT_TRUE(progressed);
    }
    EXPECT_TRUE(done);
    EXPECT_EQ(dma.transfersStarted(), 1u);
}

TEST(Dma, ZeroByteTransferCompletesImmediately)
{
    StatRegistry reg;
    DmaEngine dma(reg, 256, "dma");
    ManualTransport tr;
    dma.setTransport(tr.fn());
    bool done = false;
    dma.start(0, 0, 0, [&] { done = true; });
    EXPECT_TRUE(done);
    EXPECT_TRUE(tr.chunks.empty());
}

TEST(Dma, ConcurrentTransfersTracked)
{
    StatRegistry reg;
    DmaEngine dma(reg, 128, "dma", 8);
    ManualTransport tr;
    dma.setTransport(tr.fn());
    int done_count = 0;
    dma.start(0, 0x1000, 128, [&] { ++done_count; });
    dma.start(0x2000, 0x3000, 128, [&] { ++done_count; });
    EXPECT_EQ(tr.chunks.size(), 2u);
    EXPECT_TRUE(dma.busy());
    tr.chunks[0].done();
    EXPECT_EQ(done_count, 1);
    EXPECT_TRUE(dma.busy());
    tr.chunks[1].done();
    EXPECT_EQ(done_count, 2);
    EXPECT_FALSE(dma.busy());
    EXPECT_EQ(dma.transfersStarted(), 2u);
}
