/**
 * @file
 * Tests of the conventional-CMP (Xeon-like) baseline model.
 */
#include <gtest/gtest.h>

#include "baseline/baseline_chip.hpp"
#include "workloads/profile.hpp"
#include "workloads/task.hpp"

using namespace smarco;
using namespace smarco::baseline;

namespace {

std::vector<workloads::TaskSpec>
taskSet(const char *profile, std::uint64_t count, std::uint64_t seed)
{
    workloads::TaskSetParams tp;
    tp.count = count;
    tp.seed = seed;
    return workloads::makeTaskSet(workloads::htcProfile(profile), tp);
}

} // namespace

TEST(Baseline, CompletesAllTasks)
{
    Simulator sim;
    BaselineChip chip(sim, {});
    chip.spawnWorkers(8, taskSet("wordcount", 32, 1));
    sim.run(200'000'000);
    EXPECT_EQ(chip.tasksCompleted(), 32u);
    EXPECT_TRUE(sim.finishedIdle());
}

TEST(Baseline, DeterministicAcrossRuns)
{
    Cycle end[2];
    for (int i = 0; i < 2; ++i) {
        Simulator sim;
        BaselineChip chip(sim, {});
        chip.spawnWorkers(8, taskSet("kmp", 24, 7));
        end[i] = sim.run(200'000'000);
    }
    EXPECT_EQ(end[0], end[1]);
}

TEST(Baseline, MoreThreadsFasterUpToHardwareLimit)
{
    Cycle t1, t16;
    {
        Simulator sim;
        BaselineChip chip(sim, {});
        chip.spawnWorkers(1, taskSet("search", 48, 2));
        t1 = sim.run(500'000'000);
    }
    {
        Simulator sim;
        BaselineChip chip(sim, {});
        chip.spawnWorkers(16, taskSet("search", 48, 2));
        t16 = sim.run(500'000'000);
    }
    EXPECT_LT(t16, t1);
}

TEST(Baseline, OversubscriptionCostsContextSwitches)
{
    Simulator sim;
    BaselineParams params;
    BaselineChip chip(sim, params);
    // 96 threads on 48 hardware contexts: slots rotate.
    chip.spawnWorkers(96, taskSet("wordcount", 192, 3));
    sim.run(500'000'000);
    EXPECT_EQ(chip.tasksCompleted(), 192u);
    const Stat &switches = sim.stats().get("base.switches");
    EXPECT_GT(switches.value(), 0.0);
}

TEST(Baseline, ThreadCreationSerialises)
{
    // With tiny tasks, run time is dominated by serial creation:
    // ~numThreads x threadCreateCost.
    Simulator sim;
    BaselineParams params;
    BaselineChip chip(sim, params);
    auto tasks = taskSet("search", 64, 4);
    for (auto &t : tasks)
        t.numOps = 64;
    chip.spawnWorkers(64, tasks);
    const Cycle end = sim.run(500'000'000);
    EXPECT_GE(end, 64u * params.threadCreateCost);
}

TEST(Baseline, IdleRatioHighForMemoryBoundWork)
{
    Simulator sim;
    BaselineChip chip(sim, {});
    chip.spawnWorkers(48, taskSet("kmp", 96, 5));
    sim.run(500'000'000);
    const auto m = chip.metrics();
    // Fig. 1a: conventional cores idle most issue slots on HTC work.
    EXPECT_GT(m.idleSlotRatio, 0.5);
    EXPECT_LT(m.idleSlotRatio, 1.0);
}

TEST(Baseline, CacheMissRatiosAreMeasured)
{
    Simulator sim;
    BaselineChip chip(sim, {});
    chip.spawnWorkers(24, taskSet("terasort", 48, 6));
    sim.run(500'000'000);
    const auto m = chip.metrics();
    EXPECT_GT(m.l1MissRatio, 0.0);
    EXPECT_LT(m.l1MissRatio, 1.0);
    EXPECT_GT(m.l2MissRatio, 0.0);
    EXPECT_GT(m.llcMissRatio, 0.0);
    EXPECT_GT(m.l1AvgLatency, 0.0);
    EXPECT_GT(m.l2AvgLatency, m.l1AvgLatency);
    EXPECT_GT(m.llcAvgLatency, m.l2AvgLatency);
}

TEST(Baseline, BranchMissRatioTracksProfile)
{
    Simulator sim;
    BaselineChip chip(sim, {});
    chip.spawnWorkers(8, taskSet("kmp", 16, 7));
    sim.run(500'000'000);
    const auto m = chip.metrics();
    EXPECT_NEAR(m.branchMissRatio,
                workloads::htcProfile("kmp").branchMissRate, 0.02);
}

TEST(Baseline, PersistentWorkersServeInjectedTasks)
{
    Simulator sim;
    BaselineChip chip(sim, {});
    chip.spawnWorkers(4, {}, /*persistent=*/true);
    // Inject tasks at two points in time.
    auto tasks = taskSet("wordcount", 4, 8);
    sim.events().schedule(200'000, [&] {
        for (const auto &t : tasks)
            chip.injectTask(t);
    });
    sim.run(5'000'000);
    EXPECT_EQ(chip.tasksCompleted(), 4u);
}

TEST(Baseline, UtilisationLowWhenWorkIsSparse)
{
    // CDN-like situation: a trickle of tasks on idle-spinning
    // workers keeps CPU utilisation low.
    Simulator sim;
    BaselineChip chip(sim, {});
    chip.spawnWorkers(8, {}, /*persistent=*/true);
    auto tasks = taskSet("wordcount", 8, 9);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto t = tasks[i];
        sim.events().schedule(300'000 + i * 400'000,
                              [&chip, t] { chip.injectTask(t); });
    }
    sim.run(4'000'000);
    const auto m = chip.metrics();
    EXPECT_LT(m.cpuUtilisation, 0.2);
    EXPECT_GT(chip.tasksCompleted(), 0u);
}
