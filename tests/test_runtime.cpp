/**
 * @file
 * Tests of the pthread-like API and the functional MapReduce
 * framework (Section 3.6): functional correctness of real results
 * plus simulated-time accounting.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "runtime/mapreduce.hpp"
#include "runtime/threading.hpp"
#include "workloads/profile.hpp"

using namespace smarco;
using namespace smarco::runtime;

namespace {

chip::ChipConfig
smallChip()
{
    return chip::ChipConfig::scaled(2, 4);
}

MapReduceJob::Config
wcConfig()
{
    MapReduceJob::Config cfg;
    cfg.profile = &workloads::htcProfile("wordcount");
    cfg.sliceBytes = 64;
    return cfg;
}

MapReduceJob
wordCountJob()
{
    return MapReduceJob(
        [](const std::string &slice, Emitter &out) {
            std::string word;
            for (char c : slice) {
                if (c == ' ' || c == '\n') {
                    if (!word.empty())
                        out.emit(word, "1");
                    word.clear();
                } else {
                    word.push_back(c);
                }
            }
            if (!word.empty())
                out.emit(word, "1");
        },
        [](const std::string &, const std::vector<std::string> &vals) {
            std::uint64_t total = 0;
            for (const auto &v : vals)
                total += std::strtoull(v.c_str(), nullptr, 10);
            return std::to_string(total);
        },
        wcConfig());
}

} // namespace

TEST(Threading, CreateAndJoin)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, smallChip());
    ThreadApi api(chip);

    workloads::TaskSpec t;
    t.profile = &workloads::htcProfile("search");
    t.numOps = 4000;
    t.seed = 1;
    auto h1 = api.threadCreate(t);
    t.seed = 2;
    auto h2 = api.threadCreate(t);
    EXPECT_FALSE(h1->finished);
    api.joinAll();
    EXPECT_TRUE(h1->finished);
    EXPECT_TRUE(h2->finished);
    EXPECT_GT(h1->finishCycle, 0u);
    EXPECT_EQ(api.created(), 2u);
    EXPECT_EQ(api.finished(), 2u);
}

TEST(Threading, ManyThreadsAllFinish)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, smallChip());
    ThreadApi api(chip);
    workloads::TaskSpec t;
    t.profile = &workloads::htcProfile("kmeans");
    t.numOps = 2000;
    std::vector<workloads::TaskSpec> tasks;
    for (int i = 0; i < 40; ++i) {
        t.id = i;
        t.seed = i;
        tasks.push_back(t);
    }
    api.threadCreateAll(tasks);
    api.joinAll();
    EXPECT_EQ(api.finished(), 40u);
}

TEST(MapReduce, SliceTextRespectsWordBoundaries)
{
    const std::string text = "alpha beta gamma delta epsilon";
    const auto slices = sliceText(text, 10);
    ASSERT_GE(slices.size(), 2u);
    std::string rejoined;
    for (const auto &s : slices)
        rejoined += s;
    EXPECT_EQ(rejoined, text);
    // No word is split across slices.
    for (std::size_t i = 0; i + 1 < slices.size(); ++i)
        EXPECT_TRUE(slices[i].empty() || slices[i].back() == ' ' ||
                    slices[i + 1].front() == ' ');
}

TEST(MapReduce, WordCountIsFunctionallyCorrect)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, smallChip());
    auto job = wordCountJob();
    const auto result = job.run(chip,
        "the quick brown fox jumps over the lazy dog the fox");
    EXPECT_EQ(result.at("the"), "3");
    EXPECT_EQ(result.at("fox"), "2");
    EXPECT_EQ(result.at("dog"), "1");
    EXPECT_EQ(result.size(), 8u);
}

TEST(MapReduce, StatsAccountSimulatedTime)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, smallChip());
    auto job = wordCountJob();
    std::string input;
    for (int i = 0; i < 200; ++i)
        input += "word" + std::to_string(i % 17) + " ";
    job.run(chip, input);
    const auto &st = job.stats();
    EXPECT_GT(st.mapTasks, 1u);
    EXPECT_GT(st.reduceTasks, 0u);
    EXPECT_GT(st.mapCycles, 0u);
    EXPECT_GT(st.reduceCycles, 0u);
    EXPECT_GE(st.totalCycles, st.mapCycles);
    EXPECT_GT(st.pairsEmitted, 100u);
}

TEST(MapReduce, EmptyInputYieldsEmptyResult)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, smallChip());
    auto job = wordCountJob();
    const auto result = job.run(chip, "");
    EXPECT_TRUE(result.empty());
}

TEST(MapReduce, MaxReduceFindsMaximumPerKey)
{
    Simulator sim;
    chip::SmarcoChip chip(sim, smallChip());
    MapReduceJob::Config cfg;
    cfg.profile = &workloads::htcProfile("terasort");
    cfg.sliceBytes = 32;
    MapReduceJob job(
        [](const std::string &slice, Emitter &out) {
            // Input records: "key:value" separated by spaces.
            std::string tok;
            for (char c : slice) {
                if (c == ' ') {
                    if (auto p = tok.find(':'); p != std::string::npos)
                        out.emit(tok.substr(0, p), tok.substr(p + 1));
                    tok.clear();
                } else {
                    tok.push_back(c);
                }
            }
            if (auto p = tok.find(':'); p != std::string::npos)
                out.emit(tok.substr(0, p), tok.substr(p + 1));
        },
        [](const std::string &, const std::vector<std::string> &vals) {
            long best = -1;
            for (const auto &v : vals)
                best = std::max(best, std::strtol(v.c_str(), nullptr, 10));
            return std::to_string(best);
        },
        cfg);
    const auto result =
        job.run(chip, "a:5 b:2 a:9 c:7 b:11 a:1");
    EXPECT_EQ(result.at("a"), "9");
    EXPECT_EQ(result.at("b"), "11");
    EXPECT_EQ(result.at("c"), "7");
}
