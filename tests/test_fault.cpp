/**
 * @file
 * Tests of the fault-injection & recovery subsystem (src/fault/):
 * named RNG streams, histogram percentiles, campaign spec parsing,
 * the zero-fault byte-identity guarantee, cross-kernel-mode
 * determinism of faulted runs, recovery end-to-end, the DRAM/MACT
 * fault models and the wedge watchdog.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/baseline_chip.hpp"
#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "fault/fault_campaign.hpp"
#include "fault/fault_spec.hpp"
#include "mem/dram.hpp"
#include "mem/mact.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/profile.hpp"
#include "workloads/task.hpp"

using namespace smarco;

namespace {

std::string
dumpStats(Simulator &sim)
{
    std::ostringstream os;
    sim.stats().dumpJson(os);
    return os.str();
}

/**
 * One SmarCo run of a seeded task set with an optional fault
 * campaign; returns the stats dump.
 */
std::string
smarcoRun(std::uint64_t seed, bool fast_forward,
          const fault::FaultSpec *spec, std::uint64_t fault_seed = 1,
          chip::ChipMetrics *out = nullptr)
{
    Simulator sim;
    sim.setFastForward(fast_forward);
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(2, 4));
    workloads::TaskSetParams tp;
    tp.count = 24;
    tp.seed = seed;
    tp.releaseSpan = 50'000;
    chip.submit(workloads::makeTaskSet(
        workloads::htcProfile("wordcount"), tp));
    std::unique_ptr<fault::FaultCampaign> campaign;
    if (spec) {
        campaign = std::make_unique<fault::FaultCampaign>(
            sim, *spec, fault_seed);
        campaign->arm(chip.faultTargets());
    }
    chip.runUntilDone(100'000'000);
    if (out)
        *out = chip.metrics();
    return dumpStats(sim);
}

void
expectIdentical(const std::string &a, const std::string &b)
{
    if (a == b) {
        SUCCEED();
        return;
    }
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i])
        ++i;
    const std::size_t from = i > 40 ? i - 40 : 0;
    FAIL() << "stat dumps diverge at byte " << i << ":\n  run A: ..."
           << a.substr(from, 80) << "\n  run B: ..."
           << b.substr(from, 80);
}

} // namespace

// ---------------------------------------------------------------------
// Named RNG streams (sim/random).

TEST(NamedStreams, SameSeedSameNameSameSequence)
{
    Rng a = namedRng(7, "fault.gap.coreKill");
    Rng b = namedRng(7, "fault.gap.coreKill");
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(NamedStreams, DifferentNamesDecorrelate)
{
    Rng a = namedRng(7, "fault.gap.coreKill");
    Rng b = namedRng(7, "fault.gap.dramStall");
    int same = 0;
    for (int i = 0; i < 16; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
    EXPECT_NE(rngStreamId("fault.gap.coreKill"),
              rngStreamId("fault.gap.dramStall"));
}

TEST(NamedStreams, SeedChangesSequence)
{
    Rng a = namedRng(7, "fault.drop");
    Rng b = namedRng(8, "fault.drop");
    EXPECT_NE(a.next(), b.next());
}

TEST(NamedStreams, StreamIdIsStable)
{
    // The id is a pure function of the name: campaign replays depend
    // on it never changing between builds.
    EXPECT_EQ(rngStreamId("fault.drop"), rngStreamId("fault.drop"));
    EXPECT_NE(rngStreamId(""), rngStreamId("fault.drop"));
}

// ---------------------------------------------------------------------
// Histogram percentiles (sim/stats).

TEST(HistogramPercentiles, UniformSamplesInterpolate)
{
    StatRegistry reg;
    Histogram h(reg, "h", "test", 0.0, 100.0, 20);
    for (int v = 0; v < 100; ++v)
        h.sample(v + 0.5);
    EXPECT_NEAR(h.percentile(0.50), 50.0, 5.0);
    EXPECT_NEAR(h.percentile(0.95), 95.0, 5.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 5.0);
    EXPECT_LE(h.percentile(0.0), h.percentile(0.5));
    EXPECT_LE(h.percentile(0.5), h.percentile(1.0));
}

TEST(HistogramPercentiles, ClampedToObservedRange)
{
    StatRegistry reg;
    Histogram h(reg, "h", "test", 0.0, 100.0, 10);
    h.sample(42.0);
    // A single sample: every quantile is that sample, not a bucket
    // edge.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 42.0);
    // Saturating edge bucket must not report values never sampled.
    h.sample(1e9);
    EXPECT_LE(h.percentile(1.0), 1e9);
}

TEST(HistogramPercentiles, EmptyIsZeroAndJsonHasKeys)
{
    StatRegistry reg;
    Histogram h(reg, "h", "test", 0.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    std::ostringstream os;
    h.printJson(os);
    EXPECT_NE(os.str().find("\"p50\""), std::string::npos);
    EXPECT_NE(os.str().find("\"p95\""), std::string::npos);
    EXPECT_NE(os.str().find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Campaign spec JSON.

TEST(FaultSpecJson, ParsesNestedSpec)
{
    const char *text = R"({
        "core": {"hangRate": 2.5, "killRate": 1},
        "noc": {"dropProb": 0.125, "nackDelay": 20,
                "maxRetransmits": 6, "degradeRate": 0.5,
                "degradeFactor": 0.25, "degradeDuration": 5000,
                "dupRate": 0.75},
        "dram": {"stallRate": 3, "stallDuration": 1234},
        "mact": {"lossRate": 0.5, "recoveryLatency": 99},
        "recovery": {"heartbeatInterval": 500, "hangTimeout": 9000,
                     "backoffBase": 100, "backoffMax": 800,
                     "maxAttempts": 3},
        "campaign": {"horizon": 123456, "watchdogInterval": 7777,
                     "rateScale": 2, "rateScaleCeiling": 8}
    })";
    fault::FaultSpec spec =
        fault::FaultSpec::fromJsonText(text, "test");
    EXPECT_DOUBLE_EQ(spec.coreHangRate, 2.5);
    EXPECT_DOUBLE_EQ(spec.coreKillRate, 1.0);
    EXPECT_DOUBLE_EQ(spec.nocDropProb, 0.125);
    EXPECT_EQ(spec.nocNackDelay, 20u);
    EXPECT_EQ(spec.nocMaxRetransmits, 6u);
    EXPECT_DOUBLE_EQ(spec.nocDegradeRate, 0.5);
    EXPECT_DOUBLE_EQ(spec.nocDegradeFactor, 0.25);
    EXPECT_EQ(spec.nocDegradeDuration, 5000u);
    EXPECT_DOUBLE_EQ(spec.nocDupRate, 0.75);
    EXPECT_DOUBLE_EQ(spec.dramStallRate, 3.0);
    EXPECT_EQ(spec.dramStallDuration, 1234u);
    EXPECT_DOUBLE_EQ(spec.mactLossRate, 0.5);
    EXPECT_EQ(spec.mactRecoveryLatency, 99u);
    EXPECT_EQ(spec.heartbeatInterval, 500u);
    EXPECT_EQ(spec.hangTimeout, 9000u);
    EXPECT_EQ(spec.backoffBase, 100u);
    EXPECT_EQ(spec.backoffMax, 800u);
    EXPECT_EQ(spec.maxAttempts, 3u);
    EXPECT_EQ(spec.horizon, 123456u);
    EXPECT_EQ(spec.watchdogInterval, 7777u);
    EXPECT_DOUBLE_EQ(spec.rateScale, 2.0);
    EXPECT_DOUBLE_EQ(spec.rateScaleCeiling, 8.0);
    EXPECT_TRUE(spec.anyFaults());
}

TEST(FaultSpecJson, DefaultsAreInert)
{
    fault::FaultSpec spec = fault::FaultSpec::fromJsonText("{}", "t");
    EXPECT_FALSE(spec.anyFaults());
}

TEST(FaultSpecJson, UnknownKeysAreIgnored)
{
    fault::FaultSpec spec = fault::FaultSpec::fromJsonText(
        R"({"core": {"hangRate": 1, "frobnicate": 3}, "quux": {}})",
        "t");
    EXPECT_DOUBLE_EQ(spec.coreHangRate, 1.0);
    EXPECT_TRUE(spec.anyFaults());
}

TEST(FaultSpecJsonDeath, MalformedTextIsFatal)
{
    EXPECT_EXIT(fault::FaultSpec::fromJsonText("{\"core\": [1]}", "t"),
                ::testing::ExitedWithCode(1), "fault spec t");
    EXPECT_EXIT(fault::FaultSpec::fromJsonText("not json", "t"),
                ::testing::ExitedWithCode(1), "fault spec t");
}

TEST(FaultSpecJsonDeath, OutOfRangeDropProbIsFatal)
{
    EXPECT_EXIT(fault::FaultSpec::fromJsonText(
                    R"({"noc": {"dropProb": 1.5}})", "t"),
                ::testing::ExitedWithCode(1), "dropProb");
}

// ---------------------------------------------------------------------
// Zero-fault byte-identity and cross-mode determinism.

TEST(FaultDeterminism, InertCampaignLeavesStatsByteIdentical)
{
    const std::string bare = smarcoRun(7, true, nullptr);
    fault::FaultSpec inert; // all rates zero
    EXPECT_FALSE(inert.anyFaults());
    expectIdentical(bare, smarcoRun(7, true, &inert));
    // Same in the cycle-accurate kernel.
    expectIdentical(smarcoRun(7, false, nullptr),
                    smarcoRun(7, false, &inert));
}

TEST(FaultDeterminism, FaultedRunSameSeedSameStats)
{
    fault::FaultSpec spec;
    spec.coreKillRate = 4.0;
    spec.dramStallRate = 4.0;
    spec.nocDegradeRate = 2.0;
    spec.nocDropProb = 0.001;
    spec.horizon = 4'000'000;
    expectIdentical(smarcoRun(7, true, &spec, 3),
                    smarcoRun(7, true, &spec, 3));
}

TEST(FaultDeterminism, FaultedRunIdenticalAcrossKernelModes)
{
    fault::FaultSpec spec;
    spec.coreKillRate = 4.0;
    spec.coreHangRate = 2.0;
    spec.dramStallRate = 4.0;
    spec.horizon = 4'000'000;
    expectIdentical(smarcoRun(11, true, &spec, 5),
                    smarcoRun(11, false, &spec, 5));
}

TEST(FaultDeterminism, FaultSeedChangesInjectionTrajectory)
{
    fault::FaultSpec spec;
    spec.coreKillRate = 8.0;
    spec.horizon = 4'000'000;
    EXPECT_NE(smarcoRun(7, true, &spec, 1),
              smarcoRun(7, true, &spec, 2));
}

// ---------------------------------------------------------------------
// Recovery end-to-end: faulted runs finish all tasks.

TEST(FaultRecovery, KilledTasksAreRedispatchedAndComplete)
{
    fault::FaultSpec spec;
    spec.coreKillRate = 20.0;
    spec.horizon = 4'000'000;
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(2, 4));
    workloads::TaskSetParams tp;
    tp.count = 24;
    tp.seed = 7;
    tp.releaseSpan = 50'000;
    chip.submit(workloads::makeTaskSet(
        workloads::htcProfile("wordcount"), tp));
    fault::FaultCampaign campaign(sim, spec, 3);
    campaign.arm(chip.faultTargets());
    chip.runUntilDone(100'000'000);
    EXPECT_EQ(chip.metrics().tasksCompleted, 24u);
    if (campaign.injected() > 0)
        EXPECT_GT(sim.stats().total("", ".redispatches"), 0.0);
}

TEST(FaultRecovery, HungTasksAreDetectedAndComplete)
{
    fault::FaultSpec spec;
    spec.coreHangRate = 20.0;
    spec.horizon = 4'000'000;
    spec.heartbeatInterval = 2'000;
    spec.hangTimeout = 20'000;
    chip::ChipMetrics m;
    smarcoRun(7, true, &spec, 3, &m);
    EXPECT_EQ(m.tasksCompleted, 24u);
}

TEST(FaultRecovery, BaselineWorkerKillsStillDrainTheBag)
{
    Simulator sim;
    baseline::BaselineParams bp;
    bp.numCores = 4;
    bp.llc = mem::CacheParams{"llc", 4 * 1024 * 1024, 16, 64, 38};
    baseline::BaselineChip chip(sim, bp);
    workloads::TaskSetParams tp;
    tp.count = 16;
    tp.seed = 3;
    chip.spawnWorkers(8, workloads::makeTaskSet(
                             workloads::htcProfile("wordcount"), tp));
    fault::FaultSpec spec;
    spec.coreKillRate = 10.0;
    spec.coreHangRate = 10.0;
    spec.horizon = 20'000'000;
    spec.heartbeatInterval = 5'000;
    spec.hangTimeout = 30'000;
    fault::FaultCampaign campaign(sim, spec, 3);
    campaign.arm(chip.faultTargets());
    sim.run(400'000'000);
    EXPECT_EQ(chip.tasksCompleted(), 16u);
    EXPECT_GT(campaign.injected(), 0u);
}

// ---------------------------------------------------------------------
// Component fault models.

TEST(DramFault, StalledChannelServesLate)
{
    mem::DramParams params;
    Cycle clean = 0, stalled = 0;
    for (int mode = 0; mode < 2; ++mode) {
        Simulator sim;
        mem::DramController dram(sim, params, "dram");
        if (mode == 1)
            dram.stallChannel(dram.channelOf(0x40), 500, 0);
        Cycle done = 0;
        dram.serve(0x40, 64, 0, [&] { done = sim.now(); });
        sim.run(5000);
        (mode == 0 ? clean : stalled) = done;
    }
    EXPECT_GT(clean, 0u);
    EXPECT_GE(stalled, 500u);
    EXPECT_GT(stalled, clean);
}

TEST(MactFault, LostEntryIsReemittedAfterRecoveryLatency)
{
    Simulator sim;
    mem::MactParams params;
    mem::Mact mact(sim, params, "mact");
    std::vector<mem::MactBatch> batches;
    std::vector<Cycle> arrived;
    mact.setSink([&](mem::MactBatch &&b) {
        batches.push_back(std::move(b));
        arrived.push_back(sim.now());
    });
    mem::MemRequest r;
    r.id = 1;
    r.addr = 0x1000;
    r.bytes = 4;
    ASSERT_TRUE(mact.collect(r, 0));
    ASSERT_EQ(mact.occupancy(), 1u);
    ASSERT_TRUE(mact.injectEntryLoss(0, 400, 0));
    EXPECT_EQ(mact.occupancy(), 0u);
    EXPECT_EQ(mact.entriesLost(), 1u);
    sim.run(2000);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_GE(arrived[0], 400u);
    ASSERT_EQ(batches[0].requests.size(), 1u);
    EXPECT_EQ(batches[0].requests[0].id, 1u);
}

TEST(MactFault, LossOnEmptyTableMisses)
{
    Simulator sim;
    mem::MactParams params;
    mem::Mact mact(sim, params, "mact");
    mact.setSink([](mem::MactBatch &&) {});
    EXPECT_FALSE(mact.injectEntryLoss(0, 400, 0));
    EXPECT_EQ(mact.entriesLost(), 0u);
}

// ---------------------------------------------------------------------
// Watchdog.

namespace {

/** A component that is forever busy and never makes progress. */
struct Wedge : Ticking {
    void tick(Cycle) override {}
    bool busy() const override { return true; }
};

} // namespace

TEST(WatchdogDeath, WedgedRunAbortsWithStatsDump)
{
    EXPECT_EXIT(
        {
            Simulator sim;
            Wedge wedge;
            sim.addTicking(&wedge);
            fault::FaultSpec spec;
            spec.dramStallRate = 1.0;
            spec.horizon = 1'000'000;
            spec.watchdogInterval = 1'000;
            fault::FaultCampaign campaign(sim, spec, 1);
            fault::FaultTargets targets;
            targets.armContinuous = [](const fault::FaultSpec &,
                                       Rng &) {};
            targets.progress = [] { return std::uint64_t{42}; };
            campaign.arm(targets);
            sim.run(10'000'000);
        },
        ::testing::ExitedWithCode(1), "watchdog");
}

// ---------------------------------------------------------------------
// Campaign bookkeeping.

TEST(Campaign, InjectionsAreCountedAndLogged)
{
    fault::FaultSpec spec;
    // High enough that arrivals land inside the ~200k-cycle run.
    spec.dramStallRate = 100.0;
    spec.horizon = 2'000'000;
    Simulator sim;
    chip::SmarcoChip chip(sim, chip::ChipConfig::scaled(2, 4));
    workloads::TaskSetParams tp;
    tp.count = 24;
    tp.seed = 7;
    tp.releaseSpan = 50'000;
    chip.submit(workloads::makeTaskSet(
        workloads::htcProfile("wordcount"), tp));
    fault::FaultCampaign campaign(sim, spec, 1);
    campaign.arm(chip.faultTargets());
    chip.runUntilDone(100'000'000);
    EXPECT_GT(campaign.injected(), 0u);
    ASSERT_NE(campaign.log(), nullptr);
    EXPECT_EQ(campaign.log()->records().size(), campaign.injected());
    const std::string dump = dumpStats(sim);
    EXPECT_NE(dump.find("\"fault.injected\""), std::string::npos);
    EXPECT_NE(dump.find("\"fault.log\""), std::string::npos);
    EXPECT_NE(dump.find("\"faultlog\""), std::string::npos);
}

TEST(Campaign, RateScaleThinningNestsAcceptedSets)
{
    // The sweep invariant: the faults injected at a lower rateScale
    // are a subset of those at a higher one (same seed, same
    // ceiling), which is what makes degradation curves monotone in
    // expectation rather than re-rolled noise.
    auto cyclesAt = [](double scale) {
        fault::FaultSpec spec;
        spec.dramStallRate = 10.0;
        spec.horizon = 2'000'000;
        spec.rateScale = scale;
        spec.rateScaleCeiling = 4.0;
        Simulator sim;
        Wedge wedge;
        sim.addTicking(&wedge);
        spec.watchdogInterval = 0; // no watchdog: wedge is the clock
        fault::FaultCampaign campaign(sim, spec, 9);
        fault::FaultTargets targets;
        targets.dramStall = [](Rng &, Cycle,
                               const fault::FaultSpec &) {
            return true;
        };
        targets.armContinuous = [](const fault::FaultSpec &,
                                   Rng &) {};
        campaign.arm(targets);
        sim.run(2'100'000);
        std::vector<Cycle> cycles;
        for (const auto &rec : campaign.log()->records())
            cycles.push_back(rec.cycle);
        return cycles;
    };
    const std::vector<Cycle> low = cyclesAt(1.0);
    const std::vector<Cycle> high = cyclesAt(4.0);
    EXPECT_GT(low.size(), 0u);
    EXPECT_GT(high.size(), low.size());
    for (Cycle c : low)
        EXPECT_NE(std::find(high.begin(), high.end(), c), high.end())
            << "fault at cycle " << c
            << " vanished at the higher rate";
}
