/**
 * @file
 * Integration tests of the assembled SmarCo chip: configs, the memory
 * request paths (SPM remote, heap fills, stream + MACT, direct path),
 * DMA staging, and metrics.
 */
#include <gtest/gtest.h>

#include "sim/logging.hpp"
#include "chip/chip_config.hpp"
#include "chip/smarco_chip.hpp"
#include "workloads/profile.hpp"
#include "workloads/profile_stream.hpp"
#include "workloads/task.hpp"

using namespace smarco;
using namespace smarco::chip;

TEST(ChipConfig, PresetsValidate)
{
    EXPECT_EQ(ChipConfig::simulated256().numCores(), 256u);
    EXPECT_EQ(ChipConfig::simulated256().numThreadsTotal(), 2048u);
    EXPECT_EQ(ChipConfig::prototype40nm().numThreadsTotal(), 256u);
    EXPECT_EQ(ChipConfig::fpga256().numCores(), 256u);
    EXPECT_EQ(ChipConfig::scaled(2, 4).numCores(), 8u);
}

TEST(ChipConfig, Fpga256PresetInstantiates)
{
    // The FPGA verification platform preset: same 256-core topology
    // at an emulation clock. A tiny run must work end to end.
    Simulator sim;
    chip::SmarcoChip chip(sim, ChipConfig::fpga256());
    workloads::TaskSpec t;
    t.id = 1;
    t.profile = &workloads::htcProfile("kmp");
    t.numOps = 2000;
    t.seed = 9;
    chip.submitTo(0, t);
    chip.runUntilDone(10'000'000);
    EXPECT_EQ(chip.metrics().tasksCompleted, 1u);
}

TEST(ChipConfig, MismatchedDramChannelsRejected)
{
    auto cfg = ChipConfig::scaled(4, 4);
    cfg.dram.channels = 2; // noc has 4 MCs
    EXPECT_DEATH(cfg.validate(), "DRAM channels");
}

namespace {

struct ChipFixture : ::testing::Test {
    Simulator sim;
    ChipConfig cfg = ChipConfig::scaled(2, 4);

    std::unique_ptr<SmarcoChip>
    make()
    {
        return std::make_unique<SmarcoChip>(sim, cfg);
    }

    workloads::TaskSpec
    taskOf(const char *profile, std::uint64_t ops, TaskId id = 0)
    {
        workloads::TaskSpec t;
        t.id = id;
        t.profile = &workloads::htcProfile(profile);
        t.numOps = ops;
        t.seed = 11 + id;
        return t;
    }
};

} // namespace

TEST_F(ChipFixture, RunsTaskSetToCompletion)
{
    auto chip = make();
    workloads::TaskSetParams tp;
    tp.count = 24;
    tp.seed = 5;
    chip->submit(workloads::makeTaskSet(
        workloads::htcProfile("wordcount"), tp));
    chip->runUntilDone(10'000'000);
    const auto m = chip->metrics();
    EXPECT_EQ(m.tasksCompleted, 24u);
    EXPECT_GT(m.opsCommitted, 24u * 10000);
    EXPECT_GT(m.aggregateIpc, 0.0);
    EXPECT_GT(m.dramRequests, 0u);
}

TEST_F(ChipFixture, DeterministicAcrossRuns)
{
    Cycle end1, end2;
    std::uint64_t ops1, ops2;
    {
        Simulator s1;
        SmarcoChip c1(s1, cfg);
        workloads::TaskSetParams tp;
        tp.count = 16;
        tp.seed = 9;
        c1.submit(workloads::makeTaskSet(
            workloads::htcProfile("kmp"), tp));
        end1 = c1.runUntilDone(10'000'000);
        ops1 = c1.metrics().opsCommitted;
    }
    {
        Simulator s2;
        SmarcoChip c2(s2, cfg);
        workloads::TaskSetParams tp;
        tp.count = 16;
        tp.seed = 9;
        c2.submit(workloads::makeTaskSet(
            workloads::htcProfile("kmp"), tp));
        end2 = c2.runUntilDone(10'000'000);
        ops2 = c2.metrics().opsCommitted;
    }
    EXPECT_EQ(end1, end2);
    EXPECT_EQ(ops1, ops2);
}

TEST_F(ChipFixture, MactCollectsStreamTraffic)
{
    cfg.mact.enabled = true;
    auto chip = make();
    workloads::TaskSetParams tp;
    tp.count = 16;
    tp.seed = 2;
    chip->submit(workloads::makeTaskSet(
        workloads::htcProfile("kmp"), tp));
    chip->runUntilDone(10'000'000);
    std::uint64_t collected = 0, batches = 0;
    for (std::uint32_t g = 0; g < cfg.noc.numSubRings; ++g) {
        collected += chip->mact(g).collected();
        batches += chip->mact(g).batches();
    }
    EXPECT_GT(collected, 100u);
    EXPECT_GT(batches, 0u);
    EXPECT_LT(batches, collected); // merging happened
}

TEST_F(ChipFixture, MactOffIncreasesDramRequests)
{
    std::uint64_t with_mact, without_mact;
    std::uint64_t tasks_a, tasks_b;
    {
        Simulator s;
        ChipConfig c = cfg;
        c.mact.enabled = true;
        SmarcoChip chip(s, c);
        workloads::TaskSetParams tp;
        tp.count = 16;
        tp.seed = 4;
        chip.submit(workloads::makeTaskSet(
            workloads::htcProfile("kmp"), tp));
        chip.runUntilDone(10'000'000);
        with_mact = chip.metrics().dramRequests;
        tasks_a = chip.metrics().tasksCompleted;
    }
    {
        Simulator s;
        ChipConfig c = cfg;
        c.mact.enabled = false;
        SmarcoChip chip(s, c);
        workloads::TaskSetParams tp;
        tp.count = 16;
        tp.seed = 4;
        chip.submit(workloads::makeTaskSet(
            workloads::htcProfile("kmp"), tp));
        chip.runUntilDone(10'000'000);
        without_mact = chip.metrics().dramRequests;
        tasks_b = chip.metrics().tasksCompleted;
    }
    EXPECT_EQ(tasks_a, tasks_b);
    // Fig. 20: MACT shrinks the number of memory access requests.
    EXPECT_LT(with_mact, without_mact);
}

TEST_F(ChipFixture, RealtimeTrafficUsesDirectPath)
{
    auto chip = make();
    workloads::TaskSetParams tp;
    tp.count = 16;
    tp.seed = 8;
    tp.realtime = true;
    chip->submit(workloads::makeTaskSet(
        workloads::htcProfile("rnc"), tp));
    chip->runUntilDone(10'000'000);
    const Stat &direct = sim.stats().get("chip.priorityDirect");
    EXPECT_GT(direct.value(), 0.0);
}

TEST_F(ChipFixture, DmaStagingMovesTaskInput)
{
    cfg.dmaStaging = true;
    auto chip = make();
    workloads::TaskSetParams tp;
    tp.count = 8;
    tp.seed = 3;
    chip->submit(workloads::makeTaskSet(
        workloads::htcProfile("terasort"), tp));
    chip->runUntilDone(10'000'000);
    double staged = 0.0;
    for (CoreId c = 0; c < chip->numCores(); ++c) {
        if (auto *s = sim.stats().find(strprintf("chip.dma%03u.bytes", c)))
            staged += s->value();
    }
    EXPECT_GT(staged, 8.0 * 1024); // at least the inputs moved
}

TEST_F(ChipFixture, StagingOffStillCompletes)
{
    cfg.dmaStaging = false;
    auto chip = make();
    workloads::TaskSetParams tp;
    tp.count = 8;
    tp.seed = 3;
    chip->submit(workloads::makeTaskSet(
        workloads::htcProfile("terasort"), tp));
    chip->runUntilDone(10'000'000);
    EXPECT_EQ(chip->metrics().tasksCompleted, 8u);
}

TEST_F(ChipFixture, LayoutRegionsDisjointAcrossCores)
{
    auto chip = make();
    const auto t = taskOf("wordcount", 1000);
    const auto l0 = chip->layoutFor(t, 0);
    const auto l1 = chip->layoutFor(t, 1);
    EXPECT_NE(l0.spmLocalBase, l1.spmLocalBase);
    EXPECT_NE(l0.heapBase, l1.heapBase);
    EXPECT_NE(l0.streamBase, l1.streamBase);
    // Remote SPM of core 0 is a neighbour's window in the same ring.
    EXPECT_EQ(l0.spmRemoteBase, l1.spmLocalBase);
    // Heap regions do not overlap.
    EXPECT_GE(l1.heapBase, l0.heapBase + l0.heapSize);
}

TEST_F(ChipFixture, SubmitToTargetsSpecificSubRing)
{
    auto chip = make();
    for (TaskId i = 0; i < 6; ++i)
        chip->submitTo(1, taskOf("search", 2000, i));
    chip->runUntilDone(10'000'000);
    EXPECT_EQ(chip->subScheduler(1).tasksCompleted(), 6u);
    EXPECT_EQ(chip->subScheduler(0).tasksCompleted(), 0u);
}

TEST_F(ChipFixture, SubmitWithHookFiresOnCompletion)
{
    auto chip = make();
    bool fired = false;
    Cycle finish = 0;
    chip->submitWithHook(taskOf("kmeans", 3000),
        [&](const workloads::TaskSpec &, Cycle f, CoreId) {
            fired = true;
            finish = f;
        });
    chip->runUntilDone(10'000'000);
    EXPECT_TRUE(fired);
    EXPECT_GT(finish, 0u);
}

TEST_F(ChipFixture, MetricsConsistency)
{
    auto chip = make();
    workloads::TaskSetParams tp;
    tp.count = 12;
    tp.seed = 6;
    chip->submit(workloads::makeTaskSet(
        workloads::htcProfile("rnc"), tp));
    chip->runUntilDone(10'000'000);
    const auto m = chip->metrics();
    EXPECT_EQ(m.tasksCompleted, 12u);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_NEAR(m.aggregateIpc,
                static_cast<double>(m.opsCommitted) / m.cycles, 1e-9);
    EXPECT_GE(m.nocUtilisation, 0.0);
    EXPECT_LE(m.nocUtilisation, 1.0);
    EXPECT_GT(m.avgMemLatency, 0.0);
}
