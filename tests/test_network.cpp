/**
 * @file
 * Tests of the hierarchical ring network and the direct datapath.
 */
#include <gtest/gtest.h>

#include "noc/direct_path.hpp"
#include "noc/network.hpp"
#include "sim/simulator.hpp"

using namespace smarco;
using namespace smarco::noc;

namespace {

struct NetFixture : ::testing::Test {
    Simulator sim;
    NetworkParams params;

    NetFixture()
    {
        params.numSubRings = 4;
        params.coresPerSubRing = 4;
        params.numMemCtrls = 4;
    }

    std::unique_ptr<Network>
    make()
    {
        return std::make_unique<Network>(sim, params, "noc");
    }

    Packet
    pkt(NodeId src, NodeId dst, std::uint32_t bytes,
        PacketKind kind = PacketKind::Control)
    {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.payloadBytes = bytes;
        p.kind = kind;
        return p;
    }
};

} // namespace

TEST_F(NetFixture, TopologyHelpers)
{
    auto net = make();
    EXPECT_EQ(net->numCores(), 16u);
    EXPECT_EQ(net->subRingOf(0), 0u);
    EXPECT_EQ(net->subRingOf(5), 1u);
    EXPECT_EQ(net->subStopOf(5), 1u);
    EXPECT_EQ(net->subRingOf(15), 3u);
}

TEST_F(NetFixture, CoreToCoreSameSubRing)
{
    auto net = make();
    bool delivered = false;
    net->setEndpointHandler(NodeId{NodeKind::Core, 2},
                            [&](Packet &&) { delivered = true; });
    net->send(pkt(NodeId{NodeKind::Core, 0},
                  NodeId{NodeKind::Core, 2}, 8));
    sim.run(100);
    EXPECT_TRUE(delivered);
    // Same sub-ring: no gateway crossing.
    EXPECT_EQ(net->packetsDelivered(), 1u);
}

TEST_F(NetFixture, CoreToCoreAcrossSubRings)
{
    auto net = make();
    Cycle arrive = 0;
    net->setEndpointHandler(NodeId{NodeKind::Core, 13},
                            [&](Packet &&) { arrive = sim.now(); });
    net->send(pkt(NodeId{NodeKind::Core, 0},
                  NodeId{NodeKind::Core, 13}, 8));
    sim.run(500);
    EXPECT_GT(arrive, 0u);
}

TEST_F(NetFixture, CrossRingSlowerThanLocal)
{
    auto net = make();
    Cycle local = 0, remote = 0;
    net->setEndpointHandler(NodeId{NodeKind::Core, 1},
                            [&](Packet &&) { local = sim.now(); });
    net->setEndpointHandler(NodeId{NodeKind::Core, 9},
                            [&](Packet &&) { remote = sim.now(); });
    net->send(pkt(NodeId{NodeKind::Core, 0},
                  NodeId{NodeKind::Core, 1}, 8));
    net->send(pkt(NodeId{NodeKind::Core, 0},
                  NodeId{NodeKind::Core, 9}, 8));
    sim.run(500);
    EXPECT_GT(remote, local);
}

TEST_F(NetFixture, CoreToMemCtrlAndBack)
{
    auto net = make();
    bool req_at_mc = false, resp_at_core = false;
    net->setEndpointHandler(NodeId{NodeKind::MemCtrl, 1},
                            [&](Packet &&p) {
        req_at_mc = true;
        // Bounce a response.
        Packet resp;
        resp.src = NodeId{NodeKind::MemCtrl, 1};
        resp.dst = p.src;
        resp.payloadBytes = 72;
        resp.kind = PacketKind::MemReadResp;
        net->send(std::move(resp));
    });
    net->setEndpointHandler(NodeId{NodeKind::Core, 6},
                            [&](Packet &&) { resp_at_core = true; });
    net->send(pkt(NodeId{NodeKind::Core, 6},
                  NodeId{NodeKind::MemCtrl, 1}, 12,
                  PacketKind::MemReadReq));
    sim.run(1000);
    EXPECT_TRUE(req_at_mc);
    EXPECT_TRUE(resp_at_core);
}

TEST_F(NetFixture, GatewayInterceptorConsumesOutbound)
{
    auto net = make();
    int intercepted = 0;
    bool reached_mc = false;
    net->setGatewayInterceptor(0, [&](Packet &pkt) {
        if (pkt.kind == PacketKind::MemReadReq) {
            ++intercepted;
            return true; // consumed (MACT collected it)
        }
        return false;
    });
    net->setEndpointHandler(NodeId{NodeKind::MemCtrl, 0},
                            [&](Packet &&) { reached_mc = true; });
    net->send(pkt(NodeId{NodeKind::Core, 0},
                  NodeId{NodeKind::MemCtrl, 0}, 12,
                  PacketKind::MemReadReq));
    sim.run(500);
    EXPECT_EQ(intercepted, 1);
    EXPECT_FALSE(reached_mc);
}

TEST_F(NetFixture, InterceptorPassThroughContinues)
{
    auto net = make();
    bool reached_mc = false;
    net->setGatewayInterceptor(0, [](Packet &) { return false; });
    net->setEndpointHandler(NodeId{NodeKind::MemCtrl, 0},
                            [&](Packet &&) { reached_mc = true; });
    net->send(pkt(NodeId{NodeKind::Core, 0},
                  NodeId{NodeKind::MemCtrl, 0}, 12,
                  PacketKind::MemReadReq));
    sim.run(500);
    EXPECT_TRUE(reached_mc);
}

TEST_F(NetFixture, GatewayEndpointReceivesControl)
{
    auto net = make();
    bool got = false;
    net->setEndpointHandler(NodeId{NodeKind::Gateway, 2},
                            [&](Packet &&p) {
        got = p.kind == PacketKind::Control;
    });
    net->send(pkt(NodeId{NodeKind::Io, 0},
                  NodeId{NodeKind::Gateway, 2}, 32));
    sim.run(500);
    EXPECT_TRUE(got);
}

TEST_F(NetFixture, OnDeliverFallbackWhenNoHandler)
{
    auto net = make();
    bool fired = false;
    Packet p = pkt(NodeId{NodeKind::Core, 0},
                   NodeId{NodeKind::Core, 3}, 8);
    p.onDeliver = [&] { fired = true; };
    net->send(std::move(p));
    sim.run(100);
    EXPECT_TRUE(fired);
}

TEST_F(NetFixture, ManyPacketsAllDelivered)
{
    auto net = make();
    int delivered = 0;
    for (std::uint32_t c = 0; c < 16; ++c)
        net->setEndpointHandler(NodeId{NodeKind::Core, c},
                                [&](Packet &&) { ++delivered; });
    const int per_core = 20;
    for (std::uint32_t c = 0; c < 16; ++c) {
        for (int i = 0; i < per_core; ++i) {
            net->send(pkt(NodeId{NodeKind::Core, c},
                          NodeId{NodeKind::Core, (c + 5) % 16}, 8));
        }
    }
    sim.run(20000);
    EXPECT_EQ(delivered, 16 * per_core);
}

TEST_F(NetFixture, FullInjectQueueRetriesUntilDelivered)
{
    // A single-slot inject queue bounces a same-cycle burst; the
    // endpoint-side buffer model must retry every bounced packet
    // until it lands — congestion shows up as injectRejected counts
    // and latency, never as loss.
    params.injectQueueCap = 1;
    auto net = make();
    int delivered = 0;
    net->setEndpointHandler(NodeId{NodeKind::Core, 3},
                            [&](Packet &&) { ++delivered; });
    const int burst = 32;
    for (int i = 0; i < burst; ++i)
        net->send(pkt(NodeId{NodeKind::Core, 0},
                      NodeId{NodeKind::Core, 3}, 32));
    sim.run(20000);
    EXPECT_EQ(delivered, burst);
    EXPECT_GT(net->injectRejected(), 0u);
}

TEST_F(NetFixture, UtilisationGrowsWithTraffic)
{
    auto net = make();
    net->setEndpointHandler(NodeId{NodeKind::Core, 9},
                            [](Packet &&) {});
    for (int i = 0; i < 50; ++i)
        net->send(pkt(NodeId{NodeKind::Core, 0},
                      NodeId{NodeKind::Core, 9}, 32));
    sim.run(200);
    EXPECT_GT(net->utilisation(sim.now()), 0.0);
}

TEST(DirectPath, FixedLatencyTransfer)
{
    Simulator sim;
    DirectPathParams p;
    p.numSubRings = 4;
    p.linkLatency = 6;
    p.bytesPerCycle = 8.0;
    DirectPath path(sim, p, "direct");
    Cycle done_at = 0;
    path.transfer(0, 16, 0, [&] { done_at = sim.now(); });
    sim.run(100);
    EXPECT_EQ(done_at, 8u); // 6 + ceil(16/8)
}

TEST(DirectPath, PerSubRingChannelsIndependent)
{
    Simulator sim;
    DirectPathParams p;
    p.numSubRings = 2;
    DirectPath path(sim, p, "direct");
    Cycle a = 0, b = 0;
    path.transfer(0, 64, 0, [&] { a = sim.now(); });
    path.transfer(1, 64, 0, [&] { b = sim.now(); });
    sim.run(100);
    EXPECT_EQ(a, b); // no interference between star links
}

TEST(DirectPath, SerialisationQueuesOnOneLink)
{
    Simulator sim;
    DirectPathParams p;
    p.numSubRings = 1;
    DirectPath path(sim, p, "direct");
    Cycle first = 0, second = 0;
    path.transfer(0, 64, 0, [&] { first = sim.now(); });
    path.transfer(0, 64, 0, [&] { second = sim.now(); });
    sim.run(100);
    EXPECT_GT(second, first);
}
