/**
 * @file
 * Tests for the observability layer: JSON stats export, Chrome-trace
 * event emission, interval sampling, and the logging cycle prefix.
 *
 * The trace and stats outputs are validated by parsing them back with
 * a small self-contained JSON parser, so a formatting regression that
 * chrome://tracing or jq would reject fails here first.
 */
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/logging.hpp"
#include "sim/sampler.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace smarco {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, bools,
// null). Enough to round-trip everything the simulator emits.

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue &at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string &key) const
    { return fields.count(key) != 0; }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != s_.size())
            throw std::runtime_error("trailing characters");
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            throw std::runtime_error("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at " + std::to_string(pos_));
        ++pos_;
    }

    JsonValue value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return word("true", true);
          case 'f': return word("false", false);
          case 'n': return word("null", false);
          default:  return number();
        }
    }

    JsonValue word(const char *w, bool b)
    {
        const std::size_t n = std::string(w).size();
        if (s_.compare(pos_, n, w) != 0)
            throw std::runtime_error("bad literal");
        pos_ += n;
        JsonValue v;
        v.kind = w[0] == 'n' ? JsonValue::Kind::Null
                             : JsonValue::Kind::Bool;
        v.boolean = b;
        return v;
    }

    JsonValue string()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    throw std::runtime_error("bad escape");
                char e = s_[pos_++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case '"': case '\\': case '/': c = e; break;
                  case 'u':
                    if (pos_ + 4 > s_.size())
                        throw std::runtime_error("bad \\u escape");
                    pos_ += 4;
                    c = '?';
                    break;
                  default:
                    throw std::runtime_error("bad escape");
                }
            }
            v.text.push_back(c);
        }
        expect('"');
        return v;
    }

    JsonValue number()
    {
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            throw std::runtime_error("bad number at " +
                                     std::to_string(pos_));
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(s_.substr(start, pos_ - start));
        return v;
    }

    JsonValue array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') { ++pos_; return v; }
        for (;;) {
            v.items.push_back(value());
            if (peek() == ',') { ++pos_; continue; }
            expect(']');
            return v;
        }
    }

    JsonValue object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') { ++pos_; return v; }
        for (;;) {
            JsonValue key = string();
            expect(':');
            v.fields.emplace(key.text, value());
            if (peek() == ',') { ++pos_; continue; }
            expect('}');
            return v;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

JsonValue parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

// ---------------------------------------------------------------------
// Stats JSON export

TEST(StatsJson, RoundTripAllKinds)
{
    StatRegistry reg;
    Scalar counter(reg, "a.counter", "a counter");
    counter += 41.0;
    ++counter;
    Average avg(reg, "a.avg", "an average");
    avg.sample(2.0);
    avg.sample(4.0);
    Histogram hist(reg, "a.hist", "a histogram", 0.0, 10.0, 5);
    hist.sample(1.0);
    hist.sample(3.0, 2);
    hist.sample(100.0); // saturates into the top bucket

    std::ostringstream os;
    reg.dumpJson(os);
    const JsonValue doc = parseJson(os.str());
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    ASSERT_EQ(doc.fields.size(), 3u);

    const JsonValue &c = doc.at("a.counter");
    EXPECT_EQ(c.at("kind").text, "scalar");
    EXPECT_DOUBLE_EQ(c.at("value").number, 42.0);
    EXPECT_EQ(c.at("desc").text, "a counter");

    const JsonValue &a = doc.at("a.avg");
    EXPECT_EQ(a.at("kind").text, "average");
    EXPECT_DOUBLE_EQ(a.at("value").number, 3.0);
    EXPECT_DOUBLE_EQ(a.at("sum").number, 6.0);
    EXPECT_DOUBLE_EQ(a.at("count").number, 2.0);

    const JsonValue &h = doc.at("a.hist");
    EXPECT_EQ(h.at("kind").text, "histogram");
    EXPECT_DOUBLE_EQ(h.at("value").number, hist.value());
    EXPECT_DOUBLE_EQ(h.at("count").number, 4.0);
    EXPECT_DOUBLE_EQ(h.at("min").number, 1.0);
    EXPECT_DOUBLE_EQ(h.at("max").number, 100.0);
    EXPECT_DOUBLE_EQ(h.at("lo").number, 0.0);
    EXPECT_DOUBLE_EQ(h.at("hi").number, 10.0);
    EXPECT_DOUBLE_EQ(h.at("bucketWidth").number, 2.0);
    ASSERT_EQ(h.at("buckets").items.size(), 5u);
    EXPECT_DOUBLE_EQ(h.at("buckets").items[0].number, 1.0);
    EXPECT_DOUBLE_EQ(h.at("buckets").items[1].number, 2.0);
    EXPECT_DOUBLE_EQ(h.at("buckets").items[4].number, 1.0);
}

TEST(StatsJson, EscapesSpecialCharacters)
{
    StatRegistry reg;
    Scalar s(reg, "weird", "quote \" backslash \\ newline \n done");
    std::ostringstream os;
    reg.dumpJson(os);
    const JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("weird").at("desc").text,
              "quote \" backslash \\ newline \n done");
}

TEST(StatsJson, NonFiniteValuesBecomeNull)
{
    StatRegistry reg;
    Scalar s(reg, "inf", "an infinity");
    s.set(INFINITY);
    std::ostringstream os;
    reg.dumpJson(os);
    const JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("inf").at("value").kind, JsonValue::Kind::Null);
}

TEST(StatsRegistry, TypedLookupAndTotals)
{
    StatRegistry reg;
    Scalar s0(reg, "chip.core000.slotsUsed", "");
    Scalar s1(reg, "chip.core001.slotsUsed", "");
    Scalar other(reg, "chip.core000.slotsOffered", "");
    Average a(reg, "chip.core000.lat", "");
    s0 += 10.0;
    s1 += 5.0;
    other += 100.0;

    EXPECT_DOUBLE_EQ(reg.total("chip.core", ".slotsUsed"), 15.0);
    EXPECT_DOUBLE_EQ(reg.total("chip.core", ".slotsOffered"), 100.0);
    EXPECT_DOUBLE_EQ(reg.total("chip.core", ".missing"), 0.0);
    EXPECT_DOUBLE_EQ(reg.total("nothing", ".slotsUsed"), 0.0);

    EXPECT_EQ(reg.findAs<Scalar>("chip.core000.slotsUsed"), &s0);
    EXPECT_EQ(reg.findAs<Average>("chip.core000.slotsUsed"), nullptr);
    EXPECT_EQ(reg.findAs<Scalar>("no.such.stat"), nullptr);
    EXPECT_DOUBLE_EQ(reg.getAs<Average>("chip.core000.lat").value(),
                     0.0);
}

// ---------------------------------------------------------------------
// Histogram weight semantics

TEST(Histogram, ZeroWeightIsANoOp)
{
    StatRegistry reg;
    Histogram h(reg, "h", "", 0.0, 10.0, 4);
    h.sample(7.0, 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.value(), 0.0);
    for (std::uint64_t b : h.buckets())
        EXPECT_EQ(b, 0u);

    // The zero-weight sample must not have primed min/max either.
    h.sample(3.0);
    EXPECT_DOUBLE_EQ(h.minSample(), 3.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 3.0);
}

TEST(Histogram, WeightsAreFrequencyWeights)
{
    StatRegistry reg;
    Histogram weighted(reg, "w", "", 0.0, 10.0, 4);
    Histogram repeated(reg, "r", "", 0.0, 10.0, 4);
    weighted.sample(2.0, 3);
    weighted.sample(8.0, 1);
    for (int i = 0; i < 3; ++i)
        repeated.sample(2.0);
    repeated.sample(8.0);
    EXPECT_EQ(weighted.count(), repeated.count());
    EXPECT_DOUBLE_EQ(weighted.value(), repeated.value());
    EXPECT_DOUBLE_EQ(weighted.stddev(), repeated.stddev());
    EXPECT_EQ(weighted.buckets(), repeated.buckets());
}

// ---------------------------------------------------------------------
// Trace emission

TEST(Trace, ProducesValidChromeTraceJson)
{
    std::ostringstream os;
    {
        TraceSink sink(os);
        TraceManager tm;
        tm.enable(&sink, kAllTraceCats, 7);
        tm.labelRun("run 7");
        tm.complete(TraceCat::Core, "kernel", 100, 250, 3,
                    "{\"ops\":12}");
        tm.instant(TraceCat::Noc, "inject", 120, 1);
        tm.counter(TraceCat::Sim, "ipc", 200, 1.5);
        EXPECT_EQ(sink.eventCount(), 4u);
    }

    const JsonValue doc = parseJson(os.str());
    ASSERT_TRUE(doc.has("traceEvents"));
    const auto &events = doc.at("traceEvents").items;
    ASSERT_EQ(events.size(), 4u);

    const JsonValue &meta = events[0];
    EXPECT_EQ(meta.at("ph").text, "M");
    EXPECT_EQ(meta.at("name").text, "process_name");
    EXPECT_DOUBLE_EQ(meta.at("pid").number, 7.0);
    EXPECT_EQ(meta.at("args").at("name").text, "run 7");

    const JsonValue &span = events[1];
    EXPECT_EQ(span.at("ph").text, "X");
    EXPECT_EQ(span.at("name").text, "kernel");
    EXPECT_EQ(span.at("cat").text, "core");
    EXPECT_DOUBLE_EQ(span.at("ts").number, 100.0);
    EXPECT_DOUBLE_EQ(span.at("dur").number, 150.0);
    EXPECT_DOUBLE_EQ(span.at("tid").number, 3.0);
    EXPECT_DOUBLE_EQ(span.at("args").at("ops").number, 12.0);

    const JsonValue &inst = events[2];
    EXPECT_EQ(inst.at("ph").text, "i");
    EXPECT_EQ(inst.at("cat").text, "noc");
    EXPECT_DOUBLE_EQ(inst.at("ts").number, 120.0);

    const JsonValue &ctr = events[3];
    EXPECT_EQ(ctr.at("ph").text, "C");
    EXPECT_EQ(ctr.at("cat").text, "sim");
    EXPECT_DOUBLE_EQ(ctr.at("args").at("value").number, 1.5);
}

TEST(Trace, CategoryMaskFiltersEvents)
{
    std::ostringstream os;
    {
        TraceSink sink(os);
        TraceManager tm;
        tm.enable(&sink, static_cast<std::uint32_t>(TraceCat::Noc), 1);
        EXPECT_TRUE(tm.enabled());
        EXPECT_TRUE(tm.enabled(TraceCat::Noc));
        EXPECT_FALSE(tm.enabled(TraceCat::Core));
        tm.instant(TraceCat::Core, "dropped", 1);
        tm.instant(TraceCat::Noc, "kept", 2);
        tm.complete(TraceCat::Sched, "dropped", 0, 5);
        EXPECT_EQ(sink.eventCount(), 1u);
    }
    const JsonValue doc = parseJson(os.str());
    ASSERT_EQ(doc.at("traceEvents").items.size(), 1u);
    EXPECT_EQ(doc.at("traceEvents").items[0].at("name").text, "kept");
}

TEST(Trace, DisabledManagerEmitsNothing)
{
    TraceManager tm;
    EXPECT_FALSE(tm.enabled());
    // Must be safe with no sink attached.
    tm.complete(TraceCat::Core, "x", 0, 10);
    tm.instant(TraceCat::Mem, "y", 5);
    tm.counter(TraceCat::Sim, "z", 5, 1.0);
}

TEST(Trace, EmptySinkIsStillValidJson)
{
    std::ostringstream os;
    { TraceSink sink(os); }
    const JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("traceEvents").items.size(), 0u);
    EXPECT_TRUE(doc.has("displayTimeUnit"));
}

TEST(Trace, DisabledSimulationAddsZeroEvents)
{
    // A full simulator run with no observability configured must not
    // touch any sink (there is none) and keeps tracing disabled.
    Simulator sim;
    EXPECT_FALSE(sim.trace().enabled());
    EXPECT_EQ(sim.obsRunId(), 0u);
    bool fired = false;
    sim.events().schedule(50, [&fired]() { fired = true; });
    sim.run(1000);
    EXPECT_TRUE(fired);
    EXPECT_TRUE(sim.finishedIdle());
    EXPECT_FALSE(sim.trace().enabled());
}

TEST(Trace, CategoryParsing)
{
    EXPECT_EQ(parseTraceCategories(""), kAllTraceCats);
    EXPECT_EQ(parseTraceCategories("all"), kAllTraceCats);
    EXPECT_EQ(parseTraceCategories("core"),
              static_cast<std::uint32_t>(TraceCat::Core));
    EXPECT_EQ(parseTraceCategories("core,noc"),
              static_cast<std::uint32_t>(TraceCat::Core) |
                  static_cast<std::uint32_t>(TraceCat::Noc));
    EXPECT_EQ(parseTraceCategories("mem,sched,runtime,sim,fault"),
              kAllTraceCats &
                  ~(static_cast<std::uint32_t>(TraceCat::Core) |
                    static_cast<std::uint32_t>(TraceCat::Noc)));
    EXPECT_EQ(parseTraceCategories("fault"),
              static_cast<std::uint32_t>(TraceCat::Fault));
    // Unknown names warn and are ignored.
    EXPECT_EQ(parseTraceCategories("core,bogus"),
              static_cast<std::uint32_t>(TraceCat::Core));
}

// ---------------------------------------------------------------------
// Interval sampler

TEST(Sampler, FiresAtExactBoundaries)
{
    IntervalSampler s;
    s.setInterval(10);
    int calls = 0;
    s.addProbe("calls", [&calls]() {
        return static_cast<double>(++calls);
    });
    ASSERT_TRUE(s.active());
    for (Cycle now = 1; now <= 35; ++now)
        s.maybeSample(now);
    const std::vector<Cycle> expected{10, 20, 30};
    EXPECT_EQ(s.times(), expected);
    ASSERT_EQ(s.rows().size(), 3u);
    EXPECT_DOUBLE_EQ(s.rows()[2][0], 3.0);
}

TEST(Sampler, SkippedBoundariesSampleOnceAndRealign)
{
    // Event-driven runs can jump the clock past several boundaries;
    // the sampler takes one sample and realigns to the grid.
    IntervalSampler s;
    s.setInterval(10);
    s.addProbe("one", []() { return 1.0; });
    s.maybeSample(5);
    s.maybeSample(47); // skipped 10,20,30,40
    s.maybeSample(50);
    const std::vector<Cycle> expected{47, 50};
    EXPECT_EQ(s.times(), expected);
}

TEST(Sampler, InactiveWithoutIntervalOrProbes)
{
    IntervalSampler s;
    EXPECT_FALSE(s.active());
    s.maybeSample(100); // no interval: no-op
    s.setInterval(5);
    EXPECT_FALSE(s.active()); // no probes yet
    s.maybeSample(100);
    EXPECT_TRUE(s.times().empty());
}

TEST(Sampler, DumpsParseableJsonAndCsv)
{
    IntervalSampler s;
    s.setInterval(4);
    double v = 0.0;
    s.addProbe("ipc", [&v]() { return v += 0.5; });
    s.addProbe("depth", []() { return 7.0; });
    for (Cycle now = 1; now <= 8; ++now)
        s.maybeSample(now);

    std::ostringstream js;
    s.dumpJson(js);
    const JsonValue doc = parseJson(js.str());
    EXPECT_DOUBLE_EQ(doc.at("interval").number, 4.0);
    ASSERT_EQ(doc.at("probes").items.size(), 2u);
    EXPECT_EQ(doc.at("probes").items[0].text, "ipc");
    ASSERT_EQ(doc.at("samples").items.size(), 2u);
    const auto &row0 = doc.at("samples").items[0].items;
    ASSERT_EQ(row0.size(), 3u);
    EXPECT_DOUBLE_EQ(row0[0].number, 4.0);
    EXPECT_DOUBLE_EQ(row0[1].number, 0.5);
    EXPECT_DOUBLE_EQ(row0[2].number, 7.0);

    std::ostringstream cs;
    s.dumpCsv(cs);
    EXPECT_EQ(cs.str(), "cycle,ipc,depth\n4,0.5,7\n8,1,7\n");
}

/** Stays busy until its tick reaches the given cycle, forcing the
 *  run loop to advance cycle by cycle instead of fast-forwarding. */
class BusyUntil : public Ticking
{
  public:
    explicit BusyUntil(Cycle until) : until_(until) {}
    void tick(Cycle now) override { last_ = now; }
    bool busy() const override { return last_ < until_; }

  private:
    Cycle until_;
    Cycle last_ = 0;
};

TEST(Sampler, DrivenByTheSimulatorRunLoop)
{
    Simulator sim;
    BusyUntil work(35);
    sim.addTicking(&work);
    sim.sampler().setInterval(10);
    std::vector<Cycle> seen;
    sim.sampler().addProbe("now", [&]() {
        seen.push_back(sim.now());
        return static_cast<double>(sim.now());
    });
    sim.run(1000);
    EXPECT_TRUE(sim.finishedIdle());
    const std::vector<Cycle> expected{10, 20, 30};
    EXPECT_EQ(sim.sampler().times(), expected);
    EXPECT_EQ(seen, expected);
}

TEST(Sampler, MirrorsSamplesAsTraceCounters)
{
    std::ostringstream os;
    {
        TraceSink sink(os);
        TraceManager tm;
        tm.enable(&sink, kAllTraceCats, 1);
        IntervalSampler s;
        s.setTrace(&tm);
        s.setInterval(5);
        s.addProbe("q", []() { return 2.0; });
        s.maybeSample(5);
        EXPECT_EQ(sink.eventCount(), 1u);
    }
    const JsonValue doc = parseJson(os.str());
    const JsonValue &ev = doc.at("traceEvents").items[0];
    EXPECT_EQ(ev.at("ph").text, "C");
    EXPECT_EQ(ev.at("name").text, "q");
    EXPECT_EQ(ev.at("cat").text, "sim");
    EXPECT_DOUBLE_EQ(ev.at("args").at("value").number, 2.0);
}

// ---------------------------------------------------------------------
// Logging cycle prefix

TEST(Logging, SimulatorInstallsAndRestoresCycleSource)
{
    const Cycle *before = logCycleSource();
    {
        Simulator sim;
        EXPECT_NE(logCycleSource(), nullptr);
        EXPECT_NE(logCycleSource(), before);
        {
            Simulator inner;
            EXPECT_NE(logCycleSource(), nullptr);
        }
        // Inner simulator restored the outer one's source.
        EXPECT_NE(logCycleSource(), nullptr);
        sim.events().schedule(12, []() {});
        sim.run(100);
        EXPECT_EQ(*logCycleSource(), sim.now());
    }
    EXPECT_EQ(logCycleSource(), before);
}

} // namespace
} // namespace smarco
