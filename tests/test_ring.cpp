/**
 * @file
 * Unit tests of the bidirectional high-density ring (Sections 3.2-3.3).
 */
#include <gtest/gtest.h>

#include <vector>

#include "noc/ring.hpp"
#include "sim/simulator.hpp"

using namespace smarco;
using namespace smarco::noc;

namespace {

struct RingFixture : ::testing::Test {
    Simulator sim;
    RingParams params;

    RingFixture()
    {
        params.name = "testRing";
        params.numStops = 8;
        params.fixedBytesPerDir = 8;
        params.flexBytes = 16;
        params.sliceBytes = 2;
    }

    std::unique_ptr<Ring>
    make()
    {
        return std::make_unique<Ring>(sim, params, "ring");
    }

    Packet
    pkt(std::uint32_t bytes, bool priority = false)
    {
        Packet p;
        p.payloadBytes = bytes;
        p.priority = priority;
        p.created = sim.now();
        return p;
    }
};

} // namespace

TEST_F(RingFixture, DistanceBothDirections)
{
    auto ring = make();
    EXPECT_EQ(ring->distance(0, 3, 0), 3u);
    EXPECT_EQ(ring->distance(0, 3, 1), 5u);
    EXPECT_EQ(ring->distance(7, 0, 0), 1u);
    EXPECT_EQ(ring->distance(2, 2, 0), 0u);
}

TEST_F(RingFixture, DeliversToHandler)
{
    auto ring = make();
    int delivered = 0;
    ring->setHandler(3, [&](Packet &&) { ++delivered; });
    ASSERT_TRUE(ring->inject(0, 3, pkt(8)));
    sim.run(100);
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(ring->packetsDelivered(), 1u);
    EXPECT_EQ(ring->inFlight(), 0u);
}

TEST_F(RingFixture, LatencyScalesWithHops)
{
    auto ring = make();
    Cycle t1 = 0, t3 = 0;
    ring->setHandler(1, [&](Packet &&) { t1 = sim.now(); });
    ring->setHandler(3, [&](Packet &&) { t3 = sim.now(); });
    ring->inject(0, 1, pkt(8));
    ring->inject(0, 3, pkt(8));
    sim.run(100);
    EXPECT_GT(t3, t1);
}

TEST_F(RingFixture, ShortestDirectionChosen)
{
    // A packet from 0 to 7 should go counter-clockwise (1 hop), so it
    // arrives quickly even though clockwise would take 7 hops.
    auto ring = make();
    Cycle arrive = 0;
    ring->setHandler(7, [&](Packet &&) { arrive = sim.now(); });
    ring->inject(0, 7, pkt(8));
    sim.run(100);
    EXPECT_LE(arrive, 5u);
}

TEST_F(RingFixture, HighDensityPacksSmallPacketsPerCycle)
{
    // With 2-byte slices, several small packets share one cycle's
    // link bytes; with conventional wide links (slice = 0) each
    // packet burns a full cycle.
    std::uint64_t hd_cycles = 0, conv_cycles = 0;
    for (int mode = 0; mode < 2; ++mode) {
        Simulator s;
        RingParams p = params;
        p.sliceBytes = mode == 0 ? 2 : 0;
        Ring ring(s, p, mode == 0 ? "hd" : "conv");
        int remaining = 32;
        ring.setHandler(1, [&](Packet &&) { --remaining; });
        for (int i = 0; i < 32; ++i) {
            Packet q;
            q.payloadBytes = 2;
            ASSERT_TRUE(ring.inject(0, 1, std::move(q)));
        }
        s.run(1000);
        EXPECT_EQ(remaining, 0);
        (mode == 0 ? hd_cycles : conv_cycles) = s.now();
    }
    EXPECT_LT(hd_cycles * 2, conv_cycles);
}

TEST_F(RingFixture, LargePacketSerialisesOverMultipleCycles)
{
    auto ring = make();
    Cycle arrive = 0;
    ring->setHandler(1, [&](Packet &&) { arrive = sim.now(); });
    ring->inject(0, 1, pkt(256)); // 256B over a <=24B/cycle link
    sim.run(1000);
    // At least ceil(256/24) = 11 cycles of serialisation.
    EXPECT_GE(arrive, 11u);
}

TEST_F(RingFixture, PriorityPacketsJumpTheInjectionQueue)
{
    auto ring = make();
    std::vector<bool> order;
    ring->setHandler(4, [&](Packet &&p) { order.push_back(p.priority); });
    // Fill with big normal packets, then add one priority packet.
    for (int i = 0; i < 6; ++i)
        ring->inject(0, 4, pkt(64));
    ring->inject(0, 4, pkt(8, /*priority=*/true));
    sim.run(1000);
    ASSERT_EQ(order.size(), 7u);
    EXPECT_TRUE(order.front());
}

TEST_F(RingFixture, FlexDatapathsFollowLoad)
{
    // With all traffic flowing one way, throughput should exceed the
    // fixed per-direction bytes thanks to the bidirectional pool.
    auto ring = make();
    int remaining = 40;
    ring->setHandler(1, [&](Packet &&) { --remaining; });
    for (int i = 0; i < 40; ++i)
        ring->inject(0, 1, pkt(16));
    sim.run(1000);
    EXPECT_EQ(remaining, 0);
    // 40 x 16B = 640 B at 8 fixed B/cycle would need 80+ cycles; with
    // the flex pool (up to 24 B/cycle one-way) it finishes far sooner.
    EXPECT_LT(sim.now(), 60u);
}

TEST_F(RingFixture, BackpressureDoesNotDropPackets)
{
    params.stopQueueCap = 2;
    params.injectQueueCap = 4;
    auto ring = make();
    int delivered = 0;
    ring->setHandler(4, [&](Packet &&) { ++delivered; });
    int injected = 0;
    // Saturate: inject as many as the queue accepts over time.
    for (int round = 0; round < 50; ++round) {
        if (ring->inject(0, 4, pkt(24)))
            ++injected;
        sim.run(1);
    }
    sim.run(2000);
    EXPECT_GT(injected, 10);
    EXPECT_EQ(delivered, injected);
    EXPECT_EQ(ring->inFlight(), 0u);
}

TEST_F(RingFixture, SelfInjectionPanics)
{
    auto ring = make();
    EXPECT_DEATH(ring->inject(2, 2, pkt(8)), "self-injection");
}

TEST_F(RingFixture, UtilisationBetweenZeroAndOne)
{
    auto ring = make();
    ring->setHandler(2, [](Packet &&) {});
    for (int i = 0; i < 10; ++i)
        ring->inject(0, 2, pkt(16));
    sim.run(100);
    const double u = ring->utilisation(sim.now());
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
}

TEST_F(RingFixture, ManyToManyTrafficAllDelivered)
{
    auto ring = make();
    int delivered = 0;
    for (std::uint32_t s = 0; s < params.numStops; ++s)
        ring->setHandler(s, [&](Packet &&) { ++delivered; });
    int injected = 0;
    for (std::uint32_t s = 0; s < params.numStops; ++s) {
        for (std::uint32_t d = 0; d < params.numStops; ++d) {
            if (s == d)
                continue;
            if (ring->inject(s, d, pkt(6)))
                ++injected;
        }
    }
    sim.run(5000);
    EXPECT_EQ(delivered, injected);
    EXPECT_EQ(injected, int(params.numStops * (params.numStops - 1)));
}

// ---------------------------------------------------------------------
// Link fault model: drop -> NACK -> retransmit (see src/fault/).

TEST_F(RingFixture, DropNackRetransmitDeliversExactlyOnce)
{
    // Run the same single-packet route clean and with one armed drop;
    // the faulted delivery must arrive at least nackDelay later and
    // exactly once.
    Cycle clean_arrive = 0, fault_arrive = 0;
    for (int mode = 0; mode < 2; ++mode) {
        Simulator s;
        Ring ring(s, params, mode == 0 ? "clean" : "faulted");
        if (mode == 1) {
            RingFaultParams rf;
            rf.nackDelay = 12;
            ring.setFaults(rf);
            ring.armDrop(1);
        }
        int delivered = 0;
        Cycle arrive = 0;
        ring.setHandler(3, [&](Packet &&) {
            ++delivered;
            arrive = s.now();
        });
        Packet q;
        q.payloadBytes = 8;
        q.id = 7;
        ASSERT_TRUE(ring.inject(0, 3, std::move(q)));
        s.run(500);
        EXPECT_EQ(delivered, 1);
        if (mode == 0) {
            clean_arrive = arrive;
            EXPECT_EQ(ring.faultDrops(), 0u);
        } else {
            fault_arrive = arrive;
            EXPECT_EQ(ring.faultDrops(), 1u);
            EXPECT_EQ(ring.retransmits(), 1u);
            EXPECT_EQ(ring.inFlight(), 0u);
        }
    }
    EXPECT_GE(fault_arrive, clean_arrive + 12);
}

TEST_F(RingFixture, DuplicateDeliveredOnceAndSuppressed)
{
    auto ring = make();
    ring->armDuplicate(1);
    int delivered = 0;
    ring->setHandler(5, [&](Packet &&) { ++delivered; });
    Packet q = pkt(8);
    q.id = 42;
    ASSERT_TRUE(ring->inject(0, 5, std::move(q)));
    sim.run(500);
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(ring->dupsSuppressed(), 1u);
    EXPECT_EQ(ring->inFlight(), 0u);
}

TEST_F(RingFixture, RetransmitPaysSlicedLinkBandwidth)
{
    // Drops happen at the end of a crossing (CRC fail at the
    // receiver), so the dropped crossing's wire bytes are spent. On a
    // one-hop route the faulted run must burn exactly twice the
    // clean run's wire bytes: one wasted crossing + the retransmit.
    double clean_bytes = 0.0, fault_bytes = 0.0;
    for (int mode = 0; mode < 2; ++mode) {
        Simulator s;
        Ring ring(s, params, "r");
        if (mode == 1)
            ring.armDrop(1);
        int delivered = 0;
        ring.setHandler(1, [&](Packet &&) { ++delivered; });
        Packet q;
        q.payloadBytes = 8;
        q.id = 9;
        ASSERT_TRUE(ring.inject(0, 1, std::move(q)));
        s.run(500);
        EXPECT_EQ(delivered, 1);
        (mode == 0 ? clean_bytes : fault_bytes) =
            s.stats().get("r.wireBytesUsed").value();
    }
    EXPECT_GT(clean_bytes, 0.0);
    EXPECT_EQ(fault_bytes, 2.0 * clean_bytes);
}

TEST_F(RingFixture, MaxRetransmitsProtectsDelivery)
{
    // A packet that has been retransmitted maxRetransmits times is
    // protected from further drops, so even an absurd standing drop
    // arm cannot livelock it.
    auto ring = make();
    RingFaultParams rf;
    rf.nackDelay = 4;
    rf.maxRetransmits = 3;
    ring->setFaults(rf);
    ring->armDrop(1000);
    int delivered = 0;
    ring->setHandler(2, [&](Packet &&) { ++delivered; });
    Packet q = pkt(8);
    q.id = 11;
    ASSERT_TRUE(ring->inject(0, 2, std::move(q)));
    sim.run(5000);
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(ring->inFlight(), 0u);
    EXPECT_LE(ring->faultDrops(), 3u * 2u); // <= retries x hops
}

TEST_F(RingFixture, DegradedLinkSlowsThenRecovers)
{
    // Degrading the (0, dir 0) link to a tiny fraction during the
    // window slows a transfer; after the window the same transfer
    // runs at full speed again.
    auto ring = make();
    ring->degradeLink(0, 0, 0.05, 200);
    Cycle first = 0, second = 0;
    int phase = 0;
    ring->setHandler(1, [&](Packet &&) {
        (phase == 0 ? first : second) = sim.now();
    });
    ring->inject(0, 1, pkt(64));
    // The second inject is scheduled past the degrade window (the run
    // would otherwise go idle and stop before cycle 200).
    const Cycle start2 = 300;
    Ring *r = ring.get();
    Simulator *s = &sim;
    sim.events().schedule(start2, [r, s, &phase] {
        phase = 1;
        Packet q;
        q.payloadBytes = 64;
        q.priority = false;
        q.created = s->now();
        r->inject(0, 1, std::move(q));
    });
    sim.run(1000);
    ASSERT_GT(first, 0u);
    ASSERT_GT(second, start2);
    EXPECT_LT(second - start2, first);
}
