/**
 * @file
 * Unit tests of the bidirectional high-density ring (Sections 3.2-3.3).
 */
#include <gtest/gtest.h>

#include <vector>

#include "noc/ring.hpp"
#include "sim/simulator.hpp"

using namespace smarco;
using namespace smarco::noc;

namespace {

struct RingFixture : ::testing::Test {
    Simulator sim;
    RingParams params;

    RingFixture()
    {
        params.name = "testRing";
        params.numStops = 8;
        params.fixedBytesPerDir = 8;
        params.flexBytes = 16;
        params.sliceBytes = 2;
    }

    std::unique_ptr<Ring>
    make()
    {
        return std::make_unique<Ring>(sim, params, "ring");
    }

    Packet
    pkt(std::uint32_t bytes, bool priority = false)
    {
        Packet p;
        p.payloadBytes = bytes;
        p.priority = priority;
        p.created = sim.now();
        return p;
    }
};

} // namespace

TEST_F(RingFixture, DistanceBothDirections)
{
    auto ring = make();
    EXPECT_EQ(ring->distance(0, 3, 0), 3u);
    EXPECT_EQ(ring->distance(0, 3, 1), 5u);
    EXPECT_EQ(ring->distance(7, 0, 0), 1u);
    EXPECT_EQ(ring->distance(2, 2, 0), 0u);
}

TEST_F(RingFixture, DeliversToHandler)
{
    auto ring = make();
    int delivered = 0;
    ring->setHandler(3, [&](Packet &&) { ++delivered; });
    ASSERT_TRUE(ring->inject(0, 3, pkt(8)));
    sim.run(100);
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(ring->packetsDelivered(), 1u);
    EXPECT_EQ(ring->inFlight(), 0u);
}

TEST_F(RingFixture, LatencyScalesWithHops)
{
    auto ring = make();
    Cycle t1 = 0, t3 = 0;
    ring->setHandler(1, [&](Packet &&) { t1 = sim.now(); });
    ring->setHandler(3, [&](Packet &&) { t3 = sim.now(); });
    ring->inject(0, 1, pkt(8));
    ring->inject(0, 3, pkt(8));
    sim.run(100);
    EXPECT_GT(t3, t1);
}

TEST_F(RingFixture, ShortestDirectionChosen)
{
    // A packet from 0 to 7 should go counter-clockwise (1 hop), so it
    // arrives quickly even though clockwise would take 7 hops.
    auto ring = make();
    Cycle arrive = 0;
    ring->setHandler(7, [&](Packet &&) { arrive = sim.now(); });
    ring->inject(0, 7, pkt(8));
    sim.run(100);
    EXPECT_LE(arrive, 5u);
}

TEST_F(RingFixture, HighDensityPacksSmallPacketsPerCycle)
{
    // With 2-byte slices, several small packets share one cycle's
    // link bytes; with conventional wide links (slice = 0) each
    // packet burns a full cycle.
    std::uint64_t hd_cycles = 0, conv_cycles = 0;
    for (int mode = 0; mode < 2; ++mode) {
        Simulator s;
        RingParams p = params;
        p.sliceBytes = mode == 0 ? 2 : 0;
        Ring ring(s, p, mode == 0 ? "hd" : "conv");
        int remaining = 32;
        ring.setHandler(1, [&](Packet &&) { --remaining; });
        for (int i = 0; i < 32; ++i) {
            Packet q;
            q.payloadBytes = 2;
            ASSERT_TRUE(ring.inject(0, 1, std::move(q)));
        }
        s.run(1000);
        EXPECT_EQ(remaining, 0);
        (mode == 0 ? hd_cycles : conv_cycles) = s.now();
    }
    EXPECT_LT(hd_cycles * 2, conv_cycles);
}

TEST_F(RingFixture, LargePacketSerialisesOverMultipleCycles)
{
    auto ring = make();
    Cycle arrive = 0;
    ring->setHandler(1, [&](Packet &&) { arrive = sim.now(); });
    ring->inject(0, 1, pkt(256)); // 256B over a <=24B/cycle link
    sim.run(1000);
    // At least ceil(256/24) = 11 cycles of serialisation.
    EXPECT_GE(arrive, 11u);
}

TEST_F(RingFixture, PriorityPacketsJumpTheInjectionQueue)
{
    auto ring = make();
    std::vector<bool> order;
    ring->setHandler(4, [&](Packet &&p) { order.push_back(p.priority); });
    // Fill with big normal packets, then add one priority packet.
    for (int i = 0; i < 6; ++i)
        ring->inject(0, 4, pkt(64));
    ring->inject(0, 4, pkt(8, /*priority=*/true));
    sim.run(1000);
    ASSERT_EQ(order.size(), 7u);
    EXPECT_TRUE(order.front());
}

TEST_F(RingFixture, FlexDatapathsFollowLoad)
{
    // With all traffic flowing one way, throughput should exceed the
    // fixed per-direction bytes thanks to the bidirectional pool.
    auto ring = make();
    int remaining = 40;
    ring->setHandler(1, [&](Packet &&) { --remaining; });
    for (int i = 0; i < 40; ++i)
        ring->inject(0, 1, pkt(16));
    sim.run(1000);
    EXPECT_EQ(remaining, 0);
    // 40 x 16B = 640 B at 8 fixed B/cycle would need 80+ cycles; with
    // the flex pool (up to 24 B/cycle one-way) it finishes far sooner.
    EXPECT_LT(sim.now(), 60u);
}

TEST_F(RingFixture, BackpressureDoesNotDropPackets)
{
    params.stopQueueCap = 2;
    params.injectQueueCap = 4;
    auto ring = make();
    int delivered = 0;
    ring->setHandler(4, [&](Packet &&) { ++delivered; });
    int injected = 0;
    // Saturate: inject as many as the queue accepts over time.
    for (int round = 0; round < 50; ++round) {
        if (ring->inject(0, 4, pkt(24)))
            ++injected;
        sim.run(1);
    }
    sim.run(2000);
    EXPECT_GT(injected, 10);
    EXPECT_EQ(delivered, injected);
    EXPECT_EQ(ring->inFlight(), 0u);
}

TEST_F(RingFixture, SelfInjectionPanics)
{
    auto ring = make();
    EXPECT_DEATH(ring->inject(2, 2, pkt(8)), "self-injection");
}

TEST_F(RingFixture, UtilisationBetweenZeroAndOne)
{
    auto ring = make();
    ring->setHandler(2, [](Packet &&) {});
    for (int i = 0; i < 10; ++i)
        ring->inject(0, 2, pkt(16));
    sim.run(100);
    const double u = ring->utilisation(sim.now());
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
}

TEST_F(RingFixture, ManyToManyTrafficAllDelivered)
{
    auto ring = make();
    int delivered = 0;
    for (std::uint32_t s = 0; s < params.numStops; ++s)
        ring->setHandler(s, [&](Packet &&) { ++delivered; });
    int injected = 0;
    for (std::uint32_t s = 0; s < params.numStops; ++s) {
        for (std::uint32_t d = 0; d < params.numStops; ++d) {
            if (s == d)
                continue;
            if (ring->inject(s, d, pkt(6)))
                ++injected;
        }
    }
    sim.run(5000);
    EXPECT_EQ(delivered, injected);
    EXPECT_EQ(injected, int(params.numStops * (params.numStops - 1)));
}
