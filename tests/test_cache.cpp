/**
 * @file
 * Unit tests of the set-associative cache tag model.
 */
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "sim/stats.hpp"

using namespace smarco;
using namespace smarco::mem;

namespace {

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = 1024; // 4 sets x 4 ways x 64B
    p.assoc = 4;
    p.lineBytes = 64;
    return p;
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c");
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103F, false).hit); // same line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsOldest)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c");
    // 4-way set: fill one set (set stride = 4 sets * 64B = 256B).
    const Addr stride = 256;
    for (Addr i = 0; i < 4; ++i)
        c.access(0x1000 + i * stride, false);
    // Touch line 0 so line 1 becomes LRU.
    c.access(0x1000, false);
    // A 5th line in the same set evicts line 1 (the LRU), not line 0.
    c.access(0x1000 + 4 * stride, false);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x1000 + 1 * stride));
    EXPECT_TRUE(c.probe(0x1000 + 2 * stride));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c");
    const Addr stride = 256;
    c.access(0x2000, true); // dirty line
    for (Addr i = 1; i <= 3; ++i)
        c.access(0x2000 + i * stride, false);
    const auto res = c.access(0x2000 + 4 * stride, false);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.victimAddr, 0x2000u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c");
    const Addr stride = 256;
    for (Addr i = 0; i <= 4; ++i) {
        const auto res = c.access(0x2000 + i * stride, false);
        EXPECT_FALSE(res.writeback);
    }
}

TEST(Cache, WriteHitMarksDirty)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c");
    const Addr stride = 256;
    c.access(0x3000, false);       // clean fill
    c.access(0x3000, true);        // write hit -> dirty
    for (Addr i = 1; i <= 3; ++i)
        c.access(0x3000 + i * stride, false);
    const auto res = c.access(0x3000 + 4 * stride, false);
    EXPECT_TRUE(res.writeback);
}

TEST(Cache, FlushInvalidatesEverything)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c");
    c.access(0x4000, false);
    EXPECT_TRUE(c.probe(0x4000));
    c.flush();
    EXPECT_FALSE(c.probe(0x4000));
}

TEST(Cache, MissRatioTracksAccesses)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c");
    c.access(0x5000, false); // miss
    c.access(0x5000, false); // hit
    c.access(0x5000, false); // hit
    c.access(0x5040, false); // miss
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // A 60 MB 20-way LLC has 49152 sets; the model must accept it.
    StatRegistry reg;
    CacheParams p;
    p.name = "llc";
    p.sizeBytes = 60 * 1024 * 1024;
    p.assoc = 20;
    p.lineBytes = 64;
    Cache c(reg, p, "llc");
    EXPECT_FALSE(c.access(0x12345678, false).hit);
    EXPECT_TRUE(c.access(0x12345678, false).hit);
}

TEST(Cache, DistinctSetsDontConflict)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c");
    // 16 lines mapping to 4 different sets: all fit (4 ways each).
    for (Addr i = 0; i < 16; ++i)
        c.access(i * 64, false);
    for (Addr i = 0; i < 16; ++i)
        EXPECT_TRUE(c.probe(i * 64)) << i;
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    StatRegistry reg;
    Cache c(reg, smallCache(), "c"); // 1 KB cache
    // Cyclic scan of 4 KB: with LRU this always misses after warmup.
    for (int rep = 0; rep < 4; ++rep)
        for (Addr a = 0; a < 4096; a += 64)
            c.access(a, false);
    EXPECT_GT(c.missRatio(), 0.9);
}
