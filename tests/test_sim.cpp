/**
 * @file
 * Unit tests of the simulation kernel: event queue ordering, the
 * cycle-driven loop, idle fast-forward, statistics, and the
 * deterministic RNG / distributions.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

using namespace smarco;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runUntil(25);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    q.runUntil(30);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameCycleFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runUntil(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsScheduledDuringProcessingFire)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(1, [&] { ++fired; }); // same-cycle chain
    });
    const std::size_t n = q.runUntil(1);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NextEventCycleReportsHead)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), kNoCycle);
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextEventCycle(), 42u);
}

TEST(EventQueue, ScheduleAfterAddsDelay)
{
    EventQueue q;
    bool fired = false;
    q.scheduleAfter(100, 5, [&] { fired = true; });
    q.runUntil(104);
    EXPECT_FALSE(fired);
    q.runUntil(105);
    EXPECT_TRUE(fired);
}

namespace {

/** Ticking object that counts its ticks and goes idle after n. */
struct CountTicker : Ticking {
    explicit CountTicker(int n) : remaining(n) {}
    void
    tick(Cycle) override
    {
        if (remaining > 0)
            --remaining;
    }
    bool busy() const override { return remaining > 0; }
    int remaining;
};

} // namespace

TEST(Simulator, RunsTickingObjectsEachCycle)
{
    Simulator sim;
    CountTicker t(10);
    sim.addTicking(&t);
    sim.run(100);
    EXPECT_EQ(t.remaining, 0);
    EXPECT_TRUE(sim.finishedIdle());
}

TEST(Simulator, StopsAtMaxCycles)
{
    Simulator sim;
    CountTicker t(1000);
    sim.addTicking(&t);
    const Cycle end = sim.run(50);
    EXPECT_EQ(end, 50u);
    EXPECT_FALSE(sim.finishedIdle());
}

TEST(Simulator, IdleFastForwardsToNextEvent)
{
    Simulator sim;
    CountTicker t(1);
    sim.addTicking(&t);
    bool fired = false;
    sim.events().schedule(10000, [&] { fired = true; });
    sim.run(20000);
    EXPECT_TRUE(fired);
    EXPECT_TRUE(sim.finishedIdle());
    // The kernel must not have burned 20000 tick iterations; the
    // clock jumped. (Indirect check: now() is just past the event.)
    EXPECT_GE(sim.now(), 10000u);
    EXPECT_LE(sim.now(), 10002u);
}

TEST(Simulator, RequestStopEndsRun)
{
    Simulator sim;
    CountTicker t(1000000);
    sim.addTicking(&t);
    sim.events().schedule(7, [&] { sim.requestStop(); });
    const Cycle end = sim.run(1000000);
    EXPECT_LE(end, 8u);
}

namespace {

/**
 * Acts once every `period` cycles and sleeps in between via the
 * nextActiveCycle hint; ticks outside the boundary are no-ops.
 */
struct PeriodicTicker : Ticking {
    PeriodicTicker(Cycle period, int n) : period(period), actsLeft(n) {}
    void
    tick(Cycle now) override
    {
        ++ticks;
        if (actsLeft > 0 && now > 0 && now % period == 0) {
            --actsLeft;
            ++acts;
        }
    }
    bool busy() const override { return actsLeft > 0; }
    Cycle
    nextActiveCycle(Cycle now) const override
    {
        if (actsLeft == 0)
            return kNoCycle;
        return (now / period + 1) * period;
    }
    Cycle period;
    int actsLeft;
    std::uint64_t ticks = 0;
    int acts = 0;
};

/** Sleeps until an external wake(); then consumes one token per tick. */
struct WakeableTicker : Ticking {
    void
    tick(Cycle) override
    {
        ++ticks;
        if (tokens > 0)
            --tokens;
    }
    bool busy() const override { return tokens > 0; }
    Cycle
    nextActiveCycle(Cycle now) const override
    { return tokens > 0 ? now + 1 : kNoCycle; }
    int tokens = 0;
    std::uint64_t ticks = 0;
};

} // namespace

TEST(FastForward, SkipsQuiescentCyclesOnTimerHints)
{
    Simulator sim;
    PeriodicTicker t(100, 9);
    sim.addTicking(&t);
    const Cycle end = sim.run(100000);
    EXPECT_EQ(t.acts, 9);
    EXPECT_TRUE(sim.finishedIdle());
    EXPECT_EQ(end, 901u); // one idle cycle past the last act at 900
    // The kernel must have executed only the boundary cycles (plus
    // cycle 0 and the final idle check), not all 900.
    EXPECT_LE(t.ticks, 12u);
    EXPECT_GT(sim.cyclesSkipped(), 800u);
    EXPECT_GE(sim.fastForwards(), 9u);
}

TEST(FastForward, DisabledModeTicksEveryCycle)
{
    Simulator sim;
    sim.setFastForward(false);
    PeriodicTicker t(100, 9);
    sim.addTicking(&t);
    const Cycle end = sim.run(100000);
    EXPECT_EQ(t.acts, 9);
    EXPECT_EQ(end, 901u); // same simulated timeline as fast-forward
    EXPECT_EQ(t.ticks, 901u);
    EXPECT_EQ(sim.cyclesSkipped(), 0u);
}

TEST(FastForward, WakeReactivatesSleepingComponent)
{
    Simulator sim;
    WakeableTicker t;
    sim.addTicking(&t);
    sim.events().schedule(5000, [&] {
        t.tokens = 3;
        sim.wake(&t);
    });
    const Cycle end = sim.run(100000);
    EXPECT_EQ(t.tokens, 0);
    EXPECT_TRUE(sim.finishedIdle());
    // Woken at 5000, drains 3 tokens, idles one cycle later.
    EXPECT_EQ(end, 5003u);
    // One arming tick at cycle 0, then only the post-wake cycles.
    EXPECT_LE(t.ticks, 5u);
}

TEST(FastForward, WakeOnForeignSimulatorIsIgnored)
{
    Simulator a, b;
    WakeableTicker t;
    a.addTicking(&t);
    b.wake(&t); // not registered with b: must be a safe no-op
    a.wake(&t);
    SUCCEED();
}

TEST(FastForward, SamplerBoundariesSurviveSkips)
{
    Simulator sim;
    PeriodicTicker t(1000, 2);
    sim.addTicking(&t);
    sim.sampler().setInterval(300);
    sim.sampler().addProbe("now", [&] {
        return static_cast<double>(sim.now());
    });
    sim.run(100000);
    // Acts at 1000 and 2000; interval probes must still fire at every
    // exact 300-cycle boundary crossed, never mid-skip.
    const std::vector<Cycle> expected{300, 600, 900, 1200, 1500, 1800};
    EXPECT_EQ(sim.sampler().times(), expected);
}

TEST(FastForward, FrozenBusySystemRunsOutTheClock)
{
    // busy() stays true but every component is asleep with no wakeup
    // scheduled: both kernel modes must run to max_cycles.
    struct Stuck : Ticking {
        void tick(Cycle) override { ++ticks; }
        bool busy() const override { return true; }
        Cycle nextActiveCycle(Cycle) const override { return kNoCycle; }
        std::uint64_t ticks = 0;
    };
    Simulator sim;
    Stuck t;
    sim.addTicking(&t);
    const Cycle end = sim.run(5000);
    EXPECT_EQ(end, 5000u);
    EXPECT_FALSE(sim.finishedIdle());
    EXPECT_LE(t.ticks, 2u);
}

TEST(Stats, ScalarAccumulates)
{
    StatRegistry reg;
    Scalar s(reg, "a.counter", "test");
    ++s;
    s += 4.0;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageComputesMean)
{
    StatRegistry reg;
    Average a(reg, "a.avg", "test");
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_DOUBLE_EQ(a.count(), 3.0);
}

TEST(Stats, HistogramBucketsAndMoments)
{
    StatRegistry reg;
    Histogram h(reg, "a.hist", "test", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.value(), 49.5, 1e-9);
    for (std::uint64_t b : h.buckets())
        EXPECT_EQ(b, 10u);
    EXPECT_DOUBLE_EQ(h.minSample(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 99.0);
    EXPECT_NEAR(h.stddev(), 29.0115, 0.01);
}

TEST(Stats, HistogramSaturatesEdgeBuckets)
{
    StatRegistry reg;
    Histogram h(reg, "a.hist2", "test", 0.0, 10.0, 5);
    h.sample(-100.0);
    h.sample(1000.0);
    EXPECT_EQ(h.buckets().front(), 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Stats, RegistryLookupAndPrefix)
{
    StatRegistry reg;
    Scalar a(reg, "core0.ipc", "");
    Scalar b(reg, "core0.stalls", "");
    Scalar c(reg, "core1.ipc", "");
    EXPECT_EQ(reg.find("core0.ipc"), &a);
    EXPECT_EQ(reg.find("missing"), nullptr);
    const auto prefixed = reg.findPrefix("core0.");
    ASSERT_EQ(prefixed.size(), 2u);
    EXPECT_EQ(prefixed[0], &a);
    EXPECT_EQ(prefixed[1], &b);
    (void)c;
}

TEST(Stats, DumpContainsAllStats)
{
    StatRegistry reg;
    Scalar a(reg, "x.one", "first");
    Average b(reg, "x.two", "second");
    a += 3;
    b.sample(7);
    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("x.one"), std::string::npos);
    EXPECT_NE(out.find("x.two"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123, 7), b(123, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDiffer)
{
    Rng a(123, 1), b(123, 2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng r(10);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(DiscreteDist, MatchesWeights)
{
    DiscreteDist d({1.0, 3.0, 6.0});
    EXPECT_NEAR(d.probability(0), 0.1, 1e-12);
    EXPECT_NEAR(d.probability(1), 0.3, 1e-12);
    EXPECT_NEAR(d.probability(2), 0.6, 1e-12);

    Rng r(14);
    std::vector<int> counts(3, 0);
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++counts[d.sample(r)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
    EXPECT_NEAR(counts[2] / double(n), 0.6, 0.015);
}

TEST(ZipfDist, SkewsTowardLowRanks)
{
    ZipfDist z(1000, 1.0);
    Rng r(15);
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i)
        low += z.sample(r) < 10 ? 1 : 0;
    // With s=1.0 the top-10 ranks hold ~39% of the mass.
    EXPECT_GT(static_cast<double>(low) / total, 0.3);
}

TEST(ZipfDist, UniformWhenExponentZero)
{
    ZipfDist z(10, 0.0);
    Rng r(16);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[z.sample(r)];
    for (int c : counts)
        EXPECT_NEAR(c / 20000.0, 0.1, 0.02);
}

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(strprintf("%03u", 7u), "007");
}
