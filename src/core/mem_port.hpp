/**
 * @file
 * Interface a TCG core uses to reach the memory system beyond its
 * local SPM and D-cache. Implemented by the chip, which routes
 * requests through the NoC, MACT, direct datapath and DRAM.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "isa/micro_op.hpp"
#include "sim/types.hpp"

namespace smarco::core {

/** Completion callback for an off-core memory operation. */
using MemDone = std::function<void()>;

/**
 * Off-core memory port. All methods are fire-and-remember: the chip
 * invokes done when the operation completes (possibly many cycles
 * later); done may be empty for operations nobody waits on.
 */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /**
     * A demand access that missed the local structures: heap D-cache
     * line fill, remote-SPM access, or uncached stream access. The
     * micro-op carries class, address, size and priority.
     */
    virtual void request(CoreId core, ThreadId thread,
                         const isa::MicroOp &op, MemDone done) = 0;

    /** Write back a dirty 64-byte victim line to memory. */
    virtual void writeback(CoreId core, Addr line_addr) = 0;
};

} // namespace smarco::core
