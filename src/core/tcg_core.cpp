#include "core/tcg_core.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::core {

using isa::MemClass;
using isa::MicroOp;
using isa::OpKind;

namespace {

/** Deterministic per-kernel code base address (synthetic PC space). */
Addr
kernelCodeBase(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return 0x4000'0000 + ((h & 0xffff) << 16);
}

} // namespace

TcgCore::TcgCore(Simulator &sim, CoreParams params, CoreId id,
                 Addr spm_base, MemPort &port,
                 const std::string &stat_prefix)
    : sim_(sim),
      params_(params),
      id_(id),
      port_(port),
      icache_(sim.stats(), params.icache, stat_prefix + ".icache"),
      dcache_(sim.stats(), params.dcache, stat_prefix + ".dcache"),
      spm_(sim.stats(), params.spm, spm_base, stat_prefix + ".spm"),
      contexts_(params.numThreads),
      rng_(0x5eed0 + id, id),
      committed_(sim.stats(), stat_prefix + ".committed",
                 "micro-ops committed"),
      cyclesActive_(sim.stats(), stat_prefix + ".cyclesActive",
                    "cycles with at least one live context"),
      slotsOffered_(sim.stats(), stat_prefix + ".slotsOffered",
                    "issue slots offered while active"),
      slotsUsed_(sim.stats(), stat_prefix + ".slotsUsed",
                 "issue slots that committed an op"),
      starveCycles_(sim.stats(), stat_prefix + ".starveCycles",
                    "thread-cycles lost to instruction starvation"),
      pairSwitches_(sim.stats(), stat_prefix + ".pairSwitches",
                    "friend-thread switches"),
      stallsMem_(sim.stats(), stat_prefix + ".stallsMem",
                 "blocking memory stalls"),
      tasksFinished_(sim.stats(), stat_prefix + ".tasksFinished",
                     "tasks completed on this core"),
      tasksKilled_(sim.stats(), stat_prefix + ".tasksKilled",
                   "tasks killed by faults or hang recovery"),
      threadHangs_(sim.stats(), stat_prefix + ".threadHangs",
                   "thread-hang faults injected")
{
    if (params_.maxRunning == 0 || params_.issueWidth == 0)
        fatal("core %u: zero-width pipeline", id);
    if (params_.numThreads < params_.maxRunning ||
        params_.numThreads > 2 * params_.maxRunning)
        fatal("core %u: numThreads %u must be in [maxRunning, "
              "2*maxRunning]", id, params_.numThreads);
    if (params_.maxRunning > 16)
        fatal("core %u: at most 16 run slots supported", id);
    for (std::uint32_t i = 0; i < contexts_.size(); ++i)
        contexts_[i].rng = Rng(0xc0de + id * 131 + i, i);
    sim.addTicking(this);
}

std::uint32_t
TcgCore::friendOf(std::uint32_t ctx) const
{
    const std::uint32_t m = params_.maxRunning;
    const std::uint32_t f = ctx < m ? ctx + m : ctx - m;
    return f < params_.numThreads ? f : ctx; // unpaired slot
}

bool
TcgCore::attachTask(const workloads::TaskSpec &task,
                    isa::StreamPtr stream, TaskDone done)
{
    for (std::uint32_t i = 0; i < contexts_.size(); ++i) {
        Context &ctx = contexts_[i];
        if (ctx.state != State::Idle)
            continue;
        ctx.task = task;
        ctx.stream = std::move(stream);
        ctx.done = std::move(done);
        ctx.opsDone = 0;
        ctx.readyAt = sim_.now();
        ctx.taskStart = sim_.now();
        ctx.fetchOff = 0;
        ctx.hasPending = false;
        ctx.hung = false;
        ctx.killed = false;
        const std::string &kernel =
            task.profile ? task.profile->name : std::string("task");
        ctx.pcBase = kernelCodeBase(kernel);
        if (!params_.sharedInstrSegment) {
            // Without segment sharing every context fetches its own
            // copy of the kernel, multiplying the I-footprint.
            ctx.pcBase += static_cast<Addr>(i) << 20;
        }
        // Promote directly when the context's run slot is free.
        const std::uint32_t f = friendOf(i);
        if (f == i || contexts_[f].state != State::Running)
            ctx.state = State::Running;
        else
            ctx.state = State::Ready;
        sim_.wake(this);
        return true;
    }
    return false;
}

std::uint32_t
TcgCore::freeContexts() const
{
    std::uint32_t n = 0;
    for (const auto &ctx : contexts_)
        n += ctx.state == State::Idle;
    return n;
}

std::uint32_t
TcgCore::liveContexts() const
{
    return params_.numThreads - freeContexts();
}

bool
TcgCore::busy() const
{
    return liveContexts() > 0 || pendingResponses_ > 0 ||
           storeBufferUsed_ > 0;
}

TcgCore::Context *
TcgCore::activeOf(std::uint32_t slot)
{
    Context &a = contexts_[slot];
    const std::uint32_t fi = friendOf(slot);
    if (fi == slot)
        return a.state == State::Running ? &a : nullptr;
    if (params_.scheme == ThreadScheme::NoSwitch) {
        // The slot is owned by one context until it finishes; the
        // friend context provides no latency hiding.
        Context &prim = a.state != State::Idle ? a : contexts_[fi];
        if (prim.state == State::Running)
            return &prim;
        if (prim.state == State::Ready) {
            prim.state = State::Running;
            return &prim;
        }
        return nullptr;
    }

    Context &b = contexts_[fi];
    if (a.state == State::Running)
        return &a;
    if (b.state == State::Running)
        return &b;
    // Neither running: promote a Ready context (slot was vacated).
    if (a.state == State::Ready) {
        a.state = State::Running;
        return &a;
    }
    if (b.state == State::Ready) {
        b.state = State::Running;
        return &b;
    }
    return nullptr;
}

void
TcgCore::traceStall(const char *reason, std::uint32_t ctx_idx,
                    Cycle now)
{
    sim_.trace().instant(TraceCat::Core, "stall", now, id_,
                         strprintf("{\"reason\":\"%s\",\"ctx\":%u}",
                                   reason, ctx_idx));
}

void
TcgCore::traceTaskDone(const Context &ctx, std::uint32_t ctx_idx,
                       Cycle now)
{
    const std::string kernel =
        ctx.task.profile ? ctx.task.profile->name : "task";
    sim_.trace().complete(
        TraceCat::Core, kernel, ctx.taskStart, now, id_,
        strprintf("{\"task\":%llu,\"ops\":%llu,\"ctx\":%u}",
                  static_cast<unsigned long long>(ctx.task.id),
                  static_cast<unsigned long long>(ctx.opsDone),
                  ctx_idx));
}

void
TcgCore::stallThread(std::uint32_t ctx_idx, Cycle now)
{
    Context &ctx = contexts_[ctx_idx];
    ctx.state = State::Stalled;
    ++stallsMem_;
    if (sim_.trace().enabled(TraceCat::Core)) [[unlikely]]
        traceStall("mem", ctx_idx, now);

    if (params_.scheme == ThreadScheme::NoSwitch)
        return;
    const std::uint32_t fi = friendOf(ctx_idx);
    if (fi == ctx_idx)
        return;
    Context &fr = contexts_[fi];
    if (fr.state == State::Ready) {
        fr.state = State::Running;
        const Cycle penalty = params_.scheme == ThreadScheme::InPair
            ? params_.pairSwitchPenalty
            : params_.coarseSwitchPenalty;
        fr.readyAt = std::max(fr.readyAt, now + penalty);
        ++pairSwitches_;
    }
}

void
TcgCore::wakeThread(std::uint32_t ctx_idx, Cycle now)
{
    Context &ctx = contexts_[ctx_idx];
    if (ctx.killed) {
        // Deferred kill: the context was killed while stalled; free
        // it now that its outstanding response has arrived.
        killContext(ctx_idx, now);
        return;
    }
    if (ctx.state != State::Stalled)
        panic("core %u: waking context %u in state %d", id_, ctx_idx,
              static_cast<int>(ctx.state));
    const std::uint32_t fi = friendOf(ctx_idx);
    if (params_.scheme != ThreadScheme::NoSwitch && fi != ctx_idx &&
        contexts_[fi].state == State::Running) {
        // Laxity-aware arbitration may preempt the friend when the
        // woken task is more urgent (lagging behind its deadline).
        if (params_.issuePolicy == IssuePolicy::LaxityAware &&
            laxityOf(ctx, now) < laxityOf(contexts_[fi], now)) {
            contexts_[fi].state = State::Ready;
            ctx.state = State::Running;
            ctx.readyAt = std::max(ctx.readyAt,
                                   now + params_.pairSwitchPenalty);
            ++pairSwitches_;
            return;
        }
        // Friend holds the slot: wait until it stalls (Section 3.1.1).
        ctx.state = State::Ready;
        return;
    }
    ctx.state = State::Running;
    ctx.readyAt = std::max(ctx.readyAt, now);
}

void
TcgCore::finishTask(std::uint32_t ctx_idx, Cycle now)
{
    Context &ctx = contexts_[ctx_idx];
    ++tasksFinished_;
    if (sim_.trace().enabled(TraceCat::Core)) [[unlikely]]
        traceTaskDone(ctx, ctx_idx, now);
    const workloads::TaskSpec task = ctx.task;
    TaskDone done = std::move(ctx.done);
    ctx.state = State::Idle;
    ctx.stream.reset();
    ctx.hasPending = false;
    ctx.done = nullptr;

    // Hand the slot to a Ready friend.
    const std::uint32_t fi = friendOf(ctx_idx);
    if (fi != ctx_idx && contexts_[fi].state == State::Ready)
        contexts_[fi].state = State::Running;

    if (done)
        done(task, now);
}

void
TcgCore::killContext(std::uint32_t ctx_idx, Cycle now)
{
    Context &ctx = contexts_[ctx_idx];
    ++tasksKilled_;
    if (sim_.trace().enabled(TraceCat::Fault)) [[unlikely]]
        sim_.trace().instant(
            TraceCat::Fault, "core.kill", now, id_,
            strprintf("{\"task\":%llu,\"ctx\":%u,\"ops\":%llu}",
                      static_cast<unsigned long long>(ctx.task.id),
                      ctx_idx,
                      static_cast<unsigned long long>(ctx.opsDone)));
    const workloads::TaskSpec task = ctx.task;
    ctx.state = State::Idle;
    ctx.stream.reset();
    ctx.hasPending = false;
    ctx.done = nullptr;
    ctx.hung = false;
    ctx.killed = false;

    // The vacated slot goes to a Ready friend, as on completion.
    const std::uint32_t fi = friendOf(ctx_idx);
    if (fi != ctx_idx && contexts_[fi].state == State::Ready)
        contexts_[fi].state = State::Running;

    if (failHandler_)
        failHandler_(task, now);
}

bool
TcgCore::injectThreadFault(ThreadFault kind, Rng &rng, Cycle now)
{
    std::uint32_t cand[16];
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < contexts_.size(); ++i) {
        const Context &c = contexts_[i];
        if (c.killed)
            continue;
        if (kind == ThreadFault::Hang) {
            if ((c.state == State::Running ||
                 c.state == State::Ready) && !c.hung)
                cand[n++] = i;
        } else if (c.state != State::Idle) {
            cand[n++] = i;
        }
    }
    if (n == 0)
        return false;
    const std::uint32_t idx =
        cand[static_cast<std::uint32_t>(rng.nextBelow(n))];
    if (kind == ThreadFault::Hang) {
        contexts_[idx].hung = true;
        ++threadHangs_;
        if (sim_.trace().enabled(TraceCat::Fault)) [[unlikely]]
            sim_.trace().instant(
                TraceCat::Fault, "core.hang", now, id_,
                strprintf("{\"task\":%llu,\"ctx\":%u}",
                          static_cast<unsigned long long>(
                              contexts_[idx].task.id),
                          idx));
        return true;
    }
    if (contexts_[idx].state == State::Stalled)
        contexts_[idx].killed = true; // freed on response arrival
    else
        killContext(idx, now);
    return true;
}

bool
TcgCore::killTask(TaskId id, Cycle now)
{
    for (std::uint32_t i = 0; i < contexts_.size(); ++i) {
        Context &ctx = contexts_[i];
        if (ctx.state == State::Idle || ctx.killed ||
            ctx.task.id != id)
            continue;
        if (ctx.state == State::Stalled)
            ctx.killed = true; // freed on response arrival
        else
            killContext(i, now);
        return true;
    }
    return false;
}

std::uint64_t
TcgCore::taskProgress(TaskId id) const
{
    for (const auto &ctx : contexts_) {
        if (ctx.state != State::Idle && !ctx.killed &&
            ctx.task.id == id)
            return ctx.opsDone;
    }
    return kNoTask;
}

std::uint32_t
TcgCore::ilpCap(Context &ctx) const
{
    const double ilp = ctx.task.profile ? ctx.task.profile->ilp : 2.0;
    const auto base = static_cast<std::uint32_t>(ilp);
    const double frac = ilp - static_cast<double>(base);
    return base + (ctx.rng.chance(frac) ? 1u : 0u);
}

bool
TcgCore::fetchOk(Context &ctx, Cycle now)
{
    if (ctx.fetchedThisCycle)
        return true;
    ctx.fetchedThisCycle = true;
    const std::uint64_t footprint = ctx.task.profile
        ? std::max<std::uint64_t>(ctx.task.profile->instrFootprint, 256)
        : params_.instrFootprint;
    const Addr pc = ctx.pcBase + (ctx.fetchOff % footprint);
    ctx.fetchOff += 16; // one fetch group of four 32-bit instructions
    if (icache_.access(pc, false).hit)
        return true;
    // Refill from the prefetched SPM instruction segment.
    ctx.readyAt = std::max(ctx.readyAt, now + params_.icacheMissPenalty);
    ++starveCycles_;
    if (sim_.trace().enabled(TraceCat::Core)) [[unlikely]]
        traceStall("istarve",
                   static_cast<std::uint32_t>(&ctx - contexts_.data()),
                   now);
    return false;
}

double
TcgCore::laxityOf(const Context &ctx, Cycle now) const
{
    if (!ctx.task.hasDeadline())
        return std::numeric_limits<double>::infinity();
    const double remaining_ops = ctx.task.numOps > ctx.opsDone
        ? static_cast<double>(ctx.task.numOps - ctx.opsDone)
        : 0.0;
    const double time_left = ctx.task.deadline > now
        ? static_cast<double>(ctx.task.deadline - now)
        : 0.0;
    return time_left - remaining_ops; // assumes ~1 op/cycle/thread
}

bool
TcgCore::executeOp(std::uint32_t ctx_idx, Context &ctx,
                   const MicroOp &op, Cycle now)
{
    const auto consume = [&ctx, this]() {
        ctx.hasPending = false;
        ++ctx.opsDone;
        ++committed_;
        ++slotsUsed_;
    };

    switch (op.kind) {
      case OpKind::Halt:
        ctx.hasPending = false;
        finishTask(ctx_idx, now);
        return false;

      case OpKind::Alu:
        consume();
        return true;

      case OpKind::Mul:
      case OpKind::Fp:
        consume();
        if (op.execLatency > 1) {
            ctx.readyAt = now + op.execLatency - 1;
            return false;
        }
        return true;

      case OpKind::Branch:
        consume();
        if (op.mispredict) {
            ctx.readyAt = now + params_.branchPenalty;
            return false;
        }
        return true;

      case OpKind::Load:
      case OpKind::Store:
        break;
    }

    // Memory operation.
    const bool is_store = op.isStore();
    switch (op.memClass) {
      case MemClass::SpmLocal:
        spm_.access(is_store);
        consume();
        return true;

      case MemClass::Heap: {
        const auto res = dcache_.access(op.addr, is_store);
        if (res.writeback)
            port_.writeback(id_, res.victimAddr);
        if (res.hit) {
            consume();
            return true;
        }
        // Line fill from DRAM.
        MicroOp fill = op;
        fill.size = static_cast<std::uint8_t>(64);
        fill.addr = op.addr & ~Addr{63};
        if (!is_store) {
            consume();
            ++pendingResponses_;
            stallThread(ctx_idx, now);
            port_.request(id_, ctx_idx, fill, [this, ctx_idx]() {
                --pendingResponses_;
                wakeThread(ctx_idx, sim_.now());
            });
            return false;
        }
        // Store miss: write-allocate through the store buffer.
        if (storeBufferUsed_ >= params_.storeBufferSlots)
            return false; // retry next cycle (op stays pending)
        ++storeBufferUsed_;
        consume();
        port_.request(id_, ctx_idx, fill,
                      [this]() { --storeBufferUsed_; });
        return true;
      }

      case MemClass::Stream: {
        // Trace-driven tasks (no profile) treat every stream load as
        // a demand miss; profiled tasks follow the profile.
        const double blocking = ctx.task.profile
            ? ctx.task.profile->streamLoadBlocking
            : 1.0;
        if (!is_store) {
            if (!ctx.rng.chance(blocking)) {
                // Staged into the SPM by the runtime's DMA prefetch.
                spm_.access(false);
                consume();
                return true;
            }
            consume();
            ++pendingResponses_;
            stallThread(ctx_idx, now);
            port_.request(id_, ctx_idx, op, [this, ctx_idx]() {
                --pendingResponses_;
                wakeThread(ctx_idx, sim_.now());
            });
            return false;
        }
        if (storeBufferUsed_ >= params_.storeBufferSlots)
            return false;
        ++storeBufferUsed_;
        consume();
        port_.request(id_, ctx_idx, op,
                      [this]() { --storeBufferUsed_; });
        return true;
      }

      case MemClass::SpmRemote: {
        if (!is_store) {
            consume();
            ++pendingResponses_;
            stallThread(ctx_idx, now);
            port_.request(id_, ctx_idx, op, [this, ctx_idx]() {
                --pendingResponses_;
                wakeThread(ctx_idx, sim_.now());
            });
            return false;
        }
        if (storeBufferUsed_ >= params_.storeBufferSlots)
            return false;
        ++storeBufferUsed_;
        consume();
        port_.request(id_, ctx_idx, op,
                      [this]() { --storeBufferUsed_; });
        return true;
      }

      case MemClass::None:
        break;
    }
    panic("core %u: memory op with MemClass::None", id_);
}

void
TcgCore::tick(Cycle now)
{
    if (liveContexts() == 0)
        return;
    ++cyclesActive_;
    slotsOffered_ += static_cast<double>(params_.issueWidth);

    for (auto &ctx : contexts_)
        ctx.fetchedThisCycle = false;

    // Slot visit order: round-robin rotation or least-laxity-first.
    std::uint32_t order[16];
    const std::uint32_t nslots = params_.maxRunning;
    for (std::uint32_t s = 0; s < nslots; ++s)
        order[s] = s;
    if (params_.issuePolicy == IssuePolicy::RoundRobin) {
        std::rotate(order, order + (rrSlot_ % nslots), order + nslots);
        ++rrSlot_;
    } else {
        double laxity[16];
        double min_laxity = std::numeric_limits<double>::infinity();
        for (std::uint32_t s = 0; s < nslots; ++s) {
            const Context *c = activeOf(s);
            laxity[s] = c ? laxityOf(*c, now)
                          : std::numeric_limits<double>::infinity();
            min_laxity = std::min(min_laxity, laxity[s]);
        }
        std::sort(order, order + nslots,
                  [&laxity](std::uint32_t a, std::uint32_t b) {
                      return laxity[a] < laxity[b];
                  });
        // Hard gate: pause leaders so lagging deadline tasks close
        // the gap (drop them from this cycle's issue order).
        if (std::isfinite(min_laxity)) {
            std::uint32_t kept = 0;
            for (std::uint32_t k = 0; k < nslots; ++k) {
                if (laxity[order[k]] <=
                    min_laxity + static_cast<double>(params_.laxityGate))
                    order[kept++] = order[k];
            }
            for (std::uint32_t k = kept; k < nslots; ++k)
                order[k] = ~0u; // sentinel: skip
        }
    }

    std::uint32_t budget = params_.issueWidth;
    if (liveContexts() > params_.maxRunning && budget > 0 &&
        rng_.chance(params_.pairingSelectTax))
        --budget;
    for (std::uint32_t k = 0; k < nslots && budget > 0; ++k) {
        if (order[k] == ~0u)
            continue; // laxity-gated leader
        Context *ctx = activeOf(order[k]);
        if (!ctx)
            continue;
        if (ctx->hung)
            continue; // frozen fault: occupies its slot, issues nothing
        const std::uint32_t ctx_idx =
            static_cast<std::uint32_t>(ctx - contexts_.data());
        const std::uint32_t cap = ilpCap(*ctx);
        std::uint32_t issued = 0;
        while (budget > 0 && issued < cap) {
            if (ctx->state != State::Running || ctx->readyAt > now)
                break;
            if (!fetchOk(*ctx, now))
                break;
            if (!ctx->hasPending) {
                if (!ctx->stream || !ctx->stream->next(ctx->pending)) {
                    finishTask(ctx_idx, now);
                    break;
                }
                ctx->hasPending = true;
            }
            const MicroOp op = ctx->pending;
            const std::uint64_t before = ctx->opsDone;
            const bool keep_going = executeOp(ctx_idx, *ctx, op, now);
            if (ctx->opsDone > before) {
                ++issued;
                --budget;
            }
            if (!keep_going)
                break;
        }
    }
}

double
TcgCore::ipc() const
{
    const double cycles = cyclesActive_.value();
    return cycles > 0.0 ? committed_.value() / cycles : 0.0;
}

double
TcgCore::idleSlotRatio() const
{
    const double offered = slotsOffered_.value();
    return offered > 0.0 ? 1.0 - slotsUsed_.value() / offered : 0.0;
}

double
TcgCore::starvationRatio() const
{
    const double offered = slotsOffered_.value();
    return offered > 0.0
        ? starveCycles_.value() / (offered / params_.issueWidth)
        : 0.0;
}

} // namespace smarco::core
