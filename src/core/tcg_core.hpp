/**
 * @file
 * Thread Core Group (TCG) core model (Section 3.1).
 *
 * A TCG core is a 4-wide-issue, 8-stage, in-order superscalar
 * pipeline hosting 8 hardware thread contexts of which at most 4 run
 * simultaneously. Threads are organised as in-pair (friend) threads:
 * contexts i and i+4 share one run slot; when the running thread
 * stalls on an SPM/D-cache miss its friend starts immediately,
 * hiding memory latency even when both threads behave identically
 * (Section 3.1.1). Parallel threads of the same kernel share one
 * instruction segment prefetched into the SPM (Section 3.1.2).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/mem_port.hpp"
#include "isa/instr_stream.hpp"
#include "mem/cache.hpp"
#include "mem/spm.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/task.hpp"

namespace smarco::core {

/** Multithreading scheme, for the Fig. 17 ablation. */
enum class ThreadScheme {
    InPair,        ///< friend-thread switch on miss, 1-cycle bubble
    CoarseGrained, ///< conventional switch-on-event, 8-cycle penalty
    NoSwitch       ///< extra contexts stay idle (no latency hiding)
};

/** Issue arbitration among run slots (Fig. 21 scheduler hook). */
enum class IssuePolicy {
    RoundRobin,  ///< rotate fairly across run slots
    LaxityAware  ///< least-laxity task issues first
};

/** Static configuration of one TCG core. */
struct CoreParams {
    std::uint32_t issueWidth = 4;
    std::uint32_t pipelineDepth = 8;
    std::uint32_t numThreads = 8;  ///< living contexts
    std::uint32_t maxRunning = 4;  ///< run slots
    ThreadScheme scheme = ThreadScheme::InPair;
    IssuePolicy issuePolicy = IssuePolicy::RoundRobin;
    Cycle pairSwitchPenalty = 1;
    Cycle coarseSwitchPenalty = 8;
    /** Issue-bandwidth tax of arbitrating 8 live contexts instead of
     *  4 (probability of losing one issue slot per cycle while the
     *  pairing scheduler is active). */
    double pairingSelectTax = 0.10;
    /** LaxityAware only: a slot whose task leads the core's most
     *  urgent task by more than this many cycles of laxity is paused
     *  so lagging same-deadline tasks catch up (Fig. 21). */
    Cycle laxityGate = 2000;
    Cycle spmLatency = 1;
    Cycle branchPenalty = 6;  ///< ~pipeline depth - 2
    Cycle icacheMissPenalty = 6; ///< refill from prefetched SPM segment
    std::uint32_t storeBufferSlots = 8;
    bool sharedInstrSegment = true;
    /** Instruction-loop footprint per distinct kernel, bytes. */
    std::uint64_t instrFootprint = 6 * 1024;
    mem::CacheParams icache{"icache", 16 * 1024, 4, 64, 1};
    mem::CacheParams dcache{"dcache", 16 * 1024, 4, 64, 2};
    mem::SpmParams spm{};
};

/** Invoked when a task running on the core finishes. */
using TaskDone = std::function<void(const workloads::TaskSpec &task,
                                    Cycle finish)>;

/**
 * Invoked when a task is killed (fault injection / hang recovery)
 * instead of finishing; the scheduler re-dispatches or abandons it.
 */
using TaskFail = std::function<void(const workloads::TaskSpec &task,
                                    Cycle when)>;

/** Thread-context fault kinds (see src/fault/). */
enum class ThreadFault : std::uint8_t {
    Hang, ///< context freezes, occupying its slot until killed
    Kill  ///< context dies immediately; its task is reported failed
};

/**
 * The TCG core. The chip constructs one per NoC core stop, wires its
 * MemPort, and attaches tasks to free contexts (usually through the
 * sub-ring scheduler).
 */
class TcgCore : public Ticking
{
  public:
    TcgCore(Simulator &sim, CoreParams params, CoreId id,
            Addr spm_base, MemPort &port,
            const std::string &stat_prefix);

    /**
     * Attach a task to a free context.
     * @return false when every context is occupied.
     */
    bool attachTask(const workloads::TaskSpec &task,
                    isa::StreamPtr stream, TaskDone done);

    /** Contexts currently free for dispatch. */
    std::uint32_t freeContexts() const;
    /** Contexts currently hosting live tasks. */
    std::uint32_t liveContexts() const;

    void tick(Cycle now) override;
    bool busy() const override;
    /** Idle cores (no live context) sleep until a task attaches. */
    Cycle nextActiveCycle(Cycle now) const override
    { return liveContexts() == 0 ? kNoCycle : now + 1; }

    CoreId id() const { return id_; }
    const CoreParams &params() const { return params_; }
    mem::Spm &spm() { return spm_; }

    /** Committed micro-ops so far. */
    std::uint64_t committedOps() const
    { return static_cast<std::uint64_t>(committed_.value()); }
    /** IPC over the core's ticked lifetime. */
    double ipc() const;
    /** Fraction of issue slots that went unused. */
    double idleSlotRatio() const;
    /** Fraction of cycles lost to instruction starvation. */
    double starvationRatio() const;

    void setIssuePolicy(IssuePolicy policy)
    { params_.issuePolicy = policy; }

    /** taskProgress() result when the task is not on this core. */
    static constexpr std::uint64_t kNoTask = ~std::uint64_t{0};

    /**
     * Install the task-failure handler (normally the owning
     * sub-scheduler's recovery path). Killed tasks are reported here
     * instead of through their TaskDone callback.
     */
    void setTaskFailHandler(TaskFail handler)
    { failHandler_ = std::move(handler); }

    /**
     * Inject a thread fault on a pseudo-randomly chosen victim
     * context (Hang: a Running/Ready context freezes; Kill: any live
     * context dies). @return false when no eligible victim exists.
     */
    bool injectThreadFault(ThreadFault kind, Rng &rng, Cycle now);

    /**
     * Kill the context hosting the given task (recovery path). A
     * stalled context is freed when its outstanding memory response
     * arrives; the failure handler fires at that point.
     * @return false when the task is not on this core.
     */
    bool killTask(TaskId id, Cycle now);

    /**
     * Committed ops of the given task, or kNoTask when it is not
     * hosted here — the scheduler's heartbeat reads this to detect
     * frozen (hung) tasks.
     */
    std::uint64_t taskProgress(TaskId id) const;

  private:
    enum class State : std::uint8_t {
        Idle,    ///< no task attached
        Ready,   ///< has work, waiting for its run slot
        Running, ///< owns its run slot
        Stalled  ///< waiting for a memory response
    };

    struct Context {
        State state = State::Idle;
        workloads::TaskSpec task;
        isa::StreamPtr stream;
        TaskDone done;
        std::uint64_t opsDone = 0;
        Cycle readyAt = 0;      ///< earliest next issue cycle
        Cycle taskStart = 0;
        Addr pcBase = 0;
        std::uint64_t fetchOff = 0;
        isa::MicroOp pending{};
        bool hasPending = false;
        bool fetchedThisCycle = false;
        /** Fault model: frozen in place, occupying its slot. */
        bool hung = false;
        /** Kill deferred until the outstanding response arrives. */
        bool killed = false;
        Rng rng{0, 0};
    };

    /** Friend context index of ctx (its pair partner). */
    std::uint32_t friendOf(std::uint32_t ctx) const;
    /** Context currently eligible to issue for a run slot. */
    Context *activeOf(std::uint32_t slot);
    /** Out-of-line trace emission keeps the issue path small. */
    [[gnu::cold, gnu::noinline]]
    void traceStall(const char *reason, std::uint32_t ctx_idx,
                    Cycle now);
    [[gnu::cold, gnu::noinline]]
    void traceTaskDone(const Context &ctx, std::uint32_t ctx_idx,
                       Cycle now);
    void stallThread(std::uint32_t ctx_idx, Cycle now);
    void wakeThread(std::uint32_t ctx_idx, Cycle now);
    void finishTask(std::uint32_t ctx_idx, Cycle now);
    /** Free a context without completing its task (kill path). */
    void killContext(std::uint32_t ctx_idx, Cycle now);
    /** Per-thread issue limit this cycle from the task's ILP. */
    std::uint32_t ilpCap(Context &ctx) const;
    /** Model instruction fetch; false on I-starvation this cycle. */
    bool fetchOk(Context &ctx, Cycle now);
    /**
     * Execute one micro-op for the context.
     * @return true when the thread can keep issuing this cycle.
     */
    bool executeOp(std::uint32_t ctx_idx, Context &ctx,
                   const isa::MicroOp &op, Cycle now);
    double laxityOf(const Context &ctx, Cycle now) const;

    Simulator &sim_;
    CoreParams params_;
    CoreId id_;
    MemPort &port_;
    mem::Cache icache_;
    mem::Cache dcache_;
    mem::Spm spm_;
    std::vector<Context> contexts_;
    std::uint32_t storeBufferUsed_ = 0;
    std::uint32_t rrSlot_ = 0;
    std::uint64_t pendingResponses_ = 0;
    Rng rng_;
    TaskFail failHandler_;

    Scalar committed_;
    Scalar cyclesActive_;
    Scalar slotsOffered_;
    Scalar slotsUsed_;
    Scalar starveCycles_;
    Scalar pairSwitches_;
    Scalar stallsMem_;
    Scalar tasksFinished_;
    Scalar tasksKilled_;
    Scalar threadHangs_;
};

} // namespace smarco::core
