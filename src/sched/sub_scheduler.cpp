#include "sched/sub_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::sched {

SubScheduler::SubScheduler(Simulator &sim, SubSchedulerParams params,
                           std::uint32_t sub_ring_id,
                           const std::string &stat_prefix)
    : sim_(sim),
      params_(params),
      id_(sub_ring_id),
      table_(params.chainCapacity),
      submitted_(sim.stats(), stat_prefix + ".submitted",
                 "tasks submitted to this sub-scheduler"),
      dispatched_(sim.stats(), stat_prefix + ".dispatched",
                  "tasks dispatched to cores"),
      misses_(sim.stats(), stat_prefix + ".deadlineMisses",
              "tasks finishing past their deadline"),
      redispatches_(sim.stats(), stat_prefix + ".redispatches",
                    "failed tasks dispatched again (recovery)"),
      hangKills_(sim.stats(), stat_prefix + ".hangKills",
                 "hung tasks killed by the heartbeat scan"),
      tasksAbandoned_(sim.stats(), stat_prefix + ".tasksAbandoned",
                      "failed tasks given up on"),
      queueDelay_(sim.stats(), stat_prefix + ".queueDelay",
                  "mean cycles from release to dispatch"),
      redispatchDelay_(sim.stats(), stat_prefix + ".redispatchDelay",
                       "cycles from task failure to re-dispatch",
                       0.0, 131072.0, 64),
      statPrefix_(stat_prefix)
{
    sim.addTicking(this);
}

void
SubScheduler::enableShedding(ShedCallback cb)
{
    sheddingOn_ = true;
    shedCb_ = std::move(cb);
    auto &st = sim_.stats();
    expired_ = std::make_unique<Scalar>(
        st, statPrefix_ + ".tasksExpired",
        "queued tasks dropped: deadline became unreachable");
    shedOverflow_ = std::make_unique<Scalar>(
        st, statPrefix_ + ".shedOverflow",
        "tasks shed on chain-table overflow");
}

void
SubScheduler::addCore(core::TcgCore *core)
{
    if (!core)
        panic("SubScheduler %u: null core", id_);
    cores_.push_back(core);
    reserved_.push_back(0);
}

void
SubScheduler::setStreamFactory(StreamFactory factory)
{
    makeStream_ = std::move(factory);
}

void
SubScheduler::setStageFn(StageFn stage)
{
    stage_ = std::move(stage);
}

void
SubScheduler::enableRecovery(const RecoveryParams &params)
{
    if (params.heartbeatInterval == 0 || params.hangTimeout == 0)
        fatal("sub-scheduler %u: zero recovery interval", id_);
    recovery_ = params;
    recoveryOn_ = true;
    for (core::TcgCore *core : cores_)
        core->setTaskFailHandler(
            [this](const workloads::TaskSpec &task, Cycle now) {
                onTaskFailed(task, now);
            });
}

void
SubScheduler::submit(const workloads::TaskSpec &task)
{
    ++submitted_;
    if (!table_.insert(task)) {
        if (sheddingOn_) {
            // Overflow becomes back-pressure instead of a crash: the
            // runtime retries the request with bounded backoff.
            ++*shedOverflow_;
            if (shedCb_)
                shedCb_(task, ShedReason::QueueFull, sim_.now());
            return;
        }
        fatal("sub-scheduler %u: chain table overflow (capacity %u)",
              id_, table_.capacity());
    }
    sim_.wake(this);
}

void
SubScheduler::dropExpired(const workloads::TaskSpec &task, Cycle now)
{
    ++*expired_;
    if (sim_.trace().enabled(TraceCat::Sched))
        sim_.trace().instant(
            TraceCat::Sched, "expire", now, 0,
            strprintf("{\"task\":%llu}",
                      static_cast<unsigned long long>(task.id)));
    if (shedCb_)
        shedCb_(task, ShedReason::Expired, now);
}

std::int32_t
SubScheduler::pickCore() const
{
    std::int32_t best = -1;
    std::uint32_t best_free = 0;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const std::uint32_t f = cores_[i]->freeContexts();
        const std::uint32_t eff =
            f > reserved_[i] ? f - reserved_[i] : 0;
        if (eff > best_free) {
            best_free = eff;
            best = static_cast<std::int32_t>(i);
        }
    }
    return best;
}

void
SubScheduler::dispatchOne(const workloads::TaskSpec &task, Cycle now)
{
    const std::int32_t slot = pickCore();
    if (slot < 0) {
        // Placement raced with another dispatch: requeue.
        if (!table_.insert(task))
            fatal("sub-scheduler %u: requeue overflow", id_);
        return;
    }
    core::TcgCore *core = cores_[slot];
    ++reserved_[slot];
    ++dispatched_;
    queueDelay_.sample(static_cast<double>(now - task.release));
    ++inFlight_;
    if (recoveryOn_) {
        auto it = recov_.find(task.id);
        if (it != recov_.end() && it->second.pendingRedispatch) {
            it->second.pendingRedispatch = false;
            ++redispatches_;
            redispatchDelay_.sample(
                static_cast<double>(now - it->second.failAt));
        }
    }

    const CoreId core_id = core->id();
    auto attach = [this, task, core, slot, now]() {
        // Staging completes through DMA callbacks while the scheduler
        // may be asleep; reserved_/table_ change here, so re-arm.
        sim_.wake(this);
        --reserved_[slot];
        isa::StreamPtr stream = makeStream_
            ? makeStream_(task, core->id())
            : nullptr;
        if (!stream)
            panic("sub-scheduler %u: no stream factory", id_);
        const bool ok = core->attachTask(task, std::move(stream),
            [this, core, now](const workloads::TaskSpec &t,
                              Cycle finish) {
                TaskExit exit;
                exit.taskId = t.id;
                exit.core = core->id();
                exit.finish = finish;
                exit.deadline = t.deadline;
                exit.metDeadline =
                    !t.hasDeadline() || finish <= t.deadline;
                if (!exit.metDeadline)
                    ++misses_;
                if (sim_.trace().enabled(TraceCat::Sched))
                    sim_.trace().complete(
                        TraceCat::Sched, "task", now, finish,
                        core->id(),
                        strprintf("{\"task\":%llu,\"met\":%s}",
                                  static_cast<unsigned long long>(
                                      t.id),
                                  exit.metDeadline ? "true"
                                                   : "false"));
                exits_.push_back(exit);
                if (recoveryOn_) {
                    watch_.erase(t.id);
                    recov_.erase(t.id);
                }
                --inFlight_;
                // A context freed up: a sleeping scheduler blocked on
                // pickCore() can place the next task again.
                sim_.wake(this);
                if (exitCb_)
                    exitCb_(exit, t);
            });
        if (!ok) {
            // Context taken between staging and attach: requeue.
            --inFlight_;
            if (!table_.insert(task))
                fatal("sub-scheduler %u: requeue overflow", id_);
        } else if (recoveryOn_) {
            watch_[task.id] = Watch{core, 0, sim_.now()};
        }
    };

    if (stage_)
        stage_(core_id, task, std::move(attach));
    else
        attach();
}

void
SubScheduler::onTaskFailed(const workloads::TaskSpec &task, Cycle now)
{
    --inFlight_;
    sim_.wake(this);
    if (!recoveryOn_) {
        ++tasksAbandoned_;
        return;
    }
    watch_.erase(task.id);
    Recov &r = recov_[task.id];
    ++r.attempts;
    if (r.attempts > recovery_.maxAttempts) {
        ++tasksAbandoned_;
        recov_.erase(task.id);
        if (sim_.trace().enabled(TraceCat::Fault))
            sim_.trace().instant(
                TraceCat::Fault, "sched.abandon", now, 0,
                strprintf("{\"task\":%llu}",
                          static_cast<unsigned long long>(task.id)));
        return;
    }
    const std::uint32_t shift =
        std::min<std::uint32_t>(r.attempts - 1, 20);
    const Cycle backoff = std::min<Cycle>(
        recovery_.backoffBase << shift, recovery_.backoffMax);
    r.failAt = now;
    r.pendingRedispatch = true;
    workloads::TaskSpec retry = task;
    retry.release = now + backoff;
    if (!table_.insert(retry))
        fatal("sub-scheduler %u: recovery requeue overflow", id_);
    if (sim_.trace().enabled(TraceCat::Fault))
        sim_.trace().instant(
            TraceCat::Fault, "sched.retry", now, 0,
            strprintf("{\"task\":%llu,\"attempt\":%u,"
                      "\"backoff\":%llu}",
                      static_cast<unsigned long long>(task.id),
                      r.attempts,
                      static_cast<unsigned long long>(backoff)));
}

void
SubScheduler::heartbeat(Cycle now)
{
    nextHeartbeat_ = now + recovery_.heartbeatInterval;
    // Collect victims first: killTask() re-enters this scheduler
    // through the failure handler, which mutates watch_/recov_.
    std::vector<std::pair<TaskId, core::TcgCore *>> victims;
    for (auto &[tid, w] : watch_) {
        const std::uint64_t ops = w.core->taskProgress(tid);
        if (ops == core::TcgCore::kNoTask)
            continue; // between staging and attach
        if (ops != w.lastOps) {
            w.lastOps = ops;
            w.lastChange = now;
        } else if (now - w.lastChange >= recovery_.hangTimeout) {
            victims.emplace_back(tid, w.core);
        }
    }
    for (auto &[tid, core] : victims) {
        ++hangKills_;
        watch_.erase(tid);
        core->killTask(tid, now);
    }
}

void
SubScheduler::tick(Cycle now)
{
    // Cycle-gated so both kernel modes run the scan at the same
    // cycles regardless of how often the scheduler ticks.
    if (recoveryOn_ && !watch_.empty() && now >= nextHeartbeat_)
        heartbeat(now);

    if (params_.policy == SchedPolicy::HardwareLaxity) {
        if (table_.empty() || now < nextDecision_)
            return;
        if (pickCore() < 0)
            return;
        if (table_.earliestRelease() > now)
            return; // everything queued releases in the future
        auto task = table_.popNext(now, /*laxity_aware=*/true);
        if (!task)
            return;
        if (task->release > now) {
            // Not yet released; put it back and wait.
            table_.insert(*task);
            return;
        }
        nextDecision_ = now + params_.hwDecisionLatency;
        if (sheddingOn_ && doomed(*task, now)) {
            // Early drop: the pop still costs a decision slot, but
            // no context is wasted running a doomed request.
            dropExpired(*task, now);
            return;
        }
        dispatchOne(*task, now);
        return;
    }

    // SoftwareDeadline: act only at quantum boundaries, with a
    // serial per-dispatch software cost.
    if (now < nextQuantum_)
        return;
    nextQuantum_ = now + params_.swQuantum;

    std::uint32_t free_slots = 0;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        const std::uint32_t f = cores_[i]->freeContexts();
        free_slots += f > reserved_[i] ? f - reserved_[i] : 0;
    }

    Cycle overhead = params_.swDispatchOverhead;
    std::uint32_t k = 0;
    while (k < free_slots && !table_.empty()) {
        auto task = table_.popNext(now, /*laxity_aware=*/true);
        if (!task)
            break;
        if (task->release > now) {
            table_.insert(*task);
            break;
        }
        if (sheddingOn_ && doomed(*task, now)) {
            dropExpired(*task, now);
            continue; // drop is free: no dispatch overhead paid
        }
        ++k;
        const Cycle when = now + overhead * k;
        auto t = *task;
        sim_.events().schedule(when, [this, t, when]() {
            dispatchOne(t, when);
        });
    }
}

bool
SubScheduler::busy() const
{
    return !table_.empty() || inFlight_ > 0;
}

Cycle
SubScheduler::nextActiveCycle(Cycle now) const
{
    Cycle hb = kNoCycle;
    if (recoveryOn_ && !watch_.empty())
        hb = std::max(now + 1, nextHeartbeat_);
    if (params_.policy == SchedPolicy::SoftwareDeadline)
        return std::min(hb, std::max(now + 1, nextQuantum_));
    if (table_.empty())
        return hb; // submit() wakes us
    if (pickCore() < 0)
        return hb; // a task exit frees a context and wakes us
    return std::min(hb, std::max({now + 1, nextDecision_,
                                  table_.earliestRelease()}));
}

std::uint64_t
SubScheduler::load() const
{
    return table_.size() + inFlight_;
}

} // namespace smarco::sched
