/**
 * @file
 * Sub-ring task scheduler (Section 3.7).
 *
 * One scheduler per sub-ring dispatches queued tasks onto the free
 * thread contexts of its 16 TCG cores. Two policies are modelled:
 *
 *  - HardwareLaxity: the paper's laxity-aware hardware scheduler.
 *    Chain-table pop picks the least-laxity task, a dispatch decision
 *    takes a few cycles, and cores issue with laxity-aware slot
 *    arbitration.
 *  - SoftwareDeadline: the Deadline Scheduler baseline of Fig. 21.
 *    Scheduling happens in software at quantum boundaries using the
 *    remaining time snapshot, and every dispatch pays a software
 *    overhead, so placement is stale and serialised.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/tcg_core.hpp"
#include "sched/chain_table.hpp"
#include "sched/shed.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/task.hpp"

namespace smarco::sched {

/** Scheduling policy of a sub-scheduler. */
enum class SchedPolicy { HardwareLaxity, SoftwareDeadline };

/** Configuration of one sub-ring scheduler. */
struct SubSchedulerParams {
    SchedPolicy policy = SchedPolicy::HardwareLaxity;
    /** Decision latency of the hardware scheduler (cycles). */
    Cycle hwDecisionLatency = 4;
    /** Software scheduler wakes up once per quantum. */
    Cycle swQuantum = 2000;
    /** Serial software cost per dispatched task. */
    Cycle swDispatchOverhead = 120;
    std::uint32_t chainCapacity = 512;
};

/**
 * Heartbeat/timeout recovery knobs (see src/fault/). The scheduler
 * samples the committed-op counter of every in-flight task each
 * heartbeat; a task whose counter is frozen for hangTimeout cycles is
 * killed and re-dispatched with bounded exponential backoff. The
 * timeout must comfortably exceed the longest legitimate memory stall
 * (including injected DRAM stall windows) — a false positive only
 * costs a re-run, but each one wastes the work done so far.
 */
struct RecoveryParams {
    Cycle heartbeatInterval = 10'000;
    Cycle hangTimeout = 60'000;
    /** Re-dispatch backoff: min(base << (attempt-1), max). */
    Cycle backoffBase = 500;
    Cycle backoffMax = 32'000;
    /** Failed attempts after which the task is abandoned. */
    std::uint32_t maxAttempts = 8;
};

/** Record of one completed task (Fig. 21 raw data). */
struct TaskExit {
    TaskId taskId = 0;
    CoreId core = 0;
    Cycle finish = 0;
    Cycle deadline = kNoCycle;
    bool metDeadline = true;
};

/**
 * The sub-ring scheduler. The chip wires a stream factory (building
 * the task's micro-op stream with the core's address layout) and a
 * staging function (SPM DMA prefetch) before use.
 */
class SubScheduler : public Ticking
{
  public:
    /** Build the instruction stream of a task placed on a core. */
    using StreamFactory = std::function<isa::StreamPtr(
        const workloads::TaskSpec &, CoreId)>;
    /** Stage task input into the core's SPM; call done when ready. */
    using StageFn = std::function<void(
        CoreId, const workloads::TaskSpec &, std::function<void()>)>;

    SubScheduler(Simulator &sim, SubSchedulerParams params,
                 std::uint32_t sub_ring_id,
                 const std::string &stat_prefix);

    /** Register a core of this sub-ring (in ring order). */
    void addCore(core::TcgCore *core);

    void setStreamFactory(StreamFactory factory);
    void setStageFn(StageFn stage);

    /** Observer invoked on every task completion (after recording). */
    using ExitCallback =
        std::function<void(const TaskExit &, const workloads::TaskSpec &)>;
    void setExitCallback(ExitCallback cb) { exitCb_ = std::move(cb); }

    /** Enqueue a task for dispatch (from the main scheduler). */
    void submit(const workloads::TaskSpec &task);

    /**
     * Turn on heartbeat hang detection and kill/re-dispatch recovery,
     * and install this scheduler as the failure handler of its cores.
     * Off by default: a fault-free run pays nothing.
     */
    void enableRecovery(const RecoveryParams &params);

    /**
     * Turn on deadline-aware shedding: tasks whose deadline has
     * become unreachable are dropped at pop time (early drop: the
     * chip never wastes a context on a doomed request), and a full
     * chain table sheds the overflowing task back to the callback
     * instead of aborting the run. Off by default.
     */
    void enableShedding(ShedCallback cb);

    std::uint64_t tasksExpired() const
    { return expired_ ? static_cast<std::uint64_t>(expired_->value())
                      : 0; }
    std::uint64_t overflowSheds() const
    { return shedOverflow_
          ? static_cast<std::uint64_t>(shedOverflow_->value())
          : 0; }

    std::uint64_t redispatches() const
    { return static_cast<std::uint64_t>(redispatches_.value()); }
    std::uint64_t tasksAbandoned() const
    { return static_cast<std::uint64_t>(tasksAbandoned_.value()); }
    std::uint64_t hangKills() const
    { return static_cast<std::uint64_t>(hangKills_.value()); }

    void tick(Cycle now) override;
    bool busy() const override;
    /**
     * HardwareLaxity: sleep when the table is empty or no core has a
     * free context (submit() and task exits wake us), else until the
     * decision latency and the earliest release both elapse.
     * SoftwareDeadline: sleep until the next quantum boundary (the
     * boundary tick runs even with an empty table, like the software
     * loop it models).
     */
    Cycle nextActiveCycle(Cycle now) const override;

    /** Queued + staged-but-unfinished tasks (load metric). */
    std::uint64_t load() const;
    std::uint64_t pendingTasks() const { return table_.size(); }
    std::uint64_t tasksCompleted() const { return exits_.size(); }
    std::uint64_t deadlineMisses() const
    { return static_cast<std::uint64_t>(misses_.value()); }

    const std::vector<TaskExit> &exits() const { return exits_; }

  private:
    /** True when the task's deadline is already unreachable. */
    bool doomed(const workloads::TaskSpec &task, Cycle now) const
    { return task.hasDeadline() && now + task.numOps > task.deadline; }
    /** Early-drop a queued task whose deadline became unreachable. */
    void dropExpired(const workloads::TaskSpec &task, Cycle now);
    void dispatchOne(const workloads::TaskSpec &task, Cycle now);
    /** Core with the most unreserved free contexts; -1 when none. */
    std::int32_t pickCore() const;
    /** Recovery: a core reported the task killed (not completed). */
    void onTaskFailed(const workloads::TaskSpec &task, Cycle now);
    /** Heartbeat scan: kill tasks whose progress counter froze. */
    void heartbeat(Cycle now);

    /** Progress snapshot of one watched in-flight task. */
    struct Watch {
        core::TcgCore *core = nullptr;
        std::uint64_t lastOps = 0;
        Cycle lastChange = 0;
    };
    /** Re-dispatch bookkeeping of one failed task. */
    struct Recov {
        std::uint32_t attempts = 0;
        Cycle failAt = 0;
        bool pendingRedispatch = false;
    };

    Simulator &sim_;
    SubSchedulerParams params_;
    std::uint32_t id_;
    std::vector<core::TcgCore *> cores_;
    /** Contexts promised to staged-but-unattached tasks, per core. */
    std::vector<std::uint32_t> reserved_;
    TaskChainTable table_;
    StreamFactory makeStream_;
    StageFn stage_;
    ExitCallback exitCb_;
    Cycle nextDecision_ = 0;
    Cycle nextQuantum_ = 0;
    std::uint64_t inFlight_ = 0; ///< staged/running, not yet finished
    std::vector<TaskExit> exits_;

    bool sheddingOn_ = false;
    ShedCallback shedCb_;

    bool recoveryOn_ = false;
    RecoveryParams recovery_;
    Cycle nextHeartbeat_ = 0;
    /** In-flight watched tasks (ordered: deterministic iteration). */
    std::map<TaskId, Watch> watch_;
    std::map<TaskId, Recov> recov_;

    Scalar submitted_;
    Scalar dispatched_;
    Scalar misses_;
    Scalar redispatches_;
    Scalar hangKills_;
    Scalar tasksAbandoned_;
    Average queueDelay_;
    Histogram redispatchDelay_;
    // Lazily created on enableShedding(): uncontrolled runs keep
    // their stats dump byte-identical to pre-overload builds.
    std::unique_ptr<Scalar> expired_;
    std::unique_ptr<Scalar> shedOverflow_;
    std::string statPrefix_;
};

} // namespace smarco::sched
