/**
 * @file
 * Sub-ring task scheduler (Section 3.7).
 *
 * One scheduler per sub-ring dispatches queued tasks onto the free
 * thread contexts of its 16 TCG cores. Two policies are modelled:
 *
 *  - HardwareLaxity: the paper's laxity-aware hardware scheduler.
 *    Chain-table pop picks the least-laxity task, a dispatch decision
 *    takes a few cycles, and cores issue with laxity-aware slot
 *    arbitration.
 *  - SoftwareDeadline: the Deadline Scheduler baseline of Fig. 21.
 *    Scheduling happens in software at quantum boundaries using the
 *    remaining time snapshot, and every dispatch pays a software
 *    overhead, so placement is stale and serialised.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/tcg_core.hpp"
#include "sched/chain_table.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/task.hpp"

namespace smarco::sched {

/** Scheduling policy of a sub-scheduler. */
enum class SchedPolicy { HardwareLaxity, SoftwareDeadline };

/** Configuration of one sub-ring scheduler. */
struct SubSchedulerParams {
    SchedPolicy policy = SchedPolicy::HardwareLaxity;
    /** Decision latency of the hardware scheduler (cycles). */
    Cycle hwDecisionLatency = 4;
    /** Software scheduler wakes up once per quantum. */
    Cycle swQuantum = 2000;
    /** Serial software cost per dispatched task. */
    Cycle swDispatchOverhead = 120;
    std::uint32_t chainCapacity = 512;
};

/** Record of one completed task (Fig. 21 raw data). */
struct TaskExit {
    TaskId taskId = 0;
    CoreId core = 0;
    Cycle finish = 0;
    Cycle deadline = kNoCycle;
    bool metDeadline = true;
};

/**
 * The sub-ring scheduler. The chip wires a stream factory (building
 * the task's micro-op stream with the core's address layout) and a
 * staging function (SPM DMA prefetch) before use.
 */
class SubScheduler : public Ticking
{
  public:
    /** Build the instruction stream of a task placed on a core. */
    using StreamFactory = std::function<isa::StreamPtr(
        const workloads::TaskSpec &, CoreId)>;
    /** Stage task input into the core's SPM; call done when ready. */
    using StageFn = std::function<void(
        CoreId, const workloads::TaskSpec &, std::function<void()>)>;

    SubScheduler(Simulator &sim, SubSchedulerParams params,
                 std::uint32_t sub_ring_id,
                 const std::string &stat_prefix);

    /** Register a core of this sub-ring (in ring order). */
    void addCore(core::TcgCore *core);

    void setStreamFactory(StreamFactory factory);
    void setStageFn(StageFn stage);

    /** Observer invoked on every task completion (after recording). */
    using ExitCallback =
        std::function<void(const TaskExit &, const workloads::TaskSpec &)>;
    void setExitCallback(ExitCallback cb) { exitCb_ = std::move(cb); }

    /** Enqueue a task for dispatch (from the main scheduler). */
    void submit(const workloads::TaskSpec &task);

    void tick(Cycle now) override;
    bool busy() const override;
    /**
     * HardwareLaxity: sleep when the table is empty or no core has a
     * free context (submit() and task exits wake us), else until the
     * decision latency and the earliest release both elapse.
     * SoftwareDeadline: sleep until the next quantum boundary (the
     * boundary tick runs even with an empty table, like the software
     * loop it models).
     */
    Cycle nextActiveCycle(Cycle now) const override;

    /** Queued + staged-but-unfinished tasks (load metric). */
    std::uint64_t load() const;
    std::uint64_t pendingTasks() const { return table_.size(); }
    std::uint64_t tasksCompleted() const { return exits_.size(); }
    std::uint64_t deadlineMisses() const
    { return static_cast<std::uint64_t>(misses_.value()); }

    const std::vector<TaskExit> &exits() const { return exits_; }

  private:
    void dispatchOne(const workloads::TaskSpec &task, Cycle now);
    /** Core with the most unreserved free contexts; -1 when none. */
    std::int32_t pickCore() const;

    Simulator &sim_;
    SubSchedulerParams params_;
    std::uint32_t id_;
    std::vector<core::TcgCore *> cores_;
    /** Contexts promised to staged-but-unattached tasks, per core. */
    std::vector<std::uint32_t> reserved_;
    TaskChainTable table_;
    StreamFactory makeStream_;
    StageFn stage_;
    ExitCallback exitCb_;
    Cycle nextDecision_ = 0;
    Cycle nextQuantum_ = 0;
    std::uint64_t inFlight_ = 0; ///< staged/running, not yet finished
    std::vector<TaskExit> exits_;

    Scalar submitted_;
    Scalar dispatched_;
    Scalar misses_;
    Average queueDelay_;
};

} // namespace smarco::sched
