#include "sched/shed.hpp"

namespace smarco::sched {

const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
      case ShedReason::QueueFull:  return "queueFull";
      case ShedReason::Infeasible: return "infeasible";
      case ShedReason::Degraded:   return "degraded";
      case ShedReason::Expired:    return "expired";
    }
    return "?";
}

} // namespace smarco::sched
