/**
 * @file
 * Main-ring scheduler (Section 3.7).
 *
 * The main scheduler receives task sets from the host CPU over PCIe
 * and spreads them across sub-ring schedulers to keep the whole chip
 * load-balanced. Task hand-off to a sub-ring travels as a control
 * packet when a transport is installed (so dispatch traffic shows up
 * in the NoC), or is delivered directly in stand-alone tests.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/shed.hpp"
#include "sched/sub_scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/task.hpp"

namespace smarco::sched {

/** Configuration of the main scheduler. */
struct MainSchedulerParams {
    /** Decision latency per task routed (cycles). */
    Cycle decisionLatency = 2;
};

/**
 * Main scheduler: host-facing task distribution. A Ticking component
 * only so that tasks held for a future release count as in-flight
 * work: anyBusy() (the fault campaign's "workload still running"
 * predicate) must stay true across release gaps, not just while a
 * core is executing. The tick itself is a no-op — hand-off runs
 * entirely on the event queue.
 */
class MainScheduler : public Ticking
{
  public:
    /** Deliver a task to sub-ring target (e.g. via a NoC packet). */
    using Transport = std::function<void(std::uint32_t sub_ring,
                                         const workloads::TaskSpec &)>;

    MainScheduler(Simulator &sim, MainSchedulerParams params,
                  const std::string &stat_prefix);

    /** Register sub-ring schedulers, in sub-ring order. */
    void addSubScheduler(SubScheduler *sub);

    /** Route hand-off through the NoC instead of direct delivery. */
    void setTransport(Transport transport);

    /**
     * Submit a batch of tasks. Tasks with a future release are held
     * until their release cycle; routing then picks the least-loaded
     * sub-ring at that moment.
     */
    void submitAll(const std::vector<workloads::TaskSpec> &tasks);

    /** Submit one task at its release cycle. */
    void submit(const workloads::TaskSpec &task);

    /**
     * Turn on admission control and load shedding at route time.
     * Off by default: an uncontrolled run routes everything and pays
     * nothing (no extra stats registered either).
     */
    void enableAdmission(const AdmissionParams &params);

    /** Observer for shed tasks (runtime retry hook). */
    void setShedCallback(ShedCallback cb) { shedCb_ = std::move(cb); }

    bool admissionEnabled() const { return admissionOn_; }
    bool degraded() const { return degraded_; }

    std::uint64_t tasksRouted() const
    { return static_cast<std::uint64_t>(routed_.value()); }
    std::uint64_t tasksAdmitted() const
    { return admitted_ ? static_cast<std::uint64_t>(admitted_->value())
                       : tasksRouted(); }
    std::uint64_t tasksShed() const;

    void tick(Cycle) override {}
    bool busy() const override { return pendingReleases_ > 0; }
    /** All work happens in release events; never tick. */
    Cycle nextActiveCycle(Cycle) const override { return kNoCycle; }

  private:
    void route(const workloads::TaskSpec &task);
    std::uint32_t leastLoaded() const;
    /** Admission test; fills reason when the task must be shed. */
    bool admit(const workloads::TaskSpec &task, std::uint32_t target,
               ShedReason &reason);
    void shed(const workloads::TaskSpec &task, ShedReason reason);
    void updateDegraded();

    Simulator &sim_;
    MainSchedulerParams params_;
    std::vector<SubScheduler *> subs_;
    Transport transport_;
    Cycle nextFree_ = 0;
    /** Tasks scheduled for a future release, not yet routed. */
    std::uint64_t pendingReleases_ = 0;

    bool admissionOn_ = false;
    AdmissionParams admission_;
    bool degraded_ = false;
    ShedCallback shedCb_;

    Scalar routed_;
    // Created lazily on enableAdmission(): an uncontrolled run keeps
    // its stats dump byte-identical to pre-overload builds.
    std::unique_ptr<Scalar> admitted_;
    std::unique_ptr<Scalar> shedQueueFull_;
    std::unique_ptr<Scalar> shedInfeasible_;
    std::unique_ptr<Scalar> shedDegraded_;
    std::unique_ptr<Scalar> degradedEntries_;
    std::string statPrefix_;
};

} // namespace smarco::sched
