/**
 * @file
 * RAM-based task chain tables (Section 3.7, Fig. 16).
 *
 * The hardware sub-ring scheduler keeps three chain tables: a null
 * chain of free entries, a normal chain, and a high-priority chain.
 * Entries live in a RAM array linked by next-indices (the paper uses
 * RAM instead of CAM to save area/power); insertion appends to the
 * tail of the class chain, and the pop operation walks the chain to
 * find the least-laxity task.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "sim/types.hpp"
#include "workloads/task.hpp"

namespace smarco::sched {

/**
 * Laxity of a not-yet-started task at cycle now: time to deadline
 * minus a remaining-execution estimate of one op per cycle. Tasks
 * without deadlines report +infinity-like laxity (always last).
 */
double taskLaxity(const workloads::TaskSpec &task, Cycle now);

/** The three-chain task table. */
class TaskChainTable
{
  public:
    explicit TaskChainTable(std::uint32_t capacity = 512);

    /**
     * Append a task to its class chain (high when realtime).
     * @return false when no free (null-chain) entry remains.
     */
    bool insert(const workloads::TaskSpec &task);

    /**
     * Remove and return the next task to dispatch: the least-laxity
     * entry of the high-priority chain, else (by laxity_aware) the
     * least-laxity or FIFO-head entry of the normal chain.
     */
    std::optional<workloads::TaskSpec> popNext(Cycle now,
                                               bool laxity_aware);

    std::uint32_t size() const { return used_; }
    bool empty() const { return used_ == 0; }
    std::uint32_t capacity() const
    { return static_cast<std::uint32_t>(ram_.size()); }
    std::uint32_t highCount() const { return highCount_; }

    /**
     * Smallest release time of any queued task (kNoCycle when empty).
     * Lets the scheduler sleep instead of polling while everything
     * queued is released in the future. O(1) amortised: maintained on
     * insert, recomputed on detach of the current minimum.
     */
    Cycle earliestRelease() const
    { return used_ > 0 ? minRelease_ : kNoCycle; }

  private:
    static constexpr std::int32_t kNil = -1;

    struct Entry {
        workloads::TaskSpec task;
        std::int32_t next = kNil;
    };

    /** Detach the entry after prev (or the head) from a chain. */
    workloads::TaskSpec detach(std::int32_t *head, std::int32_t *tail,
                               std::int32_t prev);
    /** Full walk of both class chains to refresh minRelease_. */
    void recomputeMinRelease();
    std::optional<workloads::TaskSpec> popFrom(std::int32_t *head,
                                               std::int32_t *tail,
                                               Cycle now,
                                               bool laxity_aware);

    std::vector<Entry> ram_;
    std::int32_t freeHead_ = kNil;          // null thread chain
    std::int32_t normalHead_ = kNil, normalTail_ = kNil;
    std::int32_t highHead_ = kNil, highTail_ = kNil;
    std::uint32_t used_ = 0;
    std::uint32_t highCount_ = 0;
    Cycle minRelease_ = kNoCycle;
};

} // namespace smarco::sched
