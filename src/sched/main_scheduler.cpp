#include "sched/main_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::sched {

MainScheduler::MainScheduler(Simulator &sim, MainSchedulerParams params,
                             const std::string &stat_prefix)
    : sim_(sim),
      params_(params),
      routed_(sim.stats(), stat_prefix + ".routed",
              "tasks routed to sub-rings")
{
    sim.addTicking(this);
}

void
MainScheduler::addSubScheduler(SubScheduler *sub)
{
    if (!sub)
        panic("MainScheduler: null sub-scheduler");
    subs_.push_back(sub);
}

void
MainScheduler::setTransport(Transport transport)
{
    transport_ = std::move(transport);
}

std::uint32_t
MainScheduler::leastLoaded() const
{
    std::uint32_t best = 0;
    std::uint64_t best_load = ~std::uint64_t{0};
    for (std::uint32_t i = 0; i < subs_.size(); ++i) {
        const std::uint64_t l = subs_[i]->load();
        if (l < best_load) {
            best_load = l;
            best = i;
        }
    }
    return best;
}

void
MainScheduler::route(const workloads::TaskSpec &task)
{
    if (subs_.empty())
        fatal("MainScheduler: no sub-schedulers registered");
    const std::uint32_t target = leastLoaded();
    ++routed_;
    if (sim_.trace().enabled(TraceCat::Sched))
        sim_.trace().instant(
            TraceCat::Sched, "route", sim_.now(), target,
            strprintf("{\"task\":%llu,\"sub\":%u}",
                      static_cast<unsigned long long>(task.id),
                      target));
    if (transport_)
        transport_(target, task);
    else
        subs_[target]->submit(task);
}

void
MainScheduler::submit(const workloads::TaskSpec &task)
{
    // Serialise decisions through the scheduler's own latency.
    const Cycle ready =
        std::max(std::max(task.release, sim_.now()), nextFree_);
    nextFree_ = ready + params_.decisionLatency;
    if (ready <= sim_.now()) {
        route(task);
        return;
    }
    auto t = task;
    ++pendingReleases_;
    sim_.events().schedule(ready, [this, t]() {
        --pendingReleases_;
        route(t);
    });
}

void
MainScheduler::submitAll(const std::vector<workloads::TaskSpec> &tasks)
{
    for (const auto &t : tasks)
        submit(t);
}

} // namespace smarco::sched
