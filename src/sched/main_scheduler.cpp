#include "sched/main_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::sched {

MainScheduler::MainScheduler(Simulator &sim, MainSchedulerParams params,
                             const std::string &stat_prefix)
    : sim_(sim),
      params_(params),
      routed_(sim.stats(), stat_prefix + ".routed",
              "tasks routed to sub-rings"),
      statPrefix_(stat_prefix)
{
    sim.addTicking(this);
}

void
MainScheduler::enableAdmission(const AdmissionParams &params)
{
    if (params.subQueueCap == 0)
        fatal("MainScheduler: zero admission queue cap");
    if (params.degradedExit > params.degradedEnter)
        fatal("MainScheduler: degraded-mode exit threshold above "
              "enter threshold (hysteresis inverted)");
    admission_ = params;
    admissionOn_ = true;
    auto &st = sim_.stats();
    admitted_ = std::make_unique<Scalar>(
        st, statPrefix_ + ".admitted",
        "tasks passing admission control");
    shedQueueFull_ = std::make_unique<Scalar>(
        st, statPrefix_ + ".shedQueueFull",
        "tasks shed: admission queue at capacity");
    shedInfeasible_ = std::make_unique<Scalar>(
        st, statPrefix_ + ".shedInfeasible",
        "tasks shed: deadline infeasible at queue depth");
    shedDegraded_ = std::make_unique<Scalar>(
        st, statPrefix_ + ".shedDegraded",
        "best-effort tasks shed in degraded mode");
    degradedEntries_ = std::make_unique<Scalar>(
        st, statPrefix_ + ".degradedEntries",
        "times the scheduler entered degraded mode");
}

std::uint64_t
MainScheduler::tasksShed() const
{
    if (!admissionOn_)
        return 0;
    return static_cast<std::uint64_t>(shedQueueFull_->value() +
                                      shedInfeasible_->value() +
                                      shedDegraded_->value());
}

void
MainScheduler::addSubScheduler(SubScheduler *sub)
{
    if (!sub)
        panic("MainScheduler: null sub-scheduler");
    subs_.push_back(sub);
}

void
MainScheduler::setTransport(Transport transport)
{
    transport_ = std::move(transport);
}

std::uint32_t
MainScheduler::leastLoaded() const
{
    std::uint32_t best = 0;
    std::uint64_t best_load = ~std::uint64_t{0};
    for (std::uint32_t i = 0; i < subs_.size(); ++i) {
        const std::uint64_t l = subs_[i]->load();
        if (l < best_load) {
            best_load = l;
            best = i;
        }
    }
    return best;
}

void
MainScheduler::updateDegraded()
{
    std::uint64_t load = 0;
    for (const SubScheduler *s : subs_)
        load += s->load();
    const double cap = static_cast<double>(admission_.subQueueCap) *
                       static_cast<double>(subs_.size());
    const double frac = static_cast<double>(load) / cap;
    if (!degraded_ && frac >= admission_.degradedEnter) {
        degraded_ = true;
        ++*degradedEntries_;
        if (sim_.trace().enabled(TraceCat::Sched))
            sim_.trace().instant(TraceCat::Sched, "degraded.enter",
                                 sim_.now());
    } else if (degraded_ && frac < admission_.degradedExit) {
        degraded_ = false;
        if (sim_.trace().enabled(TraceCat::Sched))
            sim_.trace().instant(TraceCat::Sched, "degraded.exit",
                                 sim_.now());
    }
}

bool
MainScheduler::admit(const workloads::TaskSpec &task,
                     std::uint32_t target, ShedReason &reason)
{
    // Bounded queue: even the least-loaded sub-ring is full.
    if (subs_[target]->load() >= admission_.subQueueCap) {
        reason = ShedReason::QueueFull;
        return false;
    }
    // Degraded mode sheds best-effort traffic before deadline
    // traffic; deadline/realtime requests still compete below.
    if (degraded_ && !task.hasDeadline()) {
        reason = ShedReason::Degraded;
        return false;
    }
    // Laxity feasibility: by the time the task reaches the head of
    // the target queue (estimated queuedCost cycles per task ahead)
    // and executes (~1 op/cycle, matching taskLaxity), the deadline
    // must still be reachable. Rejecting now lets the client retry
    // elsewhere instead of wasting chip work on a doomed request.
    if (task.hasDeadline()) {
        const Cycle wait = admission_.queuedCost *
                           subs_[target]->load();
        if (sim_.now() + wait + task.numOps > task.deadline) {
            reason = ShedReason::Infeasible;
            return false;
        }
    }
    return true;
}

void
MainScheduler::shed(const workloads::TaskSpec &task, ShedReason reason)
{
    switch (reason) {
      case ShedReason::QueueFull:  ++*shedQueueFull_; break;
      case ShedReason::Infeasible: ++*shedInfeasible_; break;
      case ShedReason::Degraded:   ++*shedDegraded_; break;
      case ShedReason::Expired:    break; // sub-scheduler's counter
    }
    if (sim_.trace().enabled(TraceCat::Sched))
        sim_.trace().instant(
            TraceCat::Sched, "shed", sim_.now(), 0,
            strprintf("{\"task\":%llu,\"reason\":\"%s\"}",
                      static_cast<unsigned long long>(task.id),
                      shedReasonName(reason)));
    if (shedCb_)
        shedCb_(task, reason, sim_.now());
}

void
MainScheduler::route(const workloads::TaskSpec &task)
{
    if (subs_.empty())
        fatal("MainScheduler: no sub-schedulers registered");
    const std::uint32_t target = leastLoaded();
    if (admissionOn_) {
        updateDegraded();
        ShedReason reason;
        if (!admit(task, target, reason)) {
            shed(task, reason);
            return;
        }
        ++*admitted_;
    }
    ++routed_;
    if (sim_.trace().enabled(TraceCat::Sched))
        sim_.trace().instant(
            TraceCat::Sched, "route", sim_.now(), target,
            strprintf("{\"task\":%llu,\"sub\":%u}",
                      static_cast<unsigned long long>(task.id),
                      target));
    if (transport_)
        transport_(target, task);
    else
        subs_[target]->submit(task);
}

void
MainScheduler::submit(const workloads::TaskSpec &task)
{
    // Serialise decisions through the scheduler's own latency.
    const Cycle ready =
        std::max(std::max(task.release, sim_.now()), nextFree_);
    nextFree_ = ready + params_.decisionLatency;
    if (ready <= sim_.now()) {
        route(task);
        return;
    }
    auto t = task;
    ++pendingReleases_;
    sim_.events().schedule(ready, [this, t]() {
        --pendingReleases_;
        route(t);
    });
}

void
MainScheduler::submitAll(const std::vector<workloads::TaskSpec> &tasks)
{
    for (const auto &t : tasks)
        submit(t);
}

} // namespace smarco::sched
