#include "sched/chain_table.hpp"

#include <algorithm>
#include <limits>

#include "sim/logging.hpp"

namespace smarco::sched {

double
taskLaxity(const workloads::TaskSpec &task, Cycle now)
{
    if (!task.hasDeadline())
        return std::numeric_limits<double>::infinity();
    const double time_left = task.deadline > now
        ? static_cast<double>(task.deadline - now)
        : 0.0;
    return time_left - static_cast<double>(task.numOps);
}

TaskChainTable::TaskChainTable(std::uint32_t capacity)
    : ram_(capacity)
{
    if (capacity == 0)
        fatal("TaskChainTable: zero capacity");
    // Thread every entry onto the null (free) chain.
    for (std::uint32_t i = 0; i + 1 < capacity; ++i)
        ram_[i].next = static_cast<std::int32_t>(i + 1);
    ram_[capacity - 1].next = kNil;
    freeHead_ = 0;
}

bool
TaskChainTable::insert(const workloads::TaskSpec &task)
{
    if (freeHead_ == kNil)
        return false;
    const std::int32_t idx = freeHead_;
    freeHead_ = ram_[idx].next;
    ram_[idx].task = task;
    ram_[idx].next = kNil;

    std::int32_t *head = task.realtime ? &highHead_ : &normalHead_;
    std::int32_t *tail = task.realtime ? &highTail_ : &normalTail_;
    if (*tail == kNil) {
        *head = idx;
        *tail = idx;
    } else {
        ram_[*tail].next = idx;
        *tail = idx;
    }
    ++used_;
    if (task.realtime)
        ++highCount_;
    if (used_ == 1 || task.release < minRelease_)
        minRelease_ = task.release;
    return true;
}

void
TaskChainTable::recomputeMinRelease()
{
    minRelease_ = kNoCycle;
    for (std::int32_t i = highHead_; i != kNil; i = ram_[i].next)
        minRelease_ = std::min(minRelease_, ram_[i].task.release);
    for (std::int32_t i = normalHead_; i != kNil; i = ram_[i].next)
        minRelease_ = std::min(minRelease_, ram_[i].task.release);
}

workloads::TaskSpec
TaskChainTable::detach(std::int32_t *head, std::int32_t *tail,
                       std::int32_t prev)
{
    const std::int32_t idx = prev == kNil ? *head : ram_[prev].next;
    if (idx == kNil)
        panic("TaskChainTable::detach on empty chain");
    const std::int32_t nxt = ram_[idx].next;
    if (prev == kNil)
        *head = nxt;
    else
        ram_[prev].next = nxt;
    if (*tail == idx)
        *tail = prev;

    workloads::TaskSpec task = ram_[idx].task;
    ram_[idx].next = freeHead_;
    freeHead_ = idx;
    --used_;
    if (task.release == minRelease_)
        recomputeMinRelease();
    return task;
}

std::optional<workloads::TaskSpec>
TaskChainTable::popFrom(std::int32_t *head, std::int32_t *tail,
                        Cycle now, bool laxity_aware)
{
    if (*head == kNil)
        return std::nullopt;
    if (!laxity_aware)
        return detach(head, tail, kNil);

    // Walk the chain for the least-laxity entry (what the RAM-based
    // hardware does sequentially).
    std::int32_t prev = kNil, best_prev = kNil;
    double best = std::numeric_limits<double>::infinity();
    for (std::int32_t i = *head; i != kNil; i = ram_[i].next) {
        const double l = taskLaxity(ram_[i].task, now);
        if (l < best) {
            best = l;
            best_prev = prev;
        }
        prev = i;
    }
    return detach(head, tail, best_prev);
}

std::optional<workloads::TaskSpec>
TaskChainTable::popNext(Cycle now, bool laxity_aware)
{
    auto task = popFrom(&highHead_, &highTail_, now, laxity_aware);
    if (task) {
        --highCount_;
        return task;
    }
    return popFrom(&normalHead_, &normalTail_, now, laxity_aware);
}

} // namespace smarco::sched
