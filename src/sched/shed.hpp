/**
 * @file
 * Overload-control vocabulary shared by the main and sub schedulers.
 *
 * Admission control bounds the per-sub-ring queues, sheds requests
 * whose deadline is already infeasible given the queue depth, and —
 * under a hysteresis-driven degraded mode — sheds best-effort traffic
 * before deadline traffic. Shed tasks are reported to a callback so
 * the runtime can retry them with bounded backoff; nothing is ever
 * dropped silently.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "sim/types.hpp"
#include "workloads/task.hpp"

namespace smarco::sched {

/** Why a task was refused or dropped by an overloaded scheduler. */
enum class ShedReason : std::uint8_t {
    /** Target sub-ring admission queue at capacity. */
    QueueFull,
    /** Deadline unreachable given current queue depth (laxity). */
    Infeasible,
    /** Best-effort task refused while in degraded mode. */
    Degraded,
    /** Deadline passed while queued; dropped before dispatch. */
    Expired,
};

/** Lower-case name of a shed reason ("queueFull", ...). */
const char *shedReasonName(ShedReason reason);

/** Observer invoked for every shed task (runtime retry hook). */
using ShedCallback = std::function<void(
    const workloads::TaskSpec &, ShedReason, Cycle now)>;

/** Admission-control knobs of the main scheduler. */
struct AdmissionParams {
    /** Max load (queued + in-flight tasks) per sub-ring scheduler.
     *  Must not exceed the sub-scheduler chain capacity. */
    std::uint32_t subQueueCap = 64;
    /** Estimated extra sojourn cycles contributed by each task
     *  already queued on the target sub-ring (0 disables the
     *  queue-depth term of the feasibility test). */
    Cycle queuedCost = 0;
    /** Enter degraded mode when total load / total capacity rises
     *  to this fraction... */
    double degradedEnter = 0.85;
    /** ...and leave it only once load falls back below this one
     *  (hysteresis: the gap stops threshold flapping). */
    double degradedExit = 0.55;
};

} // namespace smarco::sched
