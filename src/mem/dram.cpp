#include "mem/dram.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::mem {

DramController::DramController(Simulator &sim, DramParams params,
                               const std::string &stat_prefix)
    : sim_(sim),
      params_(params),
      channels_(params.channels),
      requests_(sim.stats(), stat_prefix + ".requests",
                "DRAM requests served"),
      bytes_(sim.stats(), stat_prefix + ".bytes",
             "DRAM data bytes moved"),
      faultStalls_(sim.stats(), stat_prefix + ".faultStalls",
                   "channel stall windows injected"),
      faultStallCycles_(sim.stats(), stat_prefix + ".faultStallCycles",
                        "total injected stall-window cycles"),
      readLatency_(sim.stats(), stat_prefix + ".latency",
                   "mean read service latency (cycles)"),
      queueDelay_(sim.stats(), stat_prefix + ".queueDelay",
                  "mean cycles spent queued at the channel")
{
    if (params_.channels == 0)
        fatal("DRAM: zero channels");
    if (params_.bytesPerCycle <= 0.0)
        fatal("DRAM: non-positive bandwidth");
    channelBytes_.reserve(params_.channels);
    for (std::uint32_t ch = 0; ch < params_.channels; ++ch)
        channelBytes_.push_back(std::make_unique<Scalar>(
            sim.stats(), strprintf("%s.ch%u.bytes",
                                   stat_prefix.c_str(), ch),
            "data bytes moved by this channel"));
}

std::uint32_t
DramController::channelOf(Addr addr) const
{
    // XOR-fold higher line bits into the channel selector so strided
    // access patterns (e.g. 256-byte DMA chunks = 4 lines) still
    // spread across channels instead of camping on one.
    const Addr line = addr / params_.interleaveBytes;
    const Addr folded = line ^ (line >> 2) ^ (line >> 5) ^ (line >> 9);
    return static_cast<std::uint32_t>(folded % params_.channels);
}

void
DramController::serve(Addr addr, std::uint32_t data_bytes, Cycle now,
                      Done done, DramClass cls)
{
    const std::uint32_t ch = channelOf(addr);
    Channel &channel = channels_[ch];
    Request req{addr, data_bytes, now, std::move(done)};
    switch (cls) {
      case DramClass::DemandRead:
        channel.demandQ.push_back(std::move(req));
        break;
      case DramClass::Bulk:
        channel.bulkQ.push_back(std::move(req));
        break;
      case DramClass::Write:
        channel.writeQ.push_back(std::move(req));
        break;
    }
    if (!channel.serving) {
        channel.serving = true;
        serviceNext(ch);
    }
}

void
DramController::stallChannel(std::uint32_t ch, Cycle duration, Cycle now)
{
    if (ch >= channels_.size())
        panic("DRAM: stallChannel(%u) of %zu", ch, channels_.size());
    Channel &channel = channels_[ch];
    channel.stalledUntil =
        std::max(channel.stalledUntil, now + duration);
    ++faultStalls_;
    faultStallCycles_ += static_cast<double>(duration);
    if (sim_.trace().enabled(TraceCat::Fault))
        sim_.trace().complete(
            TraceCat::Fault, strprintf("dram.ch%u.stall", ch), now,
            channel.stalledUntil, ch);
    // An idle channel needs no resume event: the serve() that starts
    // the next service loop lands in the stall check below.
}

void
DramController::serviceNext(std::uint32_t ch)
{
    Channel &channel = channels_[ch];
    if (sim_.now() < channel.stalledUntil) {
        // Fault window: hold the service loop (and the serving flag)
        // and retry when it closes.
        sim_.events().schedule(channel.stalledUntil,
                               [this, ch]() { serviceNext(ch); });
        return;
    }
    const bool reads_pending =
        !channel.demandQ.empty() || !channel.bulkQ.empty();
    const bool drain_writes =
        channel.writeQ.size() >= params_.writeDrainThreshold ||
        !reads_pending;
    std::deque<Request> *q = nullptr;
    if (drain_writes && !channel.writeQ.empty()) {
        q = &channel.writeQ;
    } else if (!channel.demandQ.empty() &&
               (channel.bulkQ.empty() ||
                channel.demandStreak < params_.demandStreakLimit)) {
        q = &channel.demandQ;
        ++channel.demandStreak;
    } else if (!channel.bulkQ.empty()) {
        q = &channel.bulkQ;
        channel.demandStreak = 0;
    }
    if (!q) {
        channel.serving = false;
        return;
    }
    const bool is_read = q != &channel.writeQ;

    Request req = std::move(q->front());
    q->pop_front();

    const Cycle now = sim_.now();
    const Cycle transfer = static_cast<Cycle>(std::ceil(
        static_cast<double>(req.bytes) / params_.bytesPerCycle));
    const Cycle busy =
        params_.requestOverhead + std::max<Cycle>(transfer, 1);
    const Cycle finish = now + params_.accessLatency + transfer;

    ++requests_;
    bytes_ += static_cast<double>(req.bytes);
    *channelBytes_[ch] += static_cast<double>(req.bytes);
    queueDelay_.sample(static_cast<double>(now - req.enqueued));
    if (is_read)
        readLatency_.sample(static_cast<double>(finish - req.enqueued));
    if (sim_.trace().enabled(TraceCat::Mem))
        sim_.trace().counter(TraceCat::Mem,
                             strprintf("dram.ch%u.bytes", ch), now,
                             channelBytes_[ch]->value());

    if (req.done)
        sim_.events().schedule(finish, std::move(req.done));
    sim_.events().schedule(now + busy,
                           [this, ch]() { serviceNext(ch); });
}

bool
DramController::busyNow() const
{
    for (const auto &c : channels_) {
        if (c.serving || !c.demandQ.empty() || !c.bulkQ.empty() ||
            !c.writeQ.empty())
            return true;
    }
    return false;
}

} // namespace smarco::mem
