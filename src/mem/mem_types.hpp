/**
 * @file
 * Shared memory-system request/response types and the chip memory map.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "sim/types.hpp"

namespace smarco::mem {

/**
 * Unified address map of the SmarCo chip. SPMs are initialised with
 * unified addressing with main memory (Section 3.5.1): every core's
 * scratch-pad occupies a fixed window, and DRAM sits above.
 */
struct MemoryMap {
    Addr spmBase = 0x1000'0000;
    std::uint64_t spmPerCore = 128 * 1024;
    std::uint32_t numCores = 256;
    Addr dramBase = 0x8000'0000;
    std::uint64_t dramSize = 64ull * 1024 * 1024 * 1024;

    /** Base address of core's scratch-pad window. */
    Addr
    spmBaseOf(CoreId core) const
    {
        return spmBase + static_cast<Addr>(core) * spmPerCore;
    }

    /** True when addr falls in any scratch-pad window. */
    bool
    isSpm(Addr addr) const
    {
        return addr >= spmBase &&
               addr < spmBase + static_cast<Addr>(numCores) * spmPerCore;
    }

    /** Core owning a scratch-pad address; addr must satisfy isSpm. */
    CoreId
    spmOwner(Addr addr) const
    {
        return static_cast<CoreId>((addr - spmBase) / spmPerCore);
    }

    bool isDram(Addr addr) const { return addr >= dramBase; }
};

/** A single in-flight memory request. */
struct MemRequest {
    std::uint64_t id = 0;
    bool write = false;
    Addr addr = kNoAddr;
    std::uint32_t bytes = 0;
    /** Superior real-time priority: bypasses MACT, may use the
     *  direct datapath (Sections 3.4, 3.5.2). */
    bool priority = false;
    CoreId core = 0;
    ThreadId thread = 0;
    Cycle issued = 0;
};

/** Completion callback carrying the original request. */
using MemCallback = std::function<void(const MemRequest &)>;

/** Approximate wire overhead of a request header, in bytes. */
inline constexpr std::uint32_t kReqHeaderBytes = 8;
/** Wire size of a read request packet (header + address/meta). */
inline constexpr std::uint32_t kReadReqBytes = 12;
/** Wire size of a small ack packet. */
inline constexpr std::uint32_t kAckBytes = 4;

} // namespace smarco::mem
