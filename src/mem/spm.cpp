#include "mem/spm.hpp"

#include <memory>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::mem {

Spm::Spm(StatRegistry &stats, SpmParams params, Addr base,
         const std::string &stat_prefix)
    : params_(params),
      base_(base),
      reads_(stats, stat_prefix + ".reads", "SPM read accesses"),
      writes_(stats, stat_prefix + ".writes", "SPM write accesses")
{
    if (params_.controlBytes >= params_.sizeBytes)
        fatal("SPM: control window (%llu) exceeds capacity (%llu)",
              static_cast<unsigned long long>(params_.controlBytes),
              static_cast<unsigned long long>(params_.sizeBytes));
}

bool
Spm::contains(Addr addr) const
{
    return addr >= base_ && addr < base_ + dataBytes();
}

bool
Spm::isControl(Addr addr) const
{
    return addr >= base_ + dataBytes() && addr < base_ + params_.sizeBytes;
}

Cycle
Spm::access(bool write)
{
    if (write)
        ++writes_;
    else
        ++reads_;
    return params_.accessLatency;
}

DmaEngine::DmaEngine(StatRegistry &stats, std::uint32_t chunk_bytes,
                     const std::string &stat_prefix,
                     std::uint32_t max_outstanding)
    : chunkBytes_(chunk_bytes),
      maxOutstanding_(max_outstanding),
      transfers_(stats, stat_prefix + ".transfers", "DMA transfers"),
      chunkCount_(stats, stat_prefix + ".chunks", "DMA chunk packets"),
      bytesMoved_(stats, stat_prefix + ".bytes", "DMA bytes moved")
{
    if (chunkBytes_ == 0)
        fatal("DmaEngine: zero chunk size");
    if (maxOutstanding_ == 0)
        fatal("DmaEngine: zero outstanding window");
}

void
DmaEngine::setTransport(Transport transport)
{
    transport_ = std::move(transport);
}

void
DmaEngine::start(Addr src, Addr dst, std::uint64_t bytes,
                 std::function<void()> done)
{
    if (!transport_)
        panic("DmaEngine::start before setTransport");
    if (bytes == 0) {
        if (done)
            done();
        return;
    }

    ++transfers_;
    bytesMoved_ += static_cast<double>(bytes);
    ++inFlight_;

    const std::uint64_t chunks =
        (bytes + chunkBytes_ - 1) / chunkBytes_;
    chunkCount_ += static_cast<double>(chunks);

    // Shared countdown across chunk completions; only a bounded
    // window of chunks is in flight at once so a large transfer does
    // not flood the NoC in a single cycle.
    auto remaining = std::make_shared<std::uint64_t>(chunks);
    auto on_chunk = [this, remaining, done = std::move(done)]() {
        --outstanding_;
        if (--*remaining == 0) {
            --inFlight_;
            if (done)
                done();
        }
        issueNext();
    };

    std::uint64_t off = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        const std::uint32_t sz = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunkBytes_, bytes - off));
        queue_.push_back(Chunk{src + off, dst + off, sz, on_chunk});
        off += sz;
    }
    issueNext();
}

void
DmaEngine::issueNext()
{
    while (outstanding_ < maxOutstanding_ &&
           queueHead_ < queue_.size()) {
        Chunk chunk = std::move(queue_[queueHead_++]);
        ++outstanding_;
        transport_(chunk.src, chunk.dst, chunk.bytes,
                   std::move(chunk.onChunk));
    }
    if (queueHead_ == queue_.size()) {
        queue_.clear();
        queueHead_ = 0;
    }
}

} // namespace smarco::mem
