#include "mem/mact.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::mem {

std::uint32_t
MactBatch::coveredBytes() const
{
    return static_cast<std::uint32_t>(std::popcount(vector));
}

std::uint32_t
MactBatch::wireBytes() const
{
    // Header + base address/vector metadata; writes also carry the
    // merged payload bytes.
    const std::uint32_t meta = kReqHeaderBytes + 8;
    return write ? meta + coveredBytes() : meta;
}

Mact::Mact(Simulator &sim, MactParams params,
           const std::string &stat_prefix)
    : sim_(sim),
      params_(params),
      table_(params.lines),
      collected_(sim.stats(), stat_prefix + ".collected",
                 "requests absorbed into the table"),
      bypassed_(sim.stats(), stat_prefix + ".bypassed",
                "requests refused (priority/oversize/straddle)"),
      batches_(sim.stats(), stat_prefix + ".batches",
               "batch packets emitted"),
      fullFlushes_(sim.stats(), stat_prefix + ".fullFlushes",
                   "lines flushed because the bitmap filled"),
      deadlineFlushes_(sim.stats(), stat_prefix + ".deadlineFlushes",
                       "lines flushed by the threshold timer"),
      capacityFlushes_(sim.stats(), stat_prefix + ".capacityFlushes",
                       "lines flushed to make room"),
      entriesLost_(sim.stats(), stat_prefix + ".entriesLost",
                   "table entries lost to injected soft errors"),
      requestsRecovered_(sim.stats(), stat_prefix + ".requestsRecovered",
                         "requests re-emitted after an entry loss"),
      batchSize_(sim.stats(), stat_prefix + ".batchSize",
                 "requests merged per batch")
{
    if (params_.lines == 0)
        fatal("MACT: zero lines");
    if (params_.lineBytes != 64)
        fatal("MACT: only 64-byte lines supported (got %u)",
              params_.lineBytes);
    if (params_.threshold == 0)
        fatal("MACT: zero threshold");
    sim.addTicking(this);
}

void
Mact::setSink(BatchSink sink)
{
    sink_ = std::move(sink);
}

std::uint64_t
Mact::fullVector() const
{
    return ~std::uint64_t{0};
}

bool
Mact::collect(const MemRequest &req, Cycle now)
{
    if (!params_.enabled || req.priority ||
        req.bytes > params_.maxCollectBytes || req.bytes == 0) {
        ++bypassed_;
        if (sim_.trace().enabled(TraceCat::Mem))
            sim_.trace().instant(TraceCat::Mem, "mact.bypass", now);
        return false;
    }
    const Addr base = req.addr & ~static_cast<Addr>(params_.lineBytes - 1);
    const std::uint32_t off =
        static_cast<std::uint32_t>(req.addr - base);
    if (off + req.bytes > params_.lineBytes) {
        // Line-straddling access: not representable in one bitmap.
        ++bypassed_;
        return false;
    }
    const std::uint64_t bits =
        (req.bytes == 64 ? fullVector()
                         : ((std::uint64_t{1} << req.bytes) - 1) << off);

    // Try to merge into an existing line of the same type.
    Line *free_line = nullptr;
    Line *oldest = nullptr;
    for (auto &line : table_) {
        if (!line.valid) {
            if (!free_line)
                free_line = &line;
            continue;
        }
        if (!oldest || line.firstCollect < oldest->firstCollect)
            oldest = &line;
        if (line.write == req.write && line.base == base) {
            line.vector |= bits;
            line.requests.push_back(req);
            ++collected_;
            sim_.wake(this);
            if (sim_.trace().enabled(TraceCat::Mem))
                sim_.trace().instant(TraceCat::Mem, "mact.hit", now,
                                     req.core);
            if (line.vector == fullVector()) {
                ++fullFlushes_;
                flushLine(line, "full");
            }
            return true;
        }
    }

    // Allocate; evict the oldest line when the table is full.
    Line *slot = free_line;
    if (!slot) {
        ++capacityFlushes_;
        flushLine(*oldest, "capacity");
        slot = oldest;
    }
    slot->valid = true;
    slot->write = req.write;
    slot->base = base;
    slot->vector = bits;
    slot->firstCollect = now;
    slot->requests.clear();
    slot->requests.push_back(req);
    ++used_;
    ++collected_;
    sim_.wake(this);
    if (sim_.trace().enabled(TraceCat::Mem))
        sim_.trace().instant(TraceCat::Mem, "mact.alloc", now,
                             req.core);
    if (slot->vector == fullVector()) {
        ++fullFlushes_;
        flushLine(*slot, "full");
    }
    return true;
}

void
Mact::tick(Cycle now)
{
    if (used_ == 0)
        return;
    for (auto &line : table_) {
        if (line.valid && now >= line.firstCollect + params_.threshold) {
            ++deadlineFlushes_;
            flushLine(line, "deadline");
        }
    }
}

Cycle
Mact::nextActiveCycle(Cycle now) const
{
    if (used_ == 0)
        return kNoCycle;
    Cycle earliest = kNoCycle;
    for (const auto &line : table_) {
        if (line.valid)
            earliest = std::min(earliest,
                                line.firstCollect + params_.threshold);
    }
    return std::max(earliest, now + 1);
}

bool
Mact::injectEntryLoss(std::uint64_t pick, Cycle recovery_latency,
                      Cycle now)
{
    if (used_ == 0)
        return false;
    if (!sink_)
        panic("MACT entry loss before setSink");
    std::uint64_t skip = pick % used_;
    Line *victim = nullptr;
    for (auto &line : table_) {
        if (!line.valid)
            continue;
        if (skip == 0) {
            victim = &line;
            break;
        }
        --skip;
    }
    MactBatch batch;
    batch.write = victim->write;
    batch.lineBase = victim->base;
    batch.vector = victim->vector;
    batch.requests = std::move(victim->requests);
    victim->valid = false;
    victim->requests.clear();
    --used_;
    ++entriesLost_;
    requestsRecovered_ += static_cast<double>(batch.requests.size());
    if (sim_.trace().enabled(TraceCat::Fault))
        sim_.trace().instant(
            TraceCat::Fault, "mact.entryLoss", now, 0,
            strprintf("{\"merged\":%zu}", batch.requests.size()));
    // The lost entry's requests are rebuilt from the requester side
    // and re-emitted once the recovery window elapses; they complete
    // late, never silently disappear.
    sim_.events().schedule(
        now + recovery_latency,
        [this, batch = std::move(batch)]() mutable {
            batchSize_.sample(
                static_cast<double>(batch.requests.size()));
            ++batches_;
            sink_(std::move(batch));
        });
    return true;
}

void
Mact::flushAll()
{
    for (auto &line : table_) {
        if (line.valid)
            flushLine(line, "drain");
    }
}

void
Mact::flushLine(Line &line, const char *reason)
{
    if (!sink_)
        panic("MACT flush before setSink");
    MactBatch batch;
    batch.write = line.write;
    batch.lineBase = line.base;
    batch.vector = line.vector;
    batch.requests = std::move(line.requests);
    batchSize_.sample(static_cast<double>(batch.requests.size()));
    ++batches_;
    if (sim_.trace().enabled(TraceCat::Mem))
        sim_.trace().complete(
            TraceCat::Mem, "mact.batch", line.firstCollect,
            sim_.now(), 0,
            strprintf("{\"reason\":\"%s\",\"merged\":%zu,"
                      "\"write\":%s}",
                      reason, batch.requests.size(),
                      batch.write ? "true" : "false"));

    line.valid = false;
    line.requests.clear();
    if (used_ == 0)
        panic("MACT occupancy underflow");
    --used_;
    sink_(std::move(batch));
}

} // namespace smarco::mem
