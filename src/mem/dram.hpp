/**
 * @file
 * DDR main-memory model (Section 3.5.3).
 *
 * SmarCo attaches four memory controllers to the main ring, each
 * driving a 128-bit DDR4-2133 channel; total bandwidth 136.5 GB/s.
 * Each channel owns read and write queues: demand reads are served
 * first (posted writes drain opportunistically or when their queue
 * fills), every request pays a fixed command overhead plus a
 * bandwidth-limited data transfer, and completion is event-driven.
 * This captures the effects the evaluation depends on: queueing
 * under load, write interference, and request-count sensitivity
 * (which is what the MACT attacks).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/mem_types.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace smarco::mem {

/** Configuration of the DRAM subsystem. */
struct DramParams {
    std::uint32_t channels = 4;
    /** Data bytes one channel moves per core cycle.
     *  34.125 GB/s per channel at 1.5 GHz core clock = 22.75 B/cy. */
    double bytesPerCycle = 22.75;
    /** Fixed access latency (activate + CAS + controller). */
    Cycle accessLatency = 48;
    /** Fixed per-request command/bank overhead. */
    Cycle requestOverhead = 2;
    /** Writes are force-drained when this many are queued. */
    std::uint32_t writeDrainThreshold = 16;
    /** Serve one bulk request after this many consecutive demand
     *  reads (anti-starvation share for DMA traffic). */
    std::uint32_t demandStreakLimit = 3;
    /** Line interleaving granularity across channels. */
    std::uint32_t interleaveBytes = 64;
};

/** Service class of a DRAM access. Demand reads stall pipelines and
 *  are served first; bulk transfers (DMA staging, prefetch) fill in;
 *  posted writes drain opportunistically. */
enum class DramClass : std::uint8_t { DemandRead, Bulk, Write };

/**
 * Multi-channel DRAM controller. serve() enqueues an access of
 * data_bytes and invokes done when the transfer completes.
 */
class DramController
{
  public:
    using Done = std::function<void()>;

    DramController(Simulator &sim, DramParams params,
                   const std::string &stat_prefix);

    /**
     * Enqueue an access of the given service class; done may be
     * empty (posted writes, fire-and-forget bulk).
     */
    void serve(Addr addr, std::uint32_t data_bytes, Cycle now, Done done,
               DramClass cls = DramClass::DemandRead);

    /** Back-compat helper for plain read/write call sites. */
    void
    serve(Addr addr, std::uint32_t data_bytes, Cycle now, Done done,
          bool is_write)
    {
        serve(addr, data_bytes, now, std::move(done),
              is_write ? DramClass::Write : DramClass::DemandRead);
    }

    /** Channel index an address maps to. */
    std::uint32_t channelOf(Addr addr) const;

    const DramParams &params() const { return params_; }

    std::uint64_t requestsServed() const
    { return static_cast<std::uint64_t>(requests_.value()); }
    double avgReadLatency() const { return readLatency_.value(); }
    double avgQueueDelay() const { return queueDelay_.value(); }
    double totalBytes() const { return bytes_.value(); }
    /** Data bytes moved by one channel so far. */
    double channelBytes(std::uint32_t ch) const
    { return channelBytes_[ch]->value(); }

    /** True while any channel has queued or in-service requests. */
    bool busyNow() const;

    /**
     * Fault model (see src/fault/): freeze one channel's service loop
     * until now + duration. Queued and newly arriving requests wait
     * and are served after the window — nothing is lost, so a stalled
     * run completes late rather than wedging. Overlapping stalls
     * extend the window.
     */
    void stallChannel(std::uint32_t ch, Cycle duration, Cycle now);

    std::uint64_t faultStalls() const
    { return static_cast<std::uint64_t>(faultStalls_.value()); }

  private:
    struct Request {
        Addr addr;
        std::uint32_t bytes;
        Cycle enqueued;
        Done done;
    };

    struct Channel {
        std::deque<Request> demandQ;
        std::deque<Request> bulkQ;
        std::deque<Request> writeQ;
        std::uint32_t demandStreak = 0;
        bool serving = false;
        /** Fault model: service is frozen until this cycle. */
        Cycle stalledUntil = 0;
    };

    void serviceNext(std::uint32_t ch);

    Simulator &sim_;
    DramParams params_;
    std::vector<Channel> channels_;

    Scalar requests_;
    Scalar bytes_;
    Scalar faultStalls_;
    Scalar faultStallCycles_;
    Average readLatency_;
    Average queueDelay_;
    /** Per-channel data bytes (".ch<N>.bytes" in the registry). */
    std::vector<std::unique_ptr<Scalar>> channelBytes_;
};

} // namespace smarco::mem
