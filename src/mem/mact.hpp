/**
 * @file
 * Memory Access Collection Table (Section 3.4).
 *
 * One MACT sits at each sub-ring gateway and merges the small,
 * discrete memory requests of that sub-ring's cores into per-line
 * batches. A line holds {Type, Tag, Vector, Threshold}: request type
 * (read/write), the 64-byte base address, a byte bitmap, and a
 * deadline timer. A line is flushed to memory when its bitmap fills
 * or its deadline expires; requests marked with superior real-time
 * priority bypass the table entirely.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/mem_types.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace smarco::mem {

/** Configuration of one MACT instance. */
struct MactParams {
    bool enabled = true;
    std::uint32_t lines = 32;
    /** Deadline: max cycles a request may wait in the table. */
    Cycle threshold = 16;
    std::uint32_t lineBytes = 64;
    /** Requests larger than this bypass (already efficient). */
    std::uint32_t maxCollectBytes = 16;
};

/** One flushed batch: a merged per-line memory access. */
struct MactBatch {
    bool write = false;
    Addr lineBase = kNoAddr;
    std::uint64_t vector = 0;
    /** The original requests merged into this batch. */
    std::vector<MemRequest> requests;

    /** Number of distinct bytes covered by the bitmap. */
    std::uint32_t coveredBytes() const;

    /** Wire size of the batch request packet. */
    std::uint32_t wireBytes() const;
};

/**
 * The collection table. collect() either absorbs a request (returns
 * true; the caller must not forward it) or refuses it (priority,
 * oversize, line-straddling), in which case the caller forwards the
 * request on the ordinary path. Flushed batches are handed to the
 * sink installed by the chip.
 */
class Mact : public Ticking
{
  public:
    using BatchSink = std::function<void(MactBatch &&batch)>;

    Mact(Simulator &sim, MactParams params,
         const std::string &stat_prefix);

    /** Install the flush destination (wired by the chip). */
    void setSink(BatchSink sink);

    /** Offer a request to the table at cycle now. */
    bool collect(const MemRequest &req, Cycle now);

    /** Deadline scan. */
    void tick(Cycle now) override;
    bool busy() const override { return used_ > 0; }
    /** Sleep until the earliest line deadline; collect() wakes us. */
    Cycle nextActiveCycle(Cycle now) const override;

    /** Force-flush every occupied line (end of run / drain). */
    void flushAll();

    const MactParams &params() const { return params_; }
    std::uint32_t occupancy() const { return used_; }

    std::uint64_t collected() const
    { return static_cast<std::uint64_t>(collected_.value()); }
    std::uint64_t bypassed() const
    { return static_cast<std::uint64_t>(bypassed_.value()); }
    std::uint64_t batches() const
    { return static_cast<std::uint64_t>(batches_.value()); }

    /**
     * Fault model (see src/fault/): lose one occupied table entry, as
     * if a soft error flipped its valid bit. The entry's contents are
     * rebuilt from the (modelled) core-side MSHRs and re-emitted as a
     * batch after recovery_latency cycles, so the merged requests
     * complete late rather than never. pick selects among the
     * occupied lines (pick % occupancy).
     * @return false when the table is empty.
     */
    bool injectEntryLoss(std::uint64_t pick, Cycle recovery_latency,
                         Cycle now);

    std::uint64_t entriesLost() const
    { return static_cast<std::uint64_t>(entriesLost_.value()); }

  private:
    struct Line {
        bool valid = false;
        bool write = false;
        Addr base = kNoAddr;
        std::uint64_t vector = 0;
        Cycle firstCollect = 0;
        std::vector<MemRequest> requests;
    };

    void flushLine(Line &line, const char *reason);
    std::uint64_t fullVector() const;

    Simulator &sim_;
    MactParams params_;
    BatchSink sink_;
    std::vector<Line> table_;
    std::uint32_t used_ = 0;

    Scalar collected_;
    Scalar bypassed_;
    Scalar batches_;
    Scalar fullFlushes_;
    Scalar deadlineFlushes_;
    Scalar capacityFlushes_;
    Scalar entriesLost_;
    Scalar requestsRecovered_;
    Average batchSize_;
};

} // namespace smarco::mem
