/**
 * @file
 * Scratch-Pad Memory (SPM) and its DMA engine (Section 3.5.1).
 *
 * Each TCG core owns a 128 KB programmer-managed SPM mapped into the
 * unified address space. The top 256 bytes act as control registers
 * (DMA source/destination/size). DMA moves data between the SPM and
 * DRAM or a neighbour's SPM without blocking the pipeline.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smarco::mem {

/** Configuration of one scratch-pad. */
struct SpmParams {
    std::uint64_t sizeBytes = 128 * 1024;
    /** Bytes reserved at the top for DMA control registers. */
    std::uint64_t controlBytes = 256;
    Cycle accessLatency = 1;
    /** Bytes one DMA transfer moves per chunk packet. */
    std::uint32_t dmaChunkBytes = 256;
};

/**
 * One core's scratch-pad. The SPM itself is a latency/occupancy
 * model; actual payload bytes live in the functional layer (the
 * MapReduce runtime keeps real data host-side).
 */
class Spm
{
  public:
    Spm(StatRegistry &stats, SpmParams params, Addr base,
        const std::string &stat_prefix);

    /** True when addr lies inside this scratch-pad's data region. */
    bool contains(Addr addr) const;

    /** True when addr falls in the DMA control-register window. */
    bool isControl(Addr addr) const;

    /** Account one pipeline access; returns its latency. */
    Cycle access(bool write);

    Addr base() const { return base_; }
    const SpmParams &params() const { return params_; }
    std::uint64_t dataBytes() const
    { return params_.sizeBytes - params_.controlBytes; }

    std::uint64_t reads() const
    { return static_cast<std::uint64_t>(reads_.value()); }
    std::uint64_t writes() const
    { return static_cast<std::uint64_t>(writes_.value()); }

  private:
    SpmParams params_;
    Addr base_;
    Scalar reads_;
    Scalar writes_;
};

/**
 * DMA engine attached to an SPM. The engine hands chunk-granularity
 * transfer requests to a transport function supplied by the chip
 * (which injects them into the NoC / memory system) and invokes the
 * completion callback when every chunk has been acknowledged.
 */
class DmaEngine
{
  public:
    /** Transport: move one chunk; call done() when it completes. */
    using Transport =
        std::function<void(Addr src, Addr dst, std::uint32_t bytes,
                           std::function<void()> done)>;

    DmaEngine(StatRegistry &stats, std::uint32_t chunk_bytes,
              const std::string &stat_prefix,
              std::uint32_t max_outstanding = 4);

    /** Install the chunk transport (wired by the chip). */
    void setTransport(Transport transport);

    /**
     * Start a transfer of bytes from src to dst; done runs once the
     * final chunk completes. Multiple transfers may be in flight.
     */
    void start(Addr src, Addr dst, std::uint64_t bytes,
               std::function<void()> done);

    bool busy() const { return inFlight_ > 0; }
    std::uint64_t transfersStarted() const
    { return static_cast<std::uint64_t>(transfers_.value()); }

  private:
    struct Chunk {
        Addr src;
        Addr dst;
        std::uint32_t bytes;
        std::function<void()> onChunk;
    };

    void issueNext();

    std::uint32_t chunkBytes_;
    std::uint32_t maxOutstanding_;
    Transport transport_;
    std::uint64_t inFlight_ = 0;
    std::uint32_t outstanding_ = 0;
    std::vector<Chunk> queue_;   ///< pending chunks, FIFO by index
    std::size_t queueHead_ = 0;
    Scalar transfers_;
    Scalar chunkCount_;
    Scalar bytesMoved_;
};

} // namespace smarco::mem
