#include "mem/cache.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace smarco::mem {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(StatRegistry &stats, CacheParams params,
             const std::string &stat_prefix)
    : params_(std::move(params)),
      numSets_(params_.sizeBytes / (params_.assoc * params_.lineBytes)),
      hits_(stats, stat_prefix + ".hits", "cache hits"),
      misses_(stats, stat_prefix + ".misses", "cache misses"),
      writebacks_(stats, stat_prefix + ".writebacks", "dirty evictions")
{
    if (params_.sizeBytes == 0 || params_.assoc == 0 ||
        params_.lineBytes == 0)
        fatal("cache %s: zero-sized parameter", params_.name.c_str());
    if (!isPow2(params_.lineBytes))
        fatal("cache %s: line size must be a power of two",
              params_.name.c_str());
    if (numSets_ * params_.assoc * params_.lineBytes != params_.sizeBytes)
        fatal("cache %s: size %llu not divisible into %u-way sets",
              params_.name.c_str(),
              static_cast<unsigned long long>(params_.sizeBytes),
              params_.assoc);
    lines_.resize(numSets_ * params_.assoc);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    // Set counts need not be powers of two (e.g. a 60 MB LLC).
    return (addr / params_.lineBytes) % numSets_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / numSets_;
}

CacheResult
Cache::access(Addr addr, bool write)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *const base = &lines_[set * params_.assoc];
    ++useClock_;

    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            line.dirty = line.dirty || write;
            ++hits_;
            return CacheResult{true, false, kNoAddr};
        }
    }

    // Miss: pick an invalid way if any, else the LRU way.
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }

    CacheResult res;
    res.hit = false;
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.victimAddr =
            (victim->tag * numSets_ + set) * params_.lineBytes;
        ++writebacks_;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lastUse = useClock_;
    ++misses_;
    return res;
}

bool
Cache::probe(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *const base = &lines_[set * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    std::fill(lines_.begin(), lines_.end(), Line{});
}

double
Cache::missRatio() const
{
    const double total = hits_.value() + misses_.value();
    return total > 0.0 ? misses_.value() / total : 0.0;
}

} // namespace smarco::mem
