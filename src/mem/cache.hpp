/**
 * @file
 * Set-associative cache tag model with LRU replacement.
 *
 * Used for the 16 KB I/D caches of the TCG cores and for the
 * three-level hierarchy of the conventional baseline chip. Only tags
 * are modelled; data movement is accounted by the callers in packets
 * and DRAM traffic.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smarco::mem {

/** Configuration of one cache level. */
struct CacheParams {
    std::string name = "cache";
    std::uint64_t sizeBytes = 16 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = 64;
    Cycle hitLatency = 2;
};

/** Outcome of a cache access. */
struct CacheResult {
    bool hit = false;
    /** Line fill evicted a dirty victim that must be written back. */
    bool writeback = false;
    /** Address of the dirty victim line (valid when writeback). */
    Addr victimAddr = kNoAddr;
};

/**
 * LRU set-associative cache. access() performs lookup and, on miss,
 * allocates the line immediately (the timing of the fill is the
 * caller's concern; this keeps the tag model reusable by both chips).
 */
class Cache
{
  public:
    Cache(StatRegistry &stats, CacheParams params,
          const std::string &stat_prefix);

    /** Look up addr; allocate on miss; update LRU and dirty bits. */
    CacheResult access(Addr addr, bool write);

    /** Look up without allocating or touching LRU (for tests). */
    bool probe(Addr addr) const;

    /** Invalidate everything (task switch on baseline SMT, tests). */
    void flush();

    const CacheParams &params() const { return params_; }

    std::uint64_t hits() const
    { return static_cast<std::uint64_t>(hits_.value()); }
    std::uint64_t misses() const
    { return static_cast<std::uint64_t>(misses_.value()); }
    double missRatio() const;

  private:
    struct Line {
        Addr tag = kNoAddr;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    std::uint64_t numSets_;
    std::vector<Line> lines_; // numSets * assoc, set-major
    std::uint64_t useClock_ = 0;

    Scalar hits_;
    Scalar misses_;
    Scalar writebacks_;
};

} // namespace smarco::mem
