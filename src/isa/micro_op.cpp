#include "isa/micro_op.hpp"

#include "sim/logging.hpp"

namespace smarco::isa {

std::string
toString(OpKind kind)
{
    switch (kind) {
      case OpKind::Alu: return "alu";
      case OpKind::Mul: return "mul";
      case OpKind::Fp: return "fp";
      case OpKind::Branch: return "branch";
      case OpKind::Load: return "load";
      case OpKind::Store: return "store";
      case OpKind::Halt: return "halt";
    }
    panic("toString: bad OpKind %d", static_cast<int>(kind));
}

std::string
toString(MemClass mem_class)
{
    switch (mem_class) {
      case MemClass::None: return "none";
      case MemClass::SpmLocal: return "spm-local";
      case MemClass::SpmRemote: return "spm-remote";
      case MemClass::Heap: return "heap";
      case MemClass::Stream: return "stream";
    }
    panic("toString: bad MemClass %d", static_cast<int>(mem_class));
}

} // namespace smarco::isa
