#include "isa/instr_stream.hpp"

#include <utility>

namespace smarco::isa {

TraceStream::TraceStream(std::vector<MicroOp> ops)
    : ops_(std::move(ops))
{
}

bool
TraceStream::next(MicroOp &op)
{
    if (pos_ >= ops_.size())
        return false;
    op = ops_[pos_++];
    ++emitted_;
    return true;
}

} // namespace smarco::isa
