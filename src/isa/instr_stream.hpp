/**
 * @file
 * Instruction stream abstraction consumed by pipeline models.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/micro_op.hpp"

namespace smarco::isa {

/**
 * A sequential source of micro-ops for one hardware thread. Streams
 * are pull-based: the pipeline fetches the next op when it has an
 * issue slot for the thread.
 */
class InstrStream
{
  public:
    virtual ~InstrStream() = default;

    /**
     * Produce the next micro-op.
     * @return false when the stream is exhausted (op untouched).
     */
    virtual bool next(MicroOp &op) = 0;

    /** Number of micro-ops handed out so far. */
    std::uint64_t emitted() const { return emitted_; }

  protected:
    std::uint64_t emitted_ = 0;
};

/**
 * Fixed pre-recorded stream, mainly for unit tests and replays.
 */
class TraceStream : public InstrStream
{
  public:
    explicit TraceStream(std::vector<MicroOp> ops);

    bool next(MicroOp &op) override;

    /** Remaining micro-ops. */
    std::size_t remaining() const { return ops_.size() - pos_; }

  private:
    std::vector<MicroOp> ops_;
    std::size_t pos_ = 0;
};

/** Owning handle to a stream. */
using StreamPtr = std::unique_ptr<InstrStream>;

} // namespace smarco::isa
