/**
 * @file
 * Micro-operation model.
 *
 * SmarCo cores are modelled at the micro-op level: workload generators
 * emit typed micro-ops with realistic mixes, access granularities and
 * address streams, and the pipeline model executes them. This is the
 * level at which the paper's evaluation operates (IPC, memory traffic,
 * NoC packets), without requiring a full ISA + compiler toolchain.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace smarco::isa {

/** Functional class of a micro-op. */
enum class OpKind : std::uint8_t {
    Alu,      ///< integer/logic op, 1-cycle class
    Mul,      ///< multiply/divide class, multi-cycle
    Fp,       ///< floating point class (K-means distance math)
    Branch,   ///< control transfer; may flush on mispredict
    Load,     ///< memory read
    Store,    ///< memory write
    Halt      ///< end of the thread's task
};

/**
 * Which part of the memory system a load/store targets. The LSQ in a
 * real SmarCo core steers by address range; generators pre-classify so
 * both the SmarCo and the baseline models can interpret the same
 * streams (the baseline treats every access as cacheable).
 */
enum class MemClass : std::uint8_t {
    None,       ///< not a memory op
    SpmLocal,   ///< core-local scratch-pad hit
    SpmRemote,  ///< scratch-pad of another core in the sub-ring
    Heap,       ///< cacheable heap/stack data (D-cache)
    Stream      ///< uncached streaming data, word-granularity to DRAM
};

/** A single decoded micro-operation. */
struct MicroOp {
    OpKind kind = OpKind::Alu;
    MemClass memClass = MemClass::None;
    /** Access size in bytes for loads/stores (1..64). */
    std::uint8_t size = 0;
    /** Execution latency class for Alu/Mul/Fp ops, in cycles. */
    std::uint8_t execLatency = 1;
    /** True when the branch is mispredicted (resolved by generator). */
    bool mispredict = false;
    /** High real-time priority: bypasses MACT, may use direct path. */
    bool priority = false;
    /** Effective address for loads/stores. */
    Addr addr = kNoAddr;

    bool isMem() const { return kind == OpKind::Load || kind == OpKind::Store; }
    bool isLoad() const { return kind == OpKind::Load; }
    bool isStore() const { return kind == OpKind::Store; }
};

/** Human-readable name of an op kind (for traces and tests). */
std::string toString(OpKind kind);

/** Human-readable name of a memory class. */
std::string toString(MemClass mem_class);

} // namespace smarco::isa
