#include "chip/smarco_chip.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::chip {

using isa::MemClass;
using isa::MicroOp;
using mem::MemRequest;
using noc::NodeId;
using noc::NodeKind;
using noc::Packet;
using noc::PacketKind;

SmarcoChip::SmarcoChip(Simulator &sim, ChipConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      memRequests_(sim.stats(), "chip.memRequests",
                   "off-core memory requests issued"),
      memLatency_(sim.stats(), "chip.memLatency",
                  "mean blocking memory request latency (cycles)"),
      priorityDirect_(sim.stats(), "chip.priorityDirect",
                      "requests served over the direct datapath")
{
    cfg_.validate();

    network_ = std::make_unique<noc::Network>(sim_, cfg_.noc, "chip.noc");
    directPath_ = std::make_unique<noc::DirectPath>(
        sim_, cfg_.directPath, "chip.direct");
    dram_ = std::make_unique<mem::DramController>(
        sim_, cfg_.dram, "chip.dram");

    const std::uint32_t n = cfg_.numCores();
    cores_.reserve(n);
    dmas_.reserve(n);
    for (CoreId c = 0; c < n; ++c) {
        cores_.push_back(std::make_unique<core::TcgCore>(
            sim_, cfg_.core, c, cfg_.map.spmBaseOf(c), *this,
            strprintf("chip.core%03u", c)));
        dmas_.push_back(std::make_unique<mem::DmaEngine>(
            sim_.stats(), cfg_.core.spm.dmaChunkBytes,
            strprintf("chip.dma%03u", c)));
        dmas_.back()->setTransport(
            [this, c](Addr src, Addr dst, std::uint32_t bytes,
                      std::function<void()> done) {
                dmaChunk(c, src, dst, bytes, std::move(done));
            });
    }

    for (std::uint32_t g = 0; g < cfg_.noc.numSubRings; ++g) {
        macts_.push_back(std::make_unique<mem::Mact>(
            sim_, cfg_.mact, strprintf("chip.mact%02u", g)));
        macts_.back()->setSink([this, g](mem::MactBatch &&batch) {
            onMactBatch(g, std::move(batch));
        });
        network_->setGatewayInterceptor(g, [this, g](Packet &pkt) {
            return interceptAtGateway(g, pkt);
        });
        network_->setEndpointHandler(
            NodeId{NodeKind::Gateway, g}, [this, g](Packet &&pkt) {
                handleGatewayPacket(g, std::move(pkt));
            });
    }

    for (std::uint32_t m = 0; m < cfg_.noc.numMemCtrls; ++m) {
        network_->setEndpointHandler(
            NodeId{NodeKind::MemCtrl, m}, [this, m](Packet &&pkt) {
                handleMcPacket(m, std::move(pkt));
            });
    }

    for (std::uint32_t g = 0; g < cfg_.noc.numSubRings; ++g) {
        subScheds_.push_back(std::make_unique<sched::SubScheduler>(
            sim_, cfg_.subSched, g, strprintf("chip.sched%02u", g)));
        auto &sub = *subScheds_.back();
        for (std::uint32_t k = 0; k < cfg_.noc.coresPerSubRing; ++k)
            sub.addCore(cores_[g * cfg_.noc.coresPerSubRing + k].get());
        sub.setStreamFactory(
            [this](const workloads::TaskSpec &task, CoreId core_id) {
                if (!task.profile)
                    panic("task %llu has no profile",
                          static_cast<unsigned long long>(task.id));
                return std::make_unique<workloads::ProfileStream>(
                    *task.profile, layoutFor(task, core_id),
                    task.numOps, task.seed);
            });
        sub.setStageFn([this](CoreId core_id,
                              const workloads::TaskSpec &task,
                              std::function<void()> ready) {
            stageTask(core_id, task, std::move(ready));
        });
    }

    for (auto &sub : subScheds_) {
        sub->setExitCallback(
            [this](const sched::TaskExit &exit,
                   const workloads::TaskSpec &task) {
                if (task.hookId == 0)
                    return;
                auto it = requestHooks_.find(task.hookId);
                if (it == requestHooks_.end())
                    return;
                RequestHook hook = std::move(it->second);
                requestHooks_.erase(it);
                RequestResult res;
                res.completed = true;
                res.when = exit.finish;
                res.core = exit.core;
                hook(task, res);
            });
    }

    mainSched_ = std::make_unique<sched::MainScheduler>(
        sim_, cfg_.mainSched, "chip.mainSched");
    for (auto &s : subScheds_)
        mainSched_->addSubScheduler(s.get());
    // Task hand-off travels the main ring as a control packet from
    // the host-facing I/O stop to the target gateway.
    mainSched_->setTransport(
        [this](std::uint32_t sub_ring, const workloads::TaskSpec &t) {
            const std::uint64_t wire = nextTaskWire_++;
            taskWire_.emplace(wire, t);
            Packet pkt;
            pkt.src = NodeId{NodeKind::Io, 0};
            pkt.dst = NodeId{NodeKind::Gateway, sub_ring};
            pkt.kind = PacketKind::Control;
            pkt.payloadBytes = 32;
            pkt.meta = wire;
            network_->send(std::move(pkt));
        });

    // Time-series probes: rates are computed over the sampling
    // interval from the cumulative counters, so the series shows
    // phase behaviour rather than a long-run average.
    if (sim_.sampler().interval() > 0) {
        sim_.sampler().addProbe(
            "ipc",
            [this, last_ops = std::uint64_t{0},
             last_cycle = Cycle{0}]() mutable {
                std::uint64_t ops = 0;
                for (const auto &c : cores_)
                    ops += c->committedOps();
                const Cycle now = sim_.now();
                const double ipc =
                    now > last_cycle
                        ? static_cast<double>(ops - last_ops) /
                              static_cast<double>(now - last_cycle)
                        : 0.0;
                last_ops = ops;
                last_cycle = now;
                return ipc;
            });
        sim_.sampler().addProbe("noc.inFlight", [this]() {
            return static_cast<double>(network_->totalInFlight());
        });
        sim_.sampler().addProbe(
            "dram.bytesPerCycle",
            [this, last_bytes = 0.0, last_cycle = Cycle{0}]() mutable {
                const double bytes = dram_->totalBytes();
                const Cycle now = sim_.now();
                const double bw =
                    now > last_cycle
                        ? (bytes - last_bytes) /
                              static_cast<double>(now - last_cycle)
                        : 0.0;
                last_bytes = bytes;
                last_cycle = now;
                return bw;
            });
        sim_.sampler().addProbe("sched.ready", [this]() {
            std::uint64_t ready = 0;
            for (const auto &s : subScheds_)
                ready += s->pendingTasks();
            return static_cast<double>(ready);
        });
    }
}

SmarcoChip::~SmarcoChip() = default;

void
SmarcoChip::submit(const std::vector<workloads::TaskSpec> &tasks)
{
    mainSched_->submitAll(tasks);
}

void
SmarcoChip::submitTo(std::uint32_t sub_ring,
                     const workloads::TaskSpec &task)
{
    subScheds_[sub_ring]->submit(task);
}

void
SmarcoChip::submitWithHook(const workloads::TaskSpec &task,
                           TaskHook hook)
{
    submitRequest(task,
                  [hook = std::move(hook)](
                      const workloads::TaskSpec &t,
                      const RequestResult &res) {
                      if (res.completed)
                          hook(t, res.when, res.core);
                  });
}

void
SmarcoChip::submitRequest(const workloads::TaskSpec &task,
                          RequestHook hook)
{
    workloads::TaskSpec t = task;
    t.hookId = nextHookId_++;
    requestHooks_.emplace(t.hookId, std::move(hook));
    mainSched_->submit(t);
}

void
SmarcoChip::onShed(const workloads::TaskSpec &task,
                   sched::ShedReason reason, Cycle now)
{
    if (task.hookId == 0)
        return;
    auto it = requestHooks_.find(task.hookId);
    if (it == requestHooks_.end())
        return;
    RequestHook hook = std::move(it->second);
    requestHooks_.erase(it);
    RequestResult res;
    res.completed = false;
    res.when = now;
    res.reason = reason;
    hook(task, res);
}

void
SmarcoChip::enableOverloadControl(const sched::AdmissionParams &params)
{
    if (params.subQueueCap > cfg_.subSched.chainCapacity)
        fatal("chip %s: admission cap %u exceeds chain capacity %u",
              cfg_.name.c_str(), params.subQueueCap,
              cfg_.subSched.chainCapacity);
    mainSched_->enableAdmission(params);
    auto on_shed = [this](const workloads::TaskSpec &task,
                          sched::ShedReason reason, Cycle now) {
        onShed(task, reason, now);
    };
    mainSched_->setShedCallback(on_shed);
    for (auto &s : subScheds_)
        s->enableShedding(on_shed);
    if (sim_.sampler().interval() > 0)
        sim_.sampler().addProbe("sched.shed", [this]() {
            return static_cast<double>(mainSched_->tasksShed());
        });
}

Cycle
SmarcoChip::runUntilDone(Cycle max_cycles)
{
    const Cycle end = sim_.run(max_cycles);
    if (!sim_.finishedIdle())
        warn("chip %s: run hit the %llu-cycle limit before draining",
             cfg_.name.c_str(),
             static_cast<unsigned long long>(max_cycles));
    return end;
}

ChipMetrics
SmarcoChip::metrics() const
{
    ChipMetrics m;
    m.cycles = sim_.now();
    for (const auto &c : cores_)
        m.opsCommitted += c->committedOps();
    for (const auto &s : subScheds_) {
        m.tasksCompleted += s->tasksCompleted();
        m.deadlineMisses += s->deadlineMisses();
        for (const auto &e : s->exits())
            m.lastTaskFinish = std::max(m.lastTaskFinish, e.finish);
    }
    if (m.cycles > 0) {
        m.aggregateIpc = static_cast<double>(m.opsCommitted) /
                         static_cast<double>(m.cycles);
        m.tasksPerMCycle = 1e6 * static_cast<double>(m.tasksCompleted) /
                           static_cast<double>(m.cycles);
    }
    m.avgMemLatency = memLatency_.value();
    m.nocUtilisation = network_->utilisation(m.cycles);
    m.dramRequests = dram_->requestsServed();
    return m;
}

workloads::AddressLayout
SmarcoChip::layoutFor(const workloads::TaskSpec &task,
                      CoreId core_id) const
{
    const auto &map = cfg_.map;
    const std::uint32_t cps = cfg_.noc.coresPerSubRing;
    const std::uint32_t ring = core_id / cps;
    const std::uint32_t local = core_id % cps;
    const CoreId neighbour = ring * cps + (local + 1) % cps;

    workloads::AddressLayout layout;
    layout.spmLocalBase = map.spmBaseOf(core_id);
    layout.spmLocalSize = cores_[core_id]->spm().dataBytes();
    layout.spmRemoteBase = map.spmBaseOf(neighbour);
    layout.spmRemoteSize = cores_[neighbour]->spm().dataBytes();
    layout.heapBase = map.dramBase +
        static_cast<Addr>(core_id) * cfg_.heapStride;
    layout.heapSize = task.profile ? task.profile->heapWorkingSet
                                   : 256 * 1024;
    layout.streamBase = map.dramBase +
        static_cast<Addr>(cfg_.numCores()) * cfg_.heapStride +
        static_cast<Addr>(core_id) * cfg_.streamStride;
    layout.streamSize = task.profile ? task.profile->streamWorkingSet
                                     : 4 * 1024 * 1024;
    return layout;
}

NodeId
SmarcoChip::mcNodeFor(Addr addr) const
{
    return NodeId{NodeKind::MemCtrl, dram_->channelOf(addr)};
}

void
SmarcoChip::request(CoreId core_id, ThreadId thread, const MicroOp &op,
                    core::MemDone done)
{
    ++memRequests_;
    MemRequest req;
    req.id = nextReqId_++;
    req.write = op.isStore();
    req.addr = op.addr;
    req.bytes = op.size;
    req.priority = op.priority;
    req.core = core_id;
    req.thread = thread;
    req.issued = sim_.now();

    // Wrap the completion to sample the end-to-end request latency.
    const bool blocking = !req.write;
    core::MemDone wrapped =
        [this, issued = req.issued, blocking, done = std::move(done)]() {
            if (blocking)
                memLatency_.sample(
                    static_cast<double>(sim_.now() - issued));
            if (done)
                done();
        };

    if (op.memClass == MemClass::SpmRemote) {
        const CoreId owner = cfg_.map.isSpm(op.addr)
            ? cfg_.map.spmOwner(op.addr)
            : core_id;
        core::TcgCore *owner_core = cores_[owner].get();
        Packet pkt;
        pkt.src = NodeId{NodeKind::Core, core_id};
        pkt.dst = NodeId{NodeKind::Core, owner};
        pkt.priority = req.priority;
        if (!req.write) {
            pkt.kind = PacketKind::SpmRemoteReq;
            pkt.payloadBytes = mem::kReadReqBytes;
            pkt.onDeliver = [this, owner_core, req,
                             wrapped = std::move(wrapped)]() {
                owner_core->spm().access(false);
                Packet resp;
                resp.src = NodeId{NodeKind::Core, owner_core->id()};
                resp.dst = NodeId{NodeKind::Core, req.core};
                resp.kind = PacketKind::SpmRemoteResp;
                resp.payloadBytes = mem::kReqHeaderBytes + req.bytes;
                resp.priority = req.priority;
                resp.onDeliver = wrapped;
                network_->send(std::move(resp));
            };
        } else {
            pkt.kind = PacketKind::SpmRemoteReq;
            pkt.payloadBytes = mem::kReqHeaderBytes + req.bytes;
            pkt.onDeliver = [owner_core,
                             wrapped = std::move(wrapped)]() {
                owner_core->spm().access(true);
                wrapped();
            };
        }
        network_->send(std::move(pkt));
        return;
    }

    // Heap fills and stream accesses go to DRAM.
    if (req.priority && !req.write && directPath_->enabled()) {
        sendViaDirectPath(req, std::move(wrapped));
        return;
    }
    if (req.write)
        sendWriteToMemory(req, std::move(wrapped));
    else
        sendReadToMemory(req, std::move(wrapped));
}

void
SmarcoChip::writeback(CoreId core_id, Addr line_addr)
{
    MemRequest req;
    req.id = nextReqId_++;
    req.write = true;
    req.addr = line_addr;
    req.bytes = 64;
    req.core = core_id;
    req.issued = sim_.now();
    sendWriteToMemory(req, nullptr);
}

void
SmarcoChip::sendReadToMemory(const MemRequest &req, core::MemDone done)
{
    pending_.emplace(req.id, PendingReq{req, std::move(done)});
    Packet pkt;
    pkt.src = NodeId{NodeKind::Core, req.core};
    pkt.dst = mcNodeFor(req.addr);
    pkt.kind = PacketKind::MemReadReq;
    pkt.payloadBytes = mem::kReadReqBytes;
    pkt.priority = req.priority;
    pkt.meta = req.id;
    network_->send(std::move(pkt));
}

void
SmarcoChip::sendWriteToMemory(const MemRequest &req, core::MemDone done)
{
    pending_.emplace(req.id, PendingReq{req, std::move(done)});
    Packet pkt;
    pkt.src = NodeId{NodeKind::Core, req.core};
    pkt.dst = mcNodeFor(req.addr);
    pkt.kind = PacketKind::MemWriteReq;
    pkt.payloadBytes = mem::kReqHeaderBytes + req.bytes;
    pkt.priority = req.priority;
    pkt.meta = req.id;
    network_->send(std::move(pkt));
}

void
SmarcoChip::sendViaDirectPath(const MemRequest &req, core::MemDone done)
{
    ++priorityDirect_;
    const std::uint32_t ring = req.core / cfg_.noc.coresPerSubRing;
    auto respond = [this, ring, req, done = std::move(done)]() {
        dram_->serve(req.addr, req.bytes, sim_.now(),
                     [this, ring, req, done]() {
            directPath_->transfer(
                ring, mem::kReqHeaderBytes + req.bytes, sim_.now(),
                done);
        });
    };
    directPath_->transfer(ring, mem::kReadReqBytes, sim_.now(),
                          std::move(respond));
}

bool
SmarcoChip::interceptAtGateway(std::uint32_t gw, Packet &pkt)
{
    if (pkt.kind != PacketKind::MemReadReq &&
        pkt.kind != PacketKind::MemWriteReq)
        return false;
    auto it = pending_.find(pkt.meta);
    if (it == pending_.end())
        panic("gateway %u: unknown mem request %llu", gw,
              static_cast<unsigned long long>(pkt.meta));
    return macts_[gw]->collect(it->second.req, sim_.now());
}

void
SmarcoChip::onMactBatch(std::uint32_t gw, mem::MactBatch &&batch)
{
    const std::uint64_t wire = nextReqId_++;
    const Addr base = batch.lineBase;
    const std::uint32_t bytes = batch.wireBytes();
    batchWire_.emplace(wire, std::move(batch));
    Packet pkt;
    pkt.src = NodeId{NodeKind::Gateway, gw};
    pkt.dst = mcNodeFor(base);
    pkt.kind = PacketKind::MactBatchReq;
    pkt.payloadBytes = bytes;
    pkt.meta = wire;
    network_->send(std::move(pkt));
}

void
SmarcoChip::handleMcPacket(std::uint32_t mc, Packet &&pkt)
{
    switch (pkt.kind) {
      case PacketKind::MemReadReq:
      case PacketKind::DmaChunk: {
        auto it = pending_.find(pkt.meta);
        if (it == pending_.end())
            panic("mc %u: unknown request %llu", mc,
                  static_cast<unsigned long long>(pkt.meta));
        const MemRequest req = it->second.req;
        if (req.write) {
            // Posted DMA write: complete at the controller.
            core::MemDone done = std::move(it->second.done);
            pending_.erase(it);
            dram_->serve(req.addr, req.bytes, sim_.now(), nullptr,
                         /*is_write=*/true);
            if (done)
                done();
            return;
        }
        const std::uint64_t id = pkt.meta;
        const bool is_dma = pkt.kind == PacketKind::DmaChunk;
        // Staging chunks ride the bulk class so they cannot queue
        // ahead of pipeline-stalling demand reads.
        dram_->serve(req.addr, req.bytes, sim_.now(),
                     mem::DramController::Done([this, id, mc, is_dma]() {
            auto it2 = pending_.find(id);
            if (it2 == pending_.end())
                panic("mc %u: request %llu vanished", mc,
                      static_cast<unsigned long long>(id));
            const MemRequest req2 = it2->second.req;
            core::MemDone done = std::move(it2->second.done);
            pending_.erase(it2);
            Packet resp;
            resp.src = NodeId{NodeKind::MemCtrl, mc};
            resp.dst = NodeId{NodeKind::Core, req2.core};
            resp.kind = is_dma ? PacketKind::DmaChunk
                               : PacketKind::MemReadResp;
            resp.payloadBytes = mem::kReqHeaderBytes + req2.bytes;
            resp.priority = req2.priority;
            resp.onDeliver = std::move(done);
            network_->send(std::move(resp));
        }), is_dma ? mem::DramClass::Bulk
                   : mem::DramClass::DemandRead);
        return;
      }

      case PacketKind::MemWriteReq: {
        auto it = pending_.find(pkt.meta);
        if (it == pending_.end())
            panic("mc %u: unknown write %llu", mc,
                  static_cast<unsigned long long>(pkt.meta));
        const MemRequest req = it->second.req;
        core::MemDone done = std::move(it->second.done);
        pending_.erase(it);
        dram_->serve(req.addr, req.bytes, sim_.now(), nullptr,
                     /*is_write=*/true);
        if (done)
            done(); // posted write
        return;
      }

      case PacketKind::MactBatchReq: {
        auto it = batchWire_.find(pkt.meta);
        if (it == batchWire_.end())
            panic("mc %u: unknown batch %llu", mc,
                  static_cast<unsigned long long>(pkt.meta));
        if (it->second.write) {
            // One DRAM write covering every merged store.
            mem::MactBatch batch = std::move(it->second);
            batchWire_.erase(it);
            dram_->serve(batch.lineBase, batch.coveredBytes(),
                         sim_.now(), nullptr, /*is_write=*/true);
            for (const auto &r : batch.requests) {
                auto pit = pending_.find(r.id);
                if (pit == pending_.end())
                    panic("mc %u: batched write %llu lost", mc,
                          static_cast<unsigned long long>(r.id));
                core::MemDone done = std::move(pit->second.done);
                pending_.erase(pit);
                if (done)
                    done();
            }
            return;
        }
        // Read batch: one DRAM access, one response to the gateway.
        const std::uint64_t id = pkt.meta;
        const Addr base = it->second.lineBase;
        const std::uint32_t data = it->second.coveredBytes();
        const std::uint32_t home_gw = it->second.requests.empty()
            ? 0
            : it->second.requests.front().core /
                  cfg_.noc.coresPerSubRing;
        dram_->serve(base, data, sim_.now(),
                     [this, id, mc, data, home_gw]() {
            Packet resp;
            resp.src = NodeId{NodeKind::MemCtrl, mc};
            resp.dst = NodeId{NodeKind::Gateway, home_gw};
            resp.kind = PacketKind::MactBatchResp;
            resp.payloadBytes = mem::kReqHeaderBytes + data;
            resp.meta = id;
            network_->send(std::move(resp));
        });
        return;
      }

      default:
        panic("mc %u: unexpected packet kind %s", mc,
              toString(pkt.kind).c_str());
    }
}

void
SmarcoChip::handleGatewayPacket(std::uint32_t gw, Packet &&pkt)
{
    switch (pkt.kind) {
      case PacketKind::Control: {
        auto it = taskWire_.find(pkt.meta);
        if (it == taskWire_.end())
            panic("gateway %u: unknown task wire %llu", gw,
                  static_cast<unsigned long long>(pkt.meta));
        const workloads::TaskSpec task = it->second;
        taskWire_.erase(it);
        subScheds_[gw]->submit(task);
        return;
      }

      case PacketKind::MactBatchResp: {
        auto it = batchWire_.find(pkt.meta);
        if (it == batchWire_.end())
            panic("gateway %u: unknown batch %llu", gw,
                  static_cast<unsigned long long>(pkt.meta));
        mem::MactBatch batch = std::move(it->second);
        batchWire_.erase(it);
        // Fan the merged line back out as per-request responses.
        for (const auto &r : batch.requests) {
            auto pit = pending_.find(r.id);
            if (pit == pending_.end())
                panic("gateway %u: batched read %llu lost", gw,
                      static_cast<unsigned long long>(r.id));
            core::MemDone done = std::move(pit->second.done);
            pending_.erase(pit);
            Packet resp;
            resp.src = NodeId{NodeKind::Gateway, gw};
            resp.dst = NodeId{NodeKind::Core, r.core};
            resp.kind = PacketKind::MemReadResp;
            resp.payloadBytes = mem::kReqHeaderBytes + r.bytes;
            resp.onDeliver = std::move(done);
            network_->send(std::move(resp));
        }
        return;
      }

      default:
        panic("gateway %u: unexpected packet kind %s", gw,
              toString(pkt.kind).c_str());
    }
}

void
SmarcoChip::stageTask(CoreId core_id, const workloads::TaskSpec &task,
                      std::function<void()> ready)
{
    if (!cfg_.dmaStaging || task.inputBytes == 0) {
        ready();
        return;
    }
    const workloads::AddressLayout layout = layoutFor(task, core_id);
    const std::uint64_t bytes =
        std::min<std::uint64_t>(task.inputBytes,
                                layout.spmLocalSize);
    dmas_[core_id]->start(layout.streamBase, layout.spmLocalBase,
                          bytes, std::move(ready));
}

void
SmarcoChip::dmaChunk(CoreId core_id, Addr src, Addr dst,
                     std::uint32_t bytes, std::function<void()> done)
{
    const bool src_dram = cfg_.map.isDram(src);
    const bool dst_dram = cfg_.map.isDram(dst);

    if (src_dram && !dst_dram) {
        // DRAM -> SPM: a read chunk request plus a data response.
        MemRequest req;
        req.id = nextReqId_++;
        req.write = false;
        req.addr = src;
        req.bytes = bytes;
        req.core = core_id;
        req.issued = sim_.now();
        pending_.emplace(req.id, PendingReq{req, std::move(done)});
        Packet pkt;
        pkt.src = NodeId{NodeKind::Core, core_id};
        pkt.dst = mcNodeFor(src);
        pkt.kind = PacketKind::DmaChunk;
        pkt.payloadBytes = mem::kReadReqBytes;
        pkt.meta = req.id;
        network_->send(std::move(pkt));
        return;
    }
    if (!src_dram && dst_dram) {
        // SPM -> DRAM: a posted write chunk carrying the payload.
        MemRequest req;
        req.id = nextReqId_++;
        req.write = true;
        req.addr = dst;
        req.bytes = bytes;
        req.core = core_id;
        req.issued = sim_.now();
        pending_.emplace(req.id, PendingReq{req, std::move(done)});
        Packet pkt;
        pkt.src = NodeId{NodeKind::Core, core_id};
        pkt.dst = mcNodeFor(dst);
        pkt.kind = PacketKind::DmaChunk;
        pkt.payloadBytes = mem::kReqHeaderBytes + bytes;
        pkt.meta = req.id;
        network_->send(std::move(pkt));
        return;
    }
    // SPM -> SPM transfer between sub-ring neighbours.
    const CoreId owner = cfg_.map.isSpm(dst) ? cfg_.map.spmOwner(dst)
                                             : core_id;
    Packet pkt;
    pkt.src = NodeId{NodeKind::Core, core_id};
    pkt.dst = NodeId{NodeKind::Core, owner};
    pkt.kind = PacketKind::DmaChunk;
    pkt.payloadBytes = mem::kReqHeaderBytes + bytes;
    pkt.onDeliver = std::move(done);
    if (pkt.src == pkt.dst) {
        // Local copy: charge a cycle per SPM word, no NoC traffic.
        sim_.events().scheduleAfter(sim_.now(), 1 + bytes / 16,
                                    std::move(pkt.onDeliver));
        return;
    }
    network_->send(std::move(pkt));
}

bool
SmarcoChip::injectCoreFault(core::ThreadFault kind, Rng &rng,
                            Cycle now)
{
    const std::uint32_t n = numCores();
    const std::uint32_t start =
        static_cast<std::uint32_t>(rng.nextBelow(n));
    for (std::uint32_t i = 0; i < n; ++i) {
        core::TcgCore &c = *cores_[(start + i) % n];
        if (c.liveContexts() > 0 &&
            c.injectThreadFault(kind, rng, now))
            return true;
    }
    return false;
}

noc::Ring &
SmarcoChip::pickRing(Rng &rng)
{
    const std::uint32_t pick = static_cast<std::uint32_t>(
        rng.nextBelow(1 + cfg_.noc.numSubRings));
    return pick == 0 ? network_->mainRing()
                     : network_->subRing(pick - 1);
}

fault::FaultTargets
SmarcoChip::faultTargets()
{
    fault::FaultTargets t;
    t.coreHang = [this](Rng &rng, Cycle now, const fault::FaultSpec &) {
        return injectCoreFault(core::ThreadFault::Hang, rng, now);
    };
    t.coreKill = [this](Rng &rng, Cycle now, const fault::FaultSpec &) {
        return injectCoreFault(core::ThreadFault::Kill, rng, now);
    };
    t.nocDegrade = [this](Rng &rng, Cycle now,
                          const fault::FaultSpec &spec) {
        noc::Ring &ring = pickRing(rng);
        const std::uint32_t stop = static_cast<std::uint32_t>(
            rng.nextBelow(ring.params().numStops));
        const std::uint32_t dir =
            static_cast<std::uint32_t>(rng.nextBelow(2));
        ring.degradeLink(stop, dir, spec.nocDegradeFactor,
                         now + spec.nocDegradeDuration);
        return true;
    };
    t.nocDup = [this](Rng &rng, Cycle, const fault::FaultSpec &) {
        pickRing(rng).armDuplicate(1);
        return true;
    };
    t.dramStall = [this](Rng &rng, Cycle now,
                         const fault::FaultSpec &spec) {
        const std::uint32_t ch = static_cast<std::uint32_t>(
            rng.nextBelow(dram_->params().channels));
        dram_->stallChannel(ch, spec.dramStallDuration, now);
        return true;
    };
    t.mactLoss = [this](Rng &rng, Cycle now,
                        const fault::FaultSpec &spec) {
        const std::uint32_t n =
            static_cast<std::uint32_t>(macts_.size());
        const std::uint32_t start =
            static_cast<std::uint32_t>(rng.nextBelow(n));
        const std::uint64_t pick = rng.next();
        for (std::uint32_t i = 0; i < n; ++i) {
            mem::Mact &m = *macts_[(start + i) % n];
            if (m.occupancy() > 0)
                return m.injectEntryLoss(
                    pick, spec.mactRecoveryLatency, now);
        }
        return false;
    };
    t.armContinuous = [this](const fault::FaultSpec &spec,
                             Rng &drop_rng) {
        if (spec.nocDropProb > 0.0) {
            noc::RingFaultParams rf;
            rf.dropProb = spec.nocDropProb;
            rf.nackDelay = spec.nocNackDelay;
            rf.maxRetransmits = spec.nocMaxRetransmits;
            rf.rng = &drop_rng;
            network_->mainRing().setFaults(rf);
            for (std::uint32_t i = 0; i < cfg_.noc.numSubRings; ++i)
                network_->subRing(i).setFaults(rf);
        }
        sched::RecoveryParams rp;
        rp.heartbeatInterval = spec.heartbeatInterval;
        rp.hangTimeout = spec.hangTimeout;
        rp.backoffBase = spec.backoffBase;
        rp.backoffMax = spec.backoffMax;
        rp.maxAttempts = spec.maxAttempts;
        for (auto &s : subScheds_)
            s->enableRecovery(rp);
    };
    t.progress = [this]() {
        std::uint64_t p = 0;
        for (const auto &c : cores_)
            p += c->committedOps();
        for (const auto &s : subScheds_)
            p += s->tasksCompleted();
        p += network_->packetsDelivered();
        p += dram_->requestsServed();
        return p;
    };
    return t;
}

} // namespace smarco::chip
