/**
 * @file
 * Top-level SmarCo chip configuration and presets.
 */
#pragma once

#include <cstdint>
#include <string>

#include "core/tcg_core.hpp"
#include "mem/dram.hpp"
#include "mem/mact.hpp"
#include "mem/mem_types.hpp"
#include "noc/direct_path.hpp"
#include "noc/network.hpp"
#include "sched/main_scheduler.hpp"
#include "sched/sub_scheduler.hpp"

namespace smarco::chip {

/** Everything needed to instantiate a SmarcoChip. */
struct ChipConfig {
    std::string name = "smarco-256";
    double freqGHz = 1.5;

    core::CoreParams core{};
    noc::NetworkParams noc{};
    noc::DirectPathParams directPath{};
    mem::MactParams mact{};
    mem::DramParams dram{};
    sched::SubSchedulerParams subSched{};
    sched::MainSchedulerParams mainSched{};
    mem::MemoryMap map{};

    /** Stage task input into the SPM with DMA before attach. */
    bool dmaStaging = true;
    /** Per-core DRAM heap region stride (keeps regions disjoint). */
    std::uint64_t heapStride = 16ull * 1024 * 1024;
    /** Per-core DRAM stream region stride. */
    std::uint64_t streamStride = 16ull * 1024 * 1024;

    std::uint32_t numCores() const
    { return noc.numSubRings * noc.coresPerSubRing; }
    std::uint32_t numThreadsTotal() const
    { return numCores() * core.numThreads; }

    /** Consistency checks; calls fatal() on bad combinations. */
    void validate() const;

    /** The paper's full 256-core, 2048-thread simulated chip. */
    static ChipConfig simulated256();

    /**
     * The taped-out TSMC 40 nm prototype: supports 256 threads at
     * most (32 TCG cores), lower frequency.
     */
    static ChipConfig prototype40nm();

    /** The 256-core FPGA verification platform (4 cores/chip,
     *  64 FPGAs) — same topology, slow clock. */
    static ChipConfig fpga256();

    /**
     * A reduced chip for component experiments: sub_rings sub-rings
     * of cores_per cores with one memory controller per 4 sub-rings
     * (minimum 1).
     */
    static ChipConfig scaled(std::uint32_t sub_rings,
                             std::uint32_t cores_per);
};

} // namespace smarco::chip
