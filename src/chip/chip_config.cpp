#include "chip/chip_config.hpp"

#include "sim/logging.hpp"

namespace smarco::chip {

void
ChipConfig::validate() const
{
    if (noc.numSubRings == 0 || noc.coresPerSubRing == 0)
        fatal("chip %s: empty topology", name.c_str());
    if (map.numCores != numCores())
        fatal("chip %s: memory map covers %u cores, chip has %u",
              name.c_str(), map.numCores, numCores());
    if (dram.channels != noc.numMemCtrls)
        fatal("chip %s: %u DRAM channels vs %u MC ring stops",
              name.c_str(), dram.channels, noc.numMemCtrls);
    if (directPath.enabled && directPath.numSubRings != noc.numSubRings)
        fatal("chip %s: direct path covers %u sub-rings, chip has %u",
              name.c_str(), directPath.numSubRings, noc.numSubRings);
    if (freqGHz <= 0.0)
        fatal("chip %s: non-positive frequency", name.c_str());
}

ChipConfig
ChipConfig::simulated256()
{
    ChipConfig cfg;
    cfg.name = "smarco-256";
    cfg.freqGHz = 1.5;
    // Defaults of the member structs already match the paper:
    // 16 sub-rings x 16 cores, 4 MCs, 8-thread TCG cores, 16 KB I/D
    // caches, 128 KB SPM, 512/256-bit rings, MACT threshold 16.
    cfg.map.numCores = cfg.numCores();
    cfg.validate();
    return cfg;
}

ChipConfig
ChipConfig::prototype40nm()
{
    ChipConfig cfg;
    cfg.name = "smarco-proto-40nm";
    // 256 threads at most: 32 cores x 8 threads, 2 sub-rings of 16.
    cfg.freqGHz = 1.0; // conservative 40 nm clock
    cfg.noc.numSubRings = 2;
    cfg.noc.numMemCtrls = 1;
    cfg.dram.channels = 1;
    cfg.directPath.numSubRings = 2;
    cfg.map.numCores = cfg.numCores();
    cfg.validate();
    return cfg;
}

ChipConfig
ChipConfig::fpga256()
{
    ChipConfig cfg;
    cfg.name = "smarco-fpga-256";
    cfg.freqGHz = 0.05; // 50 MHz emulation clock
    cfg.map.numCores = cfg.numCores();
    cfg.validate();
    return cfg;
}

ChipConfig
ChipConfig::scaled(std::uint32_t sub_rings, std::uint32_t cores_per)
{
    ChipConfig cfg;
    cfg.name = strprintf("smarco-%ux%u", sub_rings, cores_per);
    cfg.noc.numSubRings = sub_rings;
    cfg.noc.coresPerSubRing = cores_per;
    cfg.noc.numMemCtrls =
        sub_rings >= 4 && sub_rings % 4 == 0 ? 4 : 1;
    cfg.dram.channels = cfg.noc.numMemCtrls;
    cfg.directPath.numSubRings = sub_rings;
    cfg.map.numCores = cfg.numCores();
    cfg.validate();
    return cfg;
}

} // namespace smarco::chip
