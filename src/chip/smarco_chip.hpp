/**
 * @file
 * The assembled SmarCo chip: 256 TCG cores on a hierarchical ring
 * with MACTs at the gateways, a star direct datapath, four DDR4
 * channels, per-sub-ring hardware schedulers and a main scheduler
 * (Fig. 4). This class owns all components, implements the cores'
 * MemPort by routing requests through the NoC/MACT/DRAM, and exposes
 * the measurement surface the benchmarks use.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chip/chip_config.hpp"
#include "core/mem_port.hpp"
#include "fault/fault_campaign.hpp"
#include "core/tcg_core.hpp"
#include "mem/dram.hpp"
#include "mem/mact.hpp"
#include "noc/direct_path.hpp"
#include "noc/network.hpp"
#include "sched/main_scheduler.hpp"
#include "sched/sub_scheduler.hpp"
#include "sim/simulator.hpp"
#include "workloads/profile_stream.hpp"
#include "workloads/task.hpp"

namespace smarco::chip {

/** Aggregated run metrics reported by the experiment harnesses. */
struct ChipMetrics {
    Cycle cycles = 0;
    std::uint64_t tasksCompleted = 0;
    std::uint64_t opsCommitted = 0;
    double aggregateIpc = 0.0;       ///< ops / cycle, whole chip
    double tasksPerMCycle = 0.0;     ///< throughput
    double avgMemLatency = 0.0;      ///< blocking request latency
    double nocUtilisation = 0.0;
    std::uint64_t dramRequests = 0;
    std::uint64_t deadlineMisses = 0;
    /** Finish cycle of the last completed task. Faulted runs append
     *  recovery/watchdog events past the useful work, so throughput
     *  is measured against this, not the final simulator cycle. */
    Cycle lastTaskFinish = 0;
};

/**
 * The SmarCo chip. Construct with a Simulator and a ChipConfig, then
 * submit task sets through scheduler() and run the simulator.
 */
class SmarcoChip : public core::MemPort
{
  public:
    SmarcoChip(Simulator &sim, ChipConfig cfg);
    ~SmarcoChip() override;

    SmarcoChip(const SmarcoChip &) = delete;
    SmarcoChip &operator=(const SmarcoChip &) = delete;

    /** Submit tasks via the main scheduler (load-balanced). */
    void submit(const std::vector<workloads::TaskSpec> &tasks);
    /** Completion observer attached to one submitted task. */
    using TaskHook = std::function<void(const workloads::TaskSpec &,
                                        Cycle finish, CoreId core)>;
    /** Submit one task and be called back when it completes. */
    void submitWithHook(const workloads::TaskSpec &task, TaskHook hook);
    /** Submit one task directly to a chosen sub-ring. */
    void submitTo(std::uint32_t sub_ring,
                  const workloads::TaskSpec &task);

    /** Terminal outcome of one submitted request. */
    struct RequestResult {
        bool completed = false;
        /** Finish cycle (completed) or shed cycle (rejected). */
        Cycle when = 0;
        CoreId core = 0;
        /** Valid only when !completed. */
        sched::ShedReason reason = sched::ShedReason::QueueFull;
    };
    /** Observer called exactly once per request: on completion, or
     *  when admission control / load shedding rejects it. */
    using RequestHook = std::function<void(const workloads::TaskSpec &,
                                           const RequestResult &)>;

    /**
     * Turn on end-to-end overload control: admission + degraded-mode
     * shedding at the main scheduler and deadline early-drop at every
     * sub-scheduler, all reported through the request hooks. Off by
     * default — an uncontrolled run is byte-identical to older builds.
     */
    void enableOverloadControl(const sched::AdmissionParams &params);

    /** Submit one request and observe its terminal outcome. */
    void submitRequest(const workloads::TaskSpec &task,
                       RequestHook hook);

    /**
     * Run until all submitted work has drained (or max_cycles).
     * @return the cycle the run stopped at.
     */
    Cycle runUntilDone(Cycle max_cycles = 50'000'000);

    /** Snapshot of whole-chip metrics at the current cycle. */
    ChipMetrics metrics() const;

    // --- component access for tests and focused experiments -------------
    Simulator &sim() { return sim_; }
    const ChipConfig &config() const { return cfg_; }
    core::TcgCore &core(CoreId id) { return *cores_[id]; }
    std::uint32_t numCores() const
    { return static_cast<std::uint32_t>(cores_.size()); }
    sched::SubScheduler &subScheduler(std::uint32_t i)
    { return *subScheds_[i]; }
    sched::MainScheduler &scheduler() { return *mainSched_; }
    mem::DramController &dram() { return *dram_; }
    noc::Network &network() { return *network_; }
    mem::Mact &mact(std::uint32_t sub_ring)
    { return *macts_[sub_ring]; }

    /** Address layout a task sees when placed on a core. */
    workloads::AddressLayout layoutFor(const workloads::TaskSpec &task,
                                       CoreId core) const;

    /** Injection surfaces for a fault::FaultCampaign. */
    fault::FaultTargets faultTargets();

    // --- MemPort --------------------------------------------------------
    void request(CoreId core, ThreadId thread, const isa::MicroOp &op,
                 core::MemDone done) override;
    void writeback(CoreId core, Addr line_addr) override;

  private:
    struct PendingReq {
        mem::MemRequest req;
        core::MemDone done;
    };

    noc::NodeId mcNodeFor(Addr addr) const;
    /** Scan for a core with an eligible victim, starting randomly. */
    bool injectCoreFault(core::ThreadFault kind, Rng &rng, Cycle now);
    /** Ring picked uniformly among main + subs. */
    noc::Ring &pickRing(Rng &rng);
    void sendReadToMemory(const mem::MemRequest &req,
                          core::MemDone done);
    void sendWriteToMemory(const mem::MemRequest &req,
                           core::MemDone done);
    void sendViaDirectPath(const mem::MemRequest &req,
                           core::MemDone done);
    void handleMcPacket(std::uint32_t mc, noc::Packet &&pkt);
    void handleGatewayPacket(std::uint32_t gw, noc::Packet &&pkt);
    bool interceptAtGateway(std::uint32_t gw, noc::Packet &pkt);
    void onMactBatch(std::uint32_t gw, mem::MactBatch &&batch);
    /** A scheduler shed a request: resolve its outcome hook. */
    void onShed(const workloads::TaskSpec &task,
                sched::ShedReason reason, Cycle now);
    void stageTask(CoreId core, const workloads::TaskSpec &task,
                   std::function<void()> ready);
    void dmaChunk(CoreId core, Addr src, Addr dst,
                  std::uint32_t bytes, std::function<void()> done);

    Simulator &sim_;
    ChipConfig cfg_;
    std::unique_ptr<noc::Network> network_;
    std::unique_ptr<noc::DirectPath> directPath_;
    std::unique_ptr<mem::DramController> dram_;
    std::vector<std::unique_ptr<core::TcgCore>> cores_;
    std::vector<std::unique_ptr<mem::DmaEngine>> dmas_;
    std::vector<std::unique_ptr<mem::Mact>> macts_;
    std::vector<std::unique_ptr<sched::SubScheduler>> subScheds_;
    std::unique_ptr<sched::MainScheduler> mainSched_;

    std::uint64_t nextReqId_ = 1;
    /** Blocking/buffered requests travelling through the NoC. */
    std::unordered_map<std::uint64_t, PendingReq> pending_;
    /** MACT batches travelling between gateways and controllers. */
    std::unordered_map<std::uint64_t, mem::MactBatch> batchWire_;
    /** Tasks in flight between main scheduler and gateways. */
    std::unordered_map<std::uint64_t, workloads::TaskSpec> taskWire_;
    std::uint64_t nextTaskWire_ = 1;
    /** Outcome hooks keyed by TaskSpec::hookId. */
    std::unordered_map<std::uint64_t, RequestHook> requestHooks_;
    std::uint64_t nextHookId_ = 1;

    Scalar memRequests_;
    Average memLatency_;
    Scalar priorityDirect_;
};

} // namespace smarco::chip
