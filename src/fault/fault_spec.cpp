#include "fault/fault_spec.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hpp"

namespace smarco::fault {
namespace {

/**
 * Minimal recursive-descent parser for the campaign subset of JSON:
 * objects, string keys, numbers, and nested objects. Arrays, strings
 * as values, booleans and null are rejected — no campaign field needs
 * them, and a loud failure beats silently mis-reading a spec.
 */
class SpecParser
{
  public:
    SpecParser(const std::string &text, const std::string &origin)
        : text_(text), origin_(origin) {}

    void parseInto(FaultSpec &spec)
    {
        skipWs();
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            const std::string section = parseKey();
            skipWs();
            if (peek() == '{')
                parseSection(section, spec);
            else
                setField(spec, "", section, parseNumber());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                skipWs();
                continue;
            }
            expect('}');
            return;
        }
    }

  private:
    [[noreturn]] void malformed(const char *what)
    {
        fatal("fault spec %s: %s at offset %zu", origin_.c_str(),
              what, pos_);
    }

    char peek() const
    { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void expect(char c)
    {
        if (peek() != c)
            malformed(strprintf("expected '%c'", c).c_str());
        ++pos_;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string parseKey()
    {
        expect('"');
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '"')
            ++pos_;
        if (pos_ >= text_.size())
            malformed("unterminated key");
        std::string key = text_.substr(start, pos_ - start);
        ++pos_;
        skipWs();
        expect(':');
        skipWs();
        return key;
    }

    double parseNumber()
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin)
            malformed("expected a number");
        pos_ += static_cast<std::size_t>(end - begin);
        return v;
    }

    void parseSection(const std::string &section, FaultSpec &spec)
    {
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            const std::string key = parseKey();
            setField(spec, section, key, parseNumber());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                skipWs();
                continue;
            }
            expect('}');
            return;
        }
    }

    static Cycle asCycle(double v)
    { return v <= 0.0 ? 0 : static_cast<Cycle>(v); }

    void setField(FaultSpec &spec, const std::string &section,
                  const std::string &key, double v)
    {
        const std::string path =
            section.empty() ? key : section + "." + key;
        if (path == "core.hangRate")
            spec.coreHangRate = v;
        else if (path == "core.killRate")
            spec.coreKillRate = v;
        else if (path == "noc.dropProb")
            spec.nocDropProb = v;
        else if (path == "noc.nackDelay")
            spec.nocNackDelay = asCycle(v);
        else if (path == "noc.maxRetransmits")
            spec.nocMaxRetransmits = static_cast<std::uint32_t>(v);
        else if (path == "noc.degradeRate")
            spec.nocDegradeRate = v;
        else if (path == "noc.degradeFactor")
            spec.nocDegradeFactor = v;
        else if (path == "noc.degradeDuration")
            spec.nocDegradeDuration = asCycle(v);
        else if (path == "noc.dupRate")
            spec.nocDupRate = v;
        else if (path == "dram.stallRate")
            spec.dramStallRate = v;
        else if (path == "dram.stallDuration")
            spec.dramStallDuration = asCycle(v);
        else if (path == "mact.lossRate")
            spec.mactLossRate = v;
        else if (path == "mact.recoveryLatency")
            spec.mactRecoveryLatency = asCycle(v);
        else if (path == "recovery.heartbeatInterval")
            spec.heartbeatInterval = asCycle(v);
        else if (path == "recovery.hangTimeout")
            spec.hangTimeout = asCycle(v);
        else if (path == "recovery.backoffBase")
            spec.backoffBase = asCycle(v);
        else if (path == "recovery.backoffMax")
            spec.backoffMax = asCycle(v);
        else if (path == "recovery.maxAttempts")
            spec.maxAttempts = static_cast<std::uint32_t>(v);
        else if (path == "campaign.horizon")
            spec.horizon = asCycle(v);
        else if (path == "campaign.watchdogInterval")
            spec.watchdogInterval = asCycle(v);
        else if (path == "campaign.rateScale")
            spec.rateScale = v;
        else if (path == "campaign.rateScaleCeiling")
            spec.rateScaleCeiling = v;
        else
            warn("fault spec %s: ignoring unknown key \"%s\"",
                 origin_.c_str(), path.c_str());
    }

    const std::string &text_;
    const std::string &origin_;
    std::size_t pos_ = 0;
};

} // namespace

bool
FaultSpec::anyFaults() const
{
    const double rates = coreHangRate + coreKillRate + nocDegradeRate +
                         nocDupRate + dramStallRate + mactLossRate;
    return (rates > 0.0 && rateScale > 0.0 && horizon > 0) ||
           nocDropProb > 0.0;
}

FaultSpec
FaultSpec::fromJsonText(const std::string &text,
                        const std::string &origin)
{
    FaultSpec spec;
    SpecParser(text, origin).parseInto(spec);
    if (spec.nocDropProb < 0.0 || spec.nocDropProb >= 1.0)
        fatal("fault spec %s: noc.dropProb %.3f outside [0,1)",
              origin.c_str(), spec.nocDropProb);
    if (spec.nocDegradeFactor <= 0.0 || spec.nocDegradeFactor > 1.0)
        fatal("fault spec %s: noc.degradeFactor %.3f outside (0,1]",
              origin.c_str(), spec.nocDegradeFactor);
    if (spec.rateScale < 0.0)
        fatal("fault spec %s: negative rateScale", origin.c_str());
    return spec;
}

FaultSpec
FaultSpec::fromJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("fault spec: cannot open %s", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromJsonText(buf.str(), path);
}

} // namespace smarco::fault
