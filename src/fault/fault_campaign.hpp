/**
 * @file
 * Deterministic fault-injection campaign.
 *
 * A FaultCampaign turns a FaultSpec into a pre-generated, seeded
 * sequence of fault arrivals and replays it through the event queue.
 * Every random draw comes from named "fault.*" streams, so arming a
 * campaign never perturbs workload or scheduler randomness, and an
 * inert campaign (all rates zero) leaves the run byte-identical to a
 * campaign-free one. Arrivals are generated up front — not as the
 * run unfolds — so the same spec and seed give the same injection
 * cycles in the cycle-accurate and fast-forward kernels alike.
 *
 * The chip exposes its injectable surfaces as FaultTargets hooks; the
 * campaign stays ignorant of chip internals and depends only on the
 * sim layer.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "fault/fault_spec.hpp"
#include "sim/observability.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace smarco::fault {

/** The six scheduled fault sources. */
enum class FaultKind : std::uint8_t {
    CoreHang,
    CoreKill,
    NocDegrade,
    NocDup,
    DramStall,
    MactLoss,
};
inline constexpr std::size_t kNumFaultKinds = 6;

const char *faultKindName(FaultKind kind);

/** One executed injection attempt. */
struct FaultRecord {
    Cycle cycle = 0;
    FaultKind kind = FaultKind::CoreHang;
    /** False when no eligible victim existed at that cycle. */
    bool hit = false;
};

/**
 * Injection surfaces of one chip. Each hook attempts one injection
 * (picking a victim from the supplied per-kind Rng) and reports
 * whether it landed. armContinuous installs the always-on knobs:
 * ring drop probability and scheduler recovery. progress returns a
 * monotonically growing work counter for the watchdog.
 */
struct FaultTargets {
    using InjectFn =
        std::function<bool(Rng &, Cycle, const FaultSpec &)>;

    InjectFn coreHang;
    InjectFn coreKill;
    InjectFn nocDegrade;
    InjectFn nocDup;
    InjectFn dramStall;
    InjectFn mactLoss;
    /**
     * Install the always-on knobs: ring drop probability (drawing
     * from the campaign-owned drop_rng, which outlives the run) and
     * scheduler recovery.
     */
    std::function<void(const FaultSpec &, Rng &drop_rng)>
        armContinuous;
    std::function<std::uint64_t()> progress;
};

/**
 * Per-fault record log, exported under "fault.log" in the stats JSON
 * so --stats-json runs carry their injection history. Capped: a long
 * campaign keeps the first kMaxRecords and sets "truncated".
 */
class FaultLog : public Stat
{
  public:
    using Stat::Stat;

    static constexpr std::size_t kMaxRecords = 256;

    void record(const FaultRecord &r);

    const std::vector<FaultRecord> &records() const { return records_; }

    double value() const override
    { return static_cast<double>(total_); }
    void reset() override;
    void printJson(std::ostream &os) const override;

  private:
    std::vector<FaultRecord> records_;
    std::uint64_t total_ = 0;
};

/**
 * The campaign. Construct with the spec and the fault seed, then
 * arm() with a chip's targets after the chip is built and before the
 * run starts. The campaign must outlive the run: pending injection
 * and watchdog events hold a pointer to it.
 */
class FaultCampaign
{
  public:
    FaultCampaign(Simulator &sim, FaultSpec spec, std::uint64_t seed);

    /** Generate the arrival sequence and start the event chains. */
    void arm(const FaultTargets &targets);

    const FaultSpec &spec() const { return spec_; }
    bool armed() const { return armed_; }

    std::uint64_t injected() const
    { return injected_ ? static_cast<std::uint64_t>(injected_->value())
                       : 0; }
    std::uint64_t noVictim() const
    { return noVictim_ ? static_cast<std::uint64_t>(noVictim_->value())
                       : 0; }
    const FaultLog *log() const { return log_.get(); }

  private:
    struct Arrival {
        Cycle cycle = 0;
        std::uint8_t src = 0; ///< index into FaultKind
    };

    void generate();
    void scheduleNext(std::size_t idx);
    void fire(std::size_t idx);
    void scheduleWatchdog(Cycle when);
    [[noreturn]] void watchdogAbort(Cycle now);

    Simulator &sim_;
    FaultSpec spec_;
    std::uint64_t seed_;
    FaultTargets targets_;
    bool armed_ = false;

    std::vector<Arrival> arrivals_;
    std::array<Rng, kNumFaultKinds> pickRngs_;
    /** Per-crossing drop draws; handed to the rings via a pointer. */
    Rng dropRng_;
    std::uint64_t lastProgress_ = 0;
    bool progressSeen_ = false;

    // Created lazily on arm(): an inert campaign registers nothing,
    // keeping zero-fault runs byte-identical to campaign-free runs.
    std::unique_ptr<Scalar> injected_;
    std::unique_ptr<Scalar> noVictim_;
    std::array<std::unique_ptr<Scalar>, kNumFaultKinds> byKind_;
    std::unique_ptr<FaultLog> log_;
};

/**
 * When the process was launched with --faults=campaign.json, build a
 * campaign from the CLI options and arm it with the chip's targets;
 * return null (and do nothing) otherwise. Works with any chip that
 * exposes faultTargets(). The caller keeps the campaign alive for
 * the duration of the run. Every bench and example routes through
 * this, so --faults / --fault-seed behave uniformly everywhere.
 */
template <typename Chip>
inline std::unique_ptr<FaultCampaign>
armFaultsFromCli(Simulator &sim, Chip &chip)
{
    if (!obsOptions().faultsWanted())
        return nullptr;
    auto campaign = std::make_unique<FaultCampaign>(
        sim, FaultSpec::fromJsonFile(obsOptions().faultsPath),
        obsOptions().faultSeed);
    campaign->arm(chip.faultTargets());
    return campaign;
}

} // namespace smarco::fault
