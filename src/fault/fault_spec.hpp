/**
 * @file
 * Fault-campaign specification.
 *
 * A campaign is described by a small JSON file (see README "Fault
 * injection") with two-level sections: core / noc / dram / mact pick
 * the fault surfaces, recovery tunes the scheduler's heartbeat
 * recovery, campaign sets the horizon and sweep scaling. All rates
 * are expected injections per million cycles; a rate of 0 disables
 * that source. The same spec plus the same seed reproduces the exact
 * same fault sequence in both kernel modes.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"

namespace smarco::fault {

struct FaultSpec {
    /** Expected injections per million cycles, per source. */
    double coreHangRate = 0.0;
    double coreKillRate = 0.0;
    double nocDegradeRate = 0.0;
    double nocDupRate = 0.0;
    double dramStallRate = 0.0;
    double mactLossRate = 0.0;

    /** Continuous per-crossing packet-drop probability on rings. */
    double nocDropProb = 0.0;
    Cycle nocNackDelay = 12;
    std::uint32_t nocMaxRetransmits = 4;
    /** Link degradation: bandwidth multiplier and window length. */
    double nocDegradeFactor = 0.5;
    Cycle nocDegradeDuration = 20'000;

    Cycle dramStallDuration = 10'000;
    Cycle mactRecoveryLatency = 400;

    /** Injections stop after this many cycles. */
    Cycle horizon = 2'000'000;
    /** Watchdog progress-check period (0 disables the watchdog). */
    Cycle watchdogInterval = 250'000;

    /** Scheduler recovery knobs (mirrors sched::RecoveryParams). */
    Cycle heartbeatInterval = 10'000;
    Cycle hangTimeout = 60'000;
    Cycle backoffBase = 500;
    Cycle backoffMax = 32'000;
    std::uint32_t maxAttempts = 8;

    /**
     * Sweep scaling: every rate is multiplied by rateScale. When
     * rateScaleCeiling >= rateScale, arrival candidates are generated
     * at the ceiling rate and thinned down to rateScale, so the
     * accepted fault sets of a sweep are nested subsets — throughput
     * curves degrade monotonically instead of jumping between
     * unrelated fault sequences.
     */
    double rateScale = 1.0;
    double rateScaleCeiling = 0.0; ///< 0: no thinning

    /** True when any source can fire (rates or continuous drops). */
    bool anyFaults() const;

    /**
     * Parse a campaign spec. Malformed JSON is a user error (fatal);
     * unknown keys warn and are ignored so specs stay forward
     * compatible. origin names the source in diagnostics.
     */
    static FaultSpec fromJsonText(const std::string &text,
                                  const std::string &origin);
    static FaultSpec fromJsonFile(const std::string &path);
};

} // namespace smarco::fault
