#include "fault/fault_campaign.hpp"

#include <algorithm>
#include <iostream>
#include <utility>

#include "sim/json_writer.hpp"
#include "sim/logging.hpp"

namespace smarco::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CoreHang:   return "coreHang";
      case FaultKind::CoreKill:   return "coreKill";
      case FaultKind::NocDegrade: return "nocDegrade";
      case FaultKind::NocDup:     return "nocDup";
      case FaultKind::DramStall:  return "dramStall";
      case FaultKind::MactLoss:   return "mactLoss";
    }
    return "unknown";
}

void
FaultLog::record(const FaultRecord &r)
{
    ++total_;
    if (records_.size() < kMaxRecords)
        records_.push_back(r);
}

void
FaultLog::reset()
{
    records_.clear();
    total_ = 0;
}

void
FaultLog::printJson(std::ostream &os) const
{
    printJsonHead(os, "faultlog");
    os << ",\"truncated\":"
       << (total_ > records_.size() ? "true" : "false")
       << ",\"records\":[";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const FaultRecord &r = records_[i];
        os << (i ? "," : "") << "{\"cycle\":" << r.cycle
           << ",\"kind\":\"" << faultKindName(r.kind)
           << "\",\"hit\":" << (r.hit ? "true" : "false") << '}';
    }
    os << "]}";
}

FaultCampaign::FaultCampaign(Simulator &sim, FaultSpec spec,
                             std::uint64_t seed)
    : sim_(sim), spec_(spec), seed_(seed)
{
}

void
FaultCampaign::arm(const FaultTargets &targets)
{
    if (armed_)
        panic("fault campaign armed twice");
    targets_ = targets;
    if (!spec_.anyFaults())
        return; // inert: register nothing, schedule nothing
    armed_ = true;

    StatRegistry &stats = sim_.stats();
    injected_ = std::make_unique<Scalar>(
        stats, "fault.injected",
        "scheduled injections that found a victim");
    noVictim_ = std::make_unique<Scalar>(
        stats, "fault.noVictim",
        "scheduled injections with no eligible victim");
    for (std::size_t i = 0; i < kNumFaultKinds; ++i)
        byKind_[i] = std::make_unique<Scalar>(
            stats,
            std::string("fault.hits.") +
                faultKindName(static_cast<FaultKind>(i)),
            "injections landed, by kind");
    log_ = std::make_unique<FaultLog>(
        stats, "fault.log", "per-fault injection records");

    dropRng_ = namedRng(seed_, "fault.drop");
    if (targets_.armContinuous)
        targets_.armContinuous(spec_, dropRng_);
    generate();
    if (!arrivals_.empty())
        scheduleNext(0);
    if (spec_.watchdogInterval > 0 && targets_.progress)
        scheduleWatchdog(sim_.now() + spec_.watchdogInterval);
}

void
FaultCampaign::generate()
{
    const std::array<double, kNumFaultKinds> rates = {
        spec_.coreHangRate, spec_.coreKillRate, spec_.nocDegradeRate,
        spec_.nocDupRate,   spec_.dramStallRate, spec_.mactLossRate,
    };
    // Sweep thinning: candidates are generated at the ceiling rate
    // and accepted with rateScale/genScale from a separate stream, so
    // the gap sequence is identical at every sweep point and the
    // accepted sets are nested subsets — fault load scales without
    // swapping in an unrelated fault sequence.
    const double genScale =
        std::max(spec_.rateScale, spec_.rateScaleCeiling);
    for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
        const std::string name =
            faultKindName(static_cast<FaultKind>(i));
        pickRngs_[i] = namedRng(seed_, "fault.pick." + name);
        const double rate = rates[i];
        if (rate <= 0.0 || spec_.rateScale <= 0.0 || genScale <= 0.0)
            continue;
        const double meanGap = 1e6 / (rate * genScale);
        const std::uint64_t gapCap =
            static_cast<std::uint64_t>(8.0 * meanGap) + 1;
        const double acceptProb = spec_.rateScale / genScale;
        Rng gapRng = namedRng(seed_, "fault.gap." + name);
        Rng acceptRng = namedRng(seed_, "fault.accept." + name);
        Cycle t = 0;
        for (;;) {
            t += 1 + gapRng.nextGeometric(meanGap, gapCap);
            if (t >= spec_.horizon)
                break;
            // chance() draws nothing at p >= 1, and the full set is a
            // superset of every thinned one, so nesting still holds.
            if (acceptProb >= 1.0 || acceptRng.chance(acceptProb))
                arrivals_.push_back(
                    {t, static_cast<std::uint8_t>(i)});
        }
    }
    std::sort(arrivals_.begin(), arrivals_.end(),
              [](const Arrival &a, const Arrival &b) {
                  return a.cycle != b.cycle ? a.cycle < b.cycle
                                            : a.src < b.src;
              });
}

void
FaultCampaign::scheduleNext(std::size_t idx)
{
    if (idx >= arrivals_.size())
        return;
    const Cycle when = std::max(arrivals_[idx].cycle, sim_.now());
    sim_.events().schedule(when, [this, idx]() { fire(idx); });
}

void
FaultCampaign::fire(std::size_t idx)
{
    if (!sim_.anyBusy())
        return; // workload drained: stop the injection chain
    const Arrival &a = arrivals_[idx];
    const FaultKind kind = static_cast<FaultKind>(a.src);
    const FaultTargets::InjectFn *hook = nullptr;
    switch (kind) {
      case FaultKind::CoreHang:   hook = &targets_.coreHang;   break;
      case FaultKind::CoreKill:   hook = &targets_.coreKill;   break;
      case FaultKind::NocDegrade: hook = &targets_.nocDegrade; break;
      case FaultKind::NocDup:     hook = &targets_.nocDup;     break;
      case FaultKind::DramStall:  hook = &targets_.dramStall;  break;
      case FaultKind::MactLoss:   hook = &targets_.mactLoss;   break;
    }
    const Cycle now = sim_.now();
    const bool hit =
        (hook && *hook) ? (*hook)(pickRngs_[a.src], now, spec_)
                        : false;
    if (hit) {
        ++*injected_;
        ++*byKind_[a.src];
    } else {
        ++*noVictim_;
    }
    log_->record({now, kind, hit});
    if (sim_.trace().enabled(TraceCat::Fault))
        sim_.trace().instant(
            TraceCat::Fault,
            std::string("campaign.") + faultKindName(kind), now, 0,
            strprintf("{\"hit\":%s}", hit ? "true" : "false"));
    scheduleNext(idx + 1);
}

void
FaultCampaign::scheduleWatchdog(Cycle when)
{
    sim_.events().schedule(when, [this, when]() {
        if (!sim_.anyBusy())
            return; // run complete: watchdog retires
        const std::uint64_t cur = targets_.progress();
        if (progressSeen_ && cur == lastProgress_)
            watchdogAbort(when);
        progressSeen_ = true;
        lastProgress_ = cur;
        scheduleWatchdog(when + spec_.watchdogInterval);
    });
}

void
FaultCampaign::watchdogAbort(Cycle now)
{
    std::cerr << "fault watchdog: no forward progress in "
              << spec_.watchdogInterval << " cycles at cycle " << now
              << "; stats follow\n";
    sim_.stats().dumpJson(std::cerr);
    std::cerr << '\n';
    fatal("fault watchdog: simulation wedged at cycle %llu",
          static_cast<unsigned long long>(now));
}

} // namespace smarco::fault
