#include "runtime/overload.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace smarco::runtime {

OverloadDriver::OverloadDriver(chip::SmarcoChip &chip,
                               OverloadParams params,
                               const std::string &stat_prefix)
    : chip_(chip),
      sim_(chip.sim()),
      params_(params),
      backoffRng_(namedRng(params.seed, "overload.backoff")),
      requests_(sim_.stats(), stat_prefix + ".requests",
                "requests driven (open loop)"),
      completed_(sim_.stats(), stat_prefix + ".completed",
                 "requests completed"),
      goodput_(sim_.stats(), stat_prefix + ".goodput",
               "completions meeting their deadline (or best-effort)"),
      sloMisses_(sim_.stats(), stat_prefix + ".sloMisses",
                 "completions past their deadline"),
      retries_(sim_.stats(), stat_prefix + ".retries",
               "shed requests resubmitted after backoff"),
      shed_(sim_.stats(), stat_prefix + ".shed",
            "shed events observed (including retried ones)"),
      expired_(sim_.stats(), stat_prefix + ".expired",
               "requests given up (deadline unreachable or retries "
               "exhausted)"),
      e2eLatency_(sim_.stats(), stat_prefix + ".e2eLatency",
                  "arrival-to-completion latency of completed "
                  "requests (cycles)",
                  0.0, params.latencyHistMax,
                  params.latencyHistBuckets)
{
    if (params_.backoffBase == 0)
        fatal("overload driver: zero backoff base");
}

void
OverloadDriver::drive(const std::vector<workloads::TaskSpec> &requests)
{
    for (const auto &r : requests) {
        ++requests_;
        ++pending_;
        if (r.release <= sim_.now()) {
            submitOne(r, r.release, 0);
            continue;
        }
        auto t = r;
        sim_.events().schedule(r.release, [this, t]() {
            submitOne(t, t.release, 0);
        });
    }
}

void
OverloadDriver::submitOne(const workloads::TaskSpec &task,
                          Cycle arrival, std::uint32_t attempt)
{
    chip_.submitRequest(
        task, [this, arrival, attempt](
                  const workloads::TaskSpec &t,
                  const chip::SmarcoChip::RequestResult &res) {
            onOutcome(t, res, arrival, attempt);
        });
}

void
OverloadDriver::onOutcome(const workloads::TaskSpec &task,
                          const chip::SmarcoChip::RequestResult &res,
                          Cycle arrival, std::uint32_t attempt)
{
    if (res.completed) {
        --pending_;
        ++completed_;
        e2eLatency_.sample(static_cast<double>(res.when - arrival));
        if (!task.hasDeadline() || res.when <= task.deadline)
            ++goodput_;
        else
            ++sloMisses_;
        return;
    }

    ++shed_;
    // Terminal sheds: the deadline is provably unreachable, so a
    // retry could only add load without ever counting as goodput.
    const bool terminal = res.reason == sched::ShedReason::Expired ||
                          res.reason == sched::ShedReason::Infeasible;
    const Cycle now = res.when;
    if (!terminal && attempt < params_.maxRetries) {
        const std::uint32_t shift = std::min<std::uint32_t>(attempt, 20);
        Cycle backoff = std::min<Cycle>(
            params_.backoffBase << shift, params_.backoffMax);
        // Jitter decorrelates the retry herd that a synchronized
        // backoff would re-inject all at once.
        backoff += backoffRng_.nextBelow(backoff / 2 + 1);
        const Cycle retry_at = now + backoff;
        // SLO bound: never retry past the point where even an
        // immediate dispatch would miss the deadline.
        if (!task.hasDeadline() ||
            retry_at + task.numOps <= task.deadline) {
            ++retries_;
            if (sim_.trace().enabled(TraceCat::Runtime))
                sim_.trace().instant(
                    TraceCat::Runtime, "request.retry", now, 0,
                    strprintf("{\"task\":%llu,\"attempt\":%u,"
                              "\"backoff\":%llu}",
                              static_cast<unsigned long long>(task.id),
                              attempt + 1,
                              static_cast<unsigned long long>(backoff)));
            auto t = task;
            sim_.events().schedule(retry_at, [this, t, arrival,
                                              attempt]() {
                submitOne(t, arrival, attempt + 1);
            });
            return;
        }
    }

    --pending_;
    ++expired_;
    if (sim_.trace().enabled(TraceCat::Runtime))
        sim_.trace().instant(
            TraceCat::Runtime, "request.expire", now, 0,
            strprintf("{\"task\":%llu,\"reason\":\"%s\"}",
                      static_cast<unsigned long long>(task.id),
                      sched::shedReasonName(res.reason)));
}

} // namespace smarco::runtime
