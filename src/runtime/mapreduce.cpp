#include "runtime/mapreduce.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::runtime {

void
Emitter::emit(std::string key, std::string value)
{
    pairs_.push_back(KeyValue{std::move(key), std::move(value)});
}

std::vector<std::string>
sliceText(const std::string &input, std::uint64_t slice_bytes)
{
    std::vector<std::string> slices;
    if (slice_bytes == 0)
        fatal("sliceText: zero slice size");
    std::size_t pos = 0;
    while (pos < input.size()) {
        std::size_t end = std::min(input.size(), pos + slice_bytes);
        // Extend to the next whitespace so words are not split.
        while (end < input.size() && input[end] != ' ' &&
               input[end] != '\n')
            ++end;
        slices.push_back(input.substr(pos, end - pos));
        pos = end;
    }
    if (slices.empty())
        slices.push_back("");
    return slices;
}

MapReduceJob::MapReduceJob(MapFn map, ReduceFn reduce, Config config)
    : map_(std::move(map)),
      reduce_(std::move(reduce)),
      cfg_(config)
{
    if (!map_ || !reduce_)
        fatal("MapReduceJob: missing map or reduce function");
    if (!cfg_.profile)
        fatal("MapReduceJob: config needs a workload profile");
}

std::map<std::string, std::string>
MapReduceJob::run(chip::SmarcoChip &chip, const std::string &input)
{
    stats_ = JobStats{};
    const Cycle start = chip.sim().now();

    // ---- Map stage: one simulated task per input slice; the host
    // executes the functional map on the same slice.
    const auto slices = sliceText(input, cfg_.sliceBytes);
    std::vector<Emitter> emitters(slices.size());
    std::vector<workloads::TaskSpec> map_tasks;
    map_tasks.reserve(slices.size());
    for (std::size_t i = 0; i < slices.size(); ++i) {
        map_(slices[i], emitters[i]);
        workloads::TaskSpec t;
        t.id = static_cast<TaskId>(i);
        t.profile = cfg_.profile;
        t.numOps = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                static_cast<double>(slices[i].size()) *
                cfg_.mapOpsPerByte),
            256);
        t.inputBytes = slices[i].size();
        t.seed = cfg_.seed * 7919 + i;
        map_tasks.push_back(t);
    }
    stats_.mapTasks = map_tasks.size();
    chip.submit(map_tasks);
    chip.runUntilDone();
    stats_.mapCycles = chip.sim().now() - start;
    if (chip.sim().trace().enabled(TraceCat::Runtime))
        chip.sim().trace().complete(
            TraceCat::Runtime, "map", start, chip.sim().now(), 0,
            strprintf("{\"tasks\":%llu,\"slices\":%zu}",
                      static_cast<unsigned long long>(
                          stats_.mapTasks),
                      slices.size()));

    // ---- Shuffle: hash-partition emitted pairs among reducers.
    std::uint32_t partitions = cfg_.reducePartitions;
    if (partitions == 0)
        partitions = chip.config().noc.numSubRings;
    std::vector<std::map<std::string, std::vector<std::string>>>
        buckets(partitions);
    for (const auto &em : emitters) {
        stats_.pairsEmitted += em.pairs().size();
        for (const auto &kv : em.pairs()) {
            std::uint64_t h = 1469598103934665603ULL;
            for (char c : kv.key) {
                h ^= static_cast<unsigned char>(c);
                h *= 1099511628211ULL;
            }
            buckets[h % partitions][kv.key].push_back(kv.value);
        }
    }

    if (chip.sim().trace().enabled(TraceCat::Runtime))
        chip.sim().trace().instant(
            TraceCat::Runtime, "shuffle", chip.sim().now(), 0,
            strprintf("{\"pairs\":%llu,\"partitions\":%u}",
                      static_cast<unsigned long long>(
                          stats_.pairsEmitted),
                      partitions));

    // ---- Reduce stage: one simulated task per non-empty partition;
    // the host executes the functional reduce.
    const Cycle reduce_start = chip.sim().now();
    std::map<std::string, std::string> result;
    std::vector<workloads::TaskSpec> reduce_tasks;
    for (std::uint32_t p = 0; p < partitions; ++p) {
        if (buckets[p].empty())
            continue;
        std::uint64_t pairs = 0;
        for (auto &[key, values] : buckets[p]) {
            result[key] = reduce_(key, values);
            pairs += values.size();
        }
        workloads::TaskSpec t;
        t.id = static_cast<TaskId>(1'000'000 + p);
        t.profile = cfg_.profile;
        t.numOps = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                static_cast<double>(pairs) * cfg_.reduceOpsPerPair),
            256);
        t.inputBytes = pairs * 16;
        t.seed = cfg_.seed * 104729 + p;
        reduce_tasks.push_back(t);
    }
    stats_.reduceTasks = reduce_tasks.size();
    if (!reduce_tasks.empty()) {
        chip.submit(reduce_tasks);
        chip.runUntilDone();
    }
    stats_.reduceCycles = chip.sim().now() - reduce_start;
    stats_.totalCycles = chip.sim().now() - start;
    if (chip.sim().trace().enabled(TraceCat::Runtime))
        chip.sim().trace().complete(
            TraceCat::Runtime, "reduce", reduce_start,
            chip.sim().now(), 0,
            strprintf("{\"tasks\":%llu}",
                      static_cast<unsigned long long>(
                          stats_.reduceTasks)));
    return result;
}

} // namespace smarco::runtime
