/**
 * @file
 * SLO-bounded request driver: the client side of overload control.
 *
 * The OverloadDriver plays the role of the serving tier in front of
 * the chip. It submits an open-loop request stream (see
 * workloads/request_gen.hpp) at each request's arrival cycle, and
 * when the chip's admission control sheds a request it retries with
 * bounded exponential backoff — capped by the request's own deadline,
 * so a retry that could no longer meet the SLO is given up instead of
 * adding load. Every request resolves exactly once: completed (and
 * either met its deadline — goodput — or missed it), or expired
 * (shed terminally / retries exhausted / deadline unreachable).
 *
 * Backoff jitter draws from the named "overload.backoff" stream, so
 * driving a run never perturbs workload, scheduler, or fault draws,
 * and the same seed replays byte-identically in both kernel modes.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/smarco_chip.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/task.hpp"

namespace smarco::runtime {

/** Retry/backoff knobs of the request driver. */
struct OverloadParams {
    /** Retry backoff: min(base << attempt, max) plus jitter. */
    Cycle backoffBase = 2'000;
    Cycle backoffMax = 64'000;
    /** Retries per request after which it is given up. */
    std::uint32_t maxRetries = 8;
    /** Seed of the "overload.backoff" jitter stream. */
    std::uint64_t seed = 1;
    /** End-to-end latency histogram range (cycles) and resolution. */
    double latencyHistMax = 4'000'000.0;
    std::uint32_t latencyHistBuckets = 64;
};

/**
 * The driver. Construct against a chip with overload control
 * enabled, drive() a pre-generated request stream, run the
 * simulator, then read the lifecycle stats.
 */
class OverloadDriver
{
  public:
    OverloadDriver(chip::SmarcoChip &chip, OverloadParams params,
                   const std::string &stat_prefix = "runtime.overload");

    /**
     * Schedule open-loop submission of every request at its release
     * cycle. May be called repeatedly (e.g. one call per traffic
     * class); id ranges must not collide.
     */
    void drive(const std::vector<workloads::TaskSpec> &requests);

    std::uint64_t requests() const
    { return static_cast<std::uint64_t>(requests_.value()); }
    std::uint64_t completed() const
    { return static_cast<std::uint64_t>(completed_.value()); }
    /** Completions that met their deadline (or had none). */
    std::uint64_t goodput() const
    { return static_cast<std::uint64_t>(goodput_.value()); }
    std::uint64_t sloMisses() const
    { return static_cast<std::uint64_t>(sloMisses_.value()); }
    std::uint64_t retries() const
    { return static_cast<std::uint64_t>(retries_.value()); }
    std::uint64_t shedEvents() const
    { return static_cast<std::uint64_t>(shed_.value()); }
    /** Requests given up: terminally shed or retries exhausted. */
    std::uint64_t expired() const
    { return static_cast<std::uint64_t>(expired_.value()); }
    /** Requests submitted but not yet resolved. */
    std::uint64_t pending() const { return pending_; }

    const Histogram &latency() const { return e2eLatency_; }

  private:
    void submitOne(const workloads::TaskSpec &task, Cycle arrival,
                   std::uint32_t attempt);
    void onOutcome(const workloads::TaskSpec &task,
                   const chip::SmarcoChip::RequestResult &res,
                   Cycle arrival, std::uint32_t attempt);

    chip::SmarcoChip &chip_;
    Simulator &sim_;
    OverloadParams params_;
    Rng backoffRng_;
    std::uint64_t pending_ = 0;

    Scalar requests_;
    Scalar completed_;
    Scalar goodput_;
    Scalar sloMisses_;
    Scalar retries_;
    Scalar shed_;
    Scalar expired_;
    Histogram e2eLatency_;
};

} // namespace smarco::runtime
