/**
 * @file
 * MapReduce programming framework (Section 3.6, Fig. 15).
 *
 * The framework is functional + timed: map and reduce functions are
 * real C++ callables executed on the host against real data, while
 * simulated tasks of matching size run on the SmarCo chip so that
 * stage timing, scheduling, DMA staging and NoC/memory traffic are
 * all accounted. The master node is the host CPU; map tasks and
 * reduce tasks become chip tasks on the sub-rings, mirroring the
 * paper's Fig. 15 flow: slice input -> map on TCG cores (results in
 * SPM) -> reduce sub-rings -> merge on the master.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chip/smarco_chip.hpp"
#include "workloads/profile.hpp"
#include "workloads/task.hpp"

namespace smarco::runtime {

/** Key/value pair emitted by map functions. */
struct KeyValue {
    std::string key;
    std::string value;
};

/** Collector handed to map functions. */
class Emitter
{
  public:
    void emit(std::string key, std::string value);
    const std::vector<KeyValue> &pairs() const { return pairs_; }

  private:
    std::vector<KeyValue> pairs_;
};

/** Timing/result summary of one MapReduce job. */
struct JobStats {
    Cycle mapCycles = 0;     ///< simulated cycles of the map stage
    Cycle reduceCycles = 0;  ///< simulated cycles of the reduce stage
    Cycle totalCycles = 0;
    std::uint64_t mapTasks = 0;
    std::uint64_t reduceTasks = 0;
    std::uint64_t pairsEmitted = 0;
};

/**
 * A MapReduce job. K/V are strings (Phoenix++-style generic layer);
 * typed wrappers can sit on top.
 */
class MapReduceJob
{
  public:
    /** map(slice, emitter): process one input slice. */
    using MapFn = std::function<void(const std::string &, Emitter &)>;
    /** reduce(key, values) -> final value for the key. */
    using ReduceFn = std::function<std::string(
        const std::string &, const std::vector<std::string> &)>;

    struct Config {
        /** Workload profile used to time the simulated tasks. */
        const workloads::BenchProfile *profile = nullptr;
        /** Bytes of input per map slice. */
        std::uint64_t sliceBytes = 16 * 1024;
        /** Number of reduce partitions (0 = one per sub-ring). */
        std::uint32_t reducePartitions = 0;
        /** Simulated micro-ops charged per input byte mapped. */
        double mapOpsPerByte = 1.6;
        /** Simulated micro-ops charged per pair reduced. */
        double reduceOpsPerPair = 60.0;
        std::uint64_t seed = 1;
    };

    MapReduceJob(MapFn map, ReduceFn reduce, Config config);

    /**
     * Execute the job on a chip: slices the input, runs the map stage
     * as simulated tasks (executing the functional map host-side),
     * shuffles by key hash, runs the reduce stage, and merges.
     */
    std::map<std::string, std::string>
    run(chip::SmarcoChip &chip, const std::string &input);

    const JobStats &stats() const { return stats_; }

  private:
    MapFn map_;
    ReduceFn reduce_;
    Config cfg_;
    JobStats stats_;
};

/** Split text into slices of roughly slice_bytes at word boundaries. */
std::vector<std::string> sliceText(const std::string &input,
                                   std::uint64_t slice_bytes);

} // namespace smarco::runtime
