#include "runtime/threading.hpp"

#include "sim/logging.hpp"

namespace smarco::runtime {

ThreadApi::ThreadApi(chip::SmarcoChip &chip)
    : chip_(chip)
{
}

ThreadHandle
ThreadApi::threadCreate(const workloads::TaskSpec &task)
{
    auto handle = std::make_shared<ThreadResult>();
    handles_.push_back(handle);
    ++created_;

    // Completion is observed through the sub-scheduler exit records;
    // wire a per-task hook by submitting through the main scheduler
    // with the handle attached via the chip's completion plumbing.
    chip_.submitWithHook(task,
        [handle](const workloads::TaskSpec &, Cycle finish,
                 CoreId core) {
            handle->finished = true;
            handle->finishCycle = finish;
            handle->core = core;
        });
    return handle;
}

std::vector<ThreadHandle>
ThreadApi::threadCreateAll(const std::vector<workloads::TaskSpec> &tasks)
{
    std::vector<ThreadHandle> out;
    out.reserve(tasks.size());
    for (const auto &t : tasks)
        out.push_back(threadCreate(t));
    return out;
}

Cycle
ThreadApi::joinAll(Cycle max_cycles)
{
    const Cycle end = chip_.runUntilDone(max_cycles);
    for (const auto &h : handles_) {
        if (!h->finished)
            warn("ThreadApi::joinAll: a thread did not finish within "
                 "%llu cycles",
                 static_cast<unsigned long long>(max_cycles));
    }
    return end;
}

std::uint64_t
ThreadApi::finished() const
{
    std::uint64_t n = 0;
    for (const auto &h : handles_)
        n += h->finished ? 1 : 0;
    return n;
}

} // namespace smarco::runtime
