/**
 * @file
 * POSIX-flavoured threading facade (Section 3.6).
 *
 * The paper's basic programming model exposes pthread-like calls;
 * here threadCreate() submits a task to the chip's schedulers and
 * returns a handle, join() drives the simulator until the thread (and
 * everything else in flight) completes. Host code observes completion
 * through the handle.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chip/smarco_chip.hpp"
#include "workloads/task.hpp"

namespace smarco::runtime {

/** Completion record of one simulated thread. */
struct ThreadResult {
    bool finished = false;
    Cycle finishCycle = 0;
    CoreId core = 0;
};

/** Handle returned by threadCreate (shared with the completion hook). */
using ThreadHandle = std::shared_ptr<ThreadResult>;

/**
 * pthread-like layer over one SmarcoChip. Typical use:
 *
 *   ThreadApi api(chip);
 *   auto h = api.threadCreate(task);   // pthread_create
 *   api.joinAll();                     // pthread_join loop
 */
class ThreadApi
{
  public:
    explicit ThreadApi(chip::SmarcoChip &chip);

    /**
     * Submit a task as a software thread; the laxity-aware schedulers
     * place it on a TCG context (pthread_create).
     */
    ThreadHandle threadCreate(const workloads::TaskSpec &task);

    /** Convenience: create one thread per task in the set. */
    std::vector<ThreadHandle>
    threadCreateAll(const std::vector<workloads::TaskSpec> &tasks);

    /**
     * Drive the simulation until every created thread has exited
     * (pthread_join over all handles).
     * @return the cycle at which the last thread exited.
     */
    Cycle joinAll(Cycle max_cycles = 100'000'000);

    std::uint64_t created() const { return created_; }
    std::uint64_t finished() const;

  private:
    chip::SmarcoChip &chip_;
    std::vector<ThreadHandle> handles_;
    std::uint64_t created_ = 0;
};

} // namespace smarco::runtime
