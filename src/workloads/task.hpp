/**
 * @file
 * Software task model: the unit of work the schedulers dispatch onto
 * hardware thread contexts.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "workloads/profile.hpp"

namespace smarco::workloads {

/**
 * One schedulable task: a bounded instruction stream drawn from a
 * benchmark profile, optionally with a hard deadline (RNC-style).
 */
struct TaskSpec {
    TaskId id = 0;
    const BenchProfile *profile = nullptr;
    /** Micro-ops the task executes before completing. */
    std::uint64_t numOps = 0;
    /** Bytes staged into SPM before the task starts (DMA). */
    std::uint64_t inputBytes = 0;
    /** Cycle at which the task becomes available for dispatch. */
    Cycle release = 0;
    /** Absolute deadline; kNoCycle when the task is best-effort. */
    Cycle deadline = kNoCycle;
    /** Superior real-time priority (uses MACT bypass / direct path). */
    bool realtime = false;
    /** Per-task RNG seed so task bodies are independent streams. */
    std::uint64_t seed = 0;
    /** Internal completion-hook key (0 = none); set by the runtime. */
    std::uint64_t hookId = 0;

    bool hasDeadline() const { return deadline != kNoCycle; }
};

/** Knobs for makeTaskSet. */
struct TaskSetParams {
    std::uint64_t count = 256;
    /** +/- fractional jitter applied to the profile's opsPerTask. */
    double opsJitter = 0.15;
    Cycle deadline = kNoCycle;
    bool realtime = false;
    /** Release spread: tasks release uniformly in [0, releaseSpan]. */
    Cycle releaseSpan = 0;
    std::uint64_t seed = 1;
};

/**
 * Build a homogeneous task set from one benchmark profile, with
 * deterministic per-task length jitter and release times.
 */
std::vector<TaskSpec> makeTaskSet(const BenchProfile &profile,
                                  const TaskSetParams &params);

} // namespace smarco::workloads
