/**
 * @file
 * Open-loop request generator for the overload experiments.
 *
 * Datacenter serving (the paper's CDN/RNC motivation) is open-loop:
 * clients keep sending whether or not the chip keeps up, so offered
 * load can exceed capacity. makePoissonRequests turns a rate into a
 * deterministic Poisson arrival sequence; makeTraceRequests replays
 * an explicit arrival trace. Either way each request carries a
 * per-request deadline relative to its own arrival.
 *
 * Determinism contract: all arrivals are pre-generated here, before
 * the run starts, from the named "overload.arrivals" stream — the
 * same recipe the fault campaign uses — so the same seed gives the
 * same request sequence in the per-cycle and fast-forward kernels,
 * and arming an overload run never perturbs workload or scheduler
 * draws.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "workloads/task.hpp"

namespace smarco::workloads {

/** Knobs of the open-loop generator. */
struct RequestGenParams {
    /** Number of requests to generate. */
    std::uint64_t count = 256;
    /** First arrival is drawn at or after this cycle. */
    Cycle start = 0;
    /** Mean arrivals per 1000 cycles (Poisson rate). */
    double ratePerKCycle = 1.0;
    /** Deadline of each request relative to its arrival; kNoCycle
     *  makes the stream best-effort. */
    Cycle relativeDeadline = kNoCycle;
    /** Fraction of requests carrying the deadline; the rest are
     *  best-effort (sheds first in degraded mode). */
    double deadlineFraction = 1.0;
    /** Mark deadline-carrying requests realtime (RNC-style). */
    bool realtime = false;
    /** +/- fractional jitter on the profile's opsPerTask. */
    double opsJitter = 0.15;
    /** Override per-request work (0 keeps the profile's value). */
    std::uint64_t opsOverride = 0;
    std::uint64_t seed = 1;
    /** Task ids are assigned from here (streams must not collide). */
    std::uint64_t firstId = 0;
};

/**
 * Deterministic Poisson arrivals: exponential inter-arrival gaps at
 * params.ratePerKCycle, each request released at its arrival cycle
 * with deadline = arrival + relativeDeadline.
 */
std::vector<TaskSpec> makePoissonRequests(const BenchProfile &profile,
                                          const RequestGenParams &params);

/**
 * Trace-driven arrivals: one request per entry of arrivals (absolute
 * cycles, need not be sorted). count/start/ratePerKCycle are ignored;
 * the remaining params apply per request.
 */
std::vector<TaskSpec> makeTraceRequests(const BenchProfile &profile,
                                        const std::vector<Cycle> &arrivals,
                                        const RequestGenParams &params);

} // namespace smarco::workloads
