#include "workloads/profile_stream.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace smarco::workloads {

namespace {
/** Heap is visited in 64-byte chunks to model spatial locality. */
constexpr std::uint64_t kHeapChunk = 64;
} // namespace

ProfileStream::ProfileStream(const BenchProfile &profile,
                             AddressLayout layout,
                             std::uint64_t num_ops, std::uint64_t seed)
    : profile_(profile),
      layout_(layout),
      numOps_(num_ops),
      rng_(seed, 0x9e37),
      granularity_(profile.granularityWeights),
      heapReuse_(std::max<std::uint64_t>(
                     layout.heapSize / kHeapChunk, 1),
                 profile.heapZipf)
{
    profile.validate();
    if (num_ops == 0)
        panic("ProfileStream: zero-length stream");
    // Entry probability q solving  qB / (qB + 1 - q) = fracStream,
    // so bursts of mean length B keep the intended overall mix.
    const double r = profile.fracStream();
    const double b = std::max(profile.streamBurst, 1.0);
    streamEntry_ = r >= 1.0 ? 1.0 : r / (b * (1.0 - r) + r);
}

Addr
ProfileStream::heapAddr(std::uint8_t size)
{
    const std::uint64_t chunk = heapReuse_.sample(rng_);
    const std::uint64_t max_off = kHeapChunk - size;
    const std::uint64_t off = rng_.nextBelow(max_off + 1);
    return layout_.heapBase + chunk * kHeapChunk + off;
}

Addr
ProfileStream::streamAddr(std::uint8_t size)
{
    // Record-like: each burst lands on a random record somewhere in
    // the (large) stream dataset -- an index/table probe -- and walks
    // forward within the record. Within-burst adjacency is what the
    // MACT merges; across bursts there is essentially no locality,
    // which is exactly the discrete small-access pattern of Fig. 8.
    const std::uint64_t span =
        std::max<std::uint64_t>(layout_.streamSize, 128);
    const Addr a = layout_.streamBase + (streamCursor_ % span);
    streamCursor_ += size;
    return a;
}

bool
ProfileStream::next(isa::MicroOp &op)
{
    using isa::MemClass;
    using isa::OpKind;

    if (haltEmitted_)
        return false;

    op = isa::MicroOp{};
    if (produced_ >= numOps_) {
        op.kind = OpKind::Halt;
        haltEmitted_ = true;
        ++emitted_;
        return true;
    }
    ++produced_;
    ++emitted_;

    op.priority = rng_.chance(profile_.fracPriority);

    const double u = rng_.nextDouble();
    double acc = profile_.fracMem;
    if (u < acc) {
        // Memory op: pick direction, size, and target class.
        const bool is_load = burstLeft_ > 0
            ? !burstIsStore_
            : rng_.chance(profile_.fracLoadOfMem);
        op.kind = is_load ? OpKind::Load : OpKind::Store;
        const std::size_t g = granularity_.sample(rng_);
        op.size = kGranularitySizes[g];

        // An active stream burst keeps subsequent memory ops on the
        // sequential stream (same-line adjacency for the MACT).
        if (burstLeft_ > 0) {
            --burstLeft_;
            op.memClass = MemClass::Stream;
            op.addr = streamAddr(op.size);
            return true;
        }

        // Burst-entry probability is scaled down so the *overall*
        // stream fraction still matches the profile despite each
        // entry spawning ~streamBurst accesses.
        const double m = rng_.nextDouble();
        if (m < streamEntry_) {
            op.memClass = MemClass::Stream;
            // New record: jump to a random position in the dataset.
            streamCursor_ = rng_.nextBelow(
                std::max<std::uint64_t>(layout_.streamSize, 128) - 64);
            op.addr = streamAddr(op.size);
            if (profile_.streamBurst > 1.0) {
                burstLeft_ = static_cast<std::uint32_t>(
                    rng_.nextGeometric(profile_.streamBurst - 1.0, 16));
                burstIsStore_ = op.kind == OpKind::Store;
            }
            return true;
        }
        // Remaining probability mass split among the other classes
        // in proportion to their profile fractions.
        const double rest = 1.0 - streamEntry_;
        const double nonstream = profile_.fracSpmLocal +
            profile_.fracSpmRemote + profile_.fracHeap;
        const double scale =
            nonstream > 0.0 ? rest / nonstream : 0.0;
        const double t_local = streamEntry_ +
            profile_.fracSpmLocal * scale;
        const double t_remote = t_local +
            profile_.fracSpmRemote * scale;
        if (m < t_local || scale == 0.0) {
            op.memClass = MemClass::SpmLocal;
            const std::uint64_t span =
                std::max<std::uint64_t>(layout_.spmLocalSize, 64) - op.size;
            op.addr = layout_.spmLocalBase + rng_.nextBelow(span);
        } else if (m < t_remote) {
            op.memClass = MemClass::SpmRemote;
            const std::uint64_t span =
                std::max<std::uint64_t>(layout_.spmRemoteSize, 64) - op.size;
            op.addr = layout_.spmRemoteBase + rng_.nextBelow(span);
        } else {
            op.memClass = MemClass::Heap;
            op.addr = heapAddr(op.size);
        }
        return true;
    }
    acc += profile_.fracBranch;
    if (u < acc) {
        op.kind = OpKind::Branch;
        op.mispredict = rng_.chance(profile_.branchMissRate);
        return true;
    }
    acc += profile_.fracMul;
    if (u < acc) {
        op.kind = OpKind::Mul;
        op.execLatency = 3;
        return true;
    }
    acc += profile_.fracFp;
    if (u < acc) {
        op.kind = OpKind::Fp;
        op.execLatency = 4;
        return true;
    }
    op.kind = OpKind::Alu;
    op.execLatency = 1;
    return true;
}

} // namespace smarco::workloads
