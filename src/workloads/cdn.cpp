#include "workloads/cdn.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"

namespace smarco::workloads {

CdnWorkload::CdnWorkload(CdnParams params)
    : params_(params)
{
    if (params_.nicGbps <= 0.0 || params_.videoMbps <= 0.0)
        fatal("CdnWorkload: non-positive bandwidth parameters");
    if (params_.chunkBytes == 0)
        fatal("CdnWorkload: zero chunk size");
}

double
CdnWorkload::chunkRate(std::uint64_t clients) const
{
    const double offered_bps =
        static_cast<double>(clients) * params_.videoMbps * 1e6;
    const double nic_bps = params_.nicGbps * 1e9;
    const double egress = std::min(offered_bps, nic_bps);
    return egress / (8.0 * static_cast<double>(params_.chunkBytes));
}

std::uint64_t
CdnWorkload::opsPerChunk() const
{
    const double kib = static_cast<double>(params_.chunkBytes) / 1024.0;
    return static_cast<std::uint64_t>(kib * params_.opsPerKiB);
}

std::uint64_t
CdnWorkload::saturationClients() const
{
    return static_cast<std::uint64_t>(
        std::ceil(params_.nicGbps * 1e9 / (params_.videoMbps * 1e6)));
}

BenchProfile
CdnWorkload::chunkProfile(std::uint64_t clients) const
{
    BenchProfile p;
    p.name = "cdn-chunk";
    // Server chunk work: header parsing + socket bookkeeping (small
    // accesses, branchy) plus payload buffer copies (line-sized).
    p.fracMem = 0.44;
    p.fracLoadOfMem = 0.55;
    p.fracBranch = 0.19;
    p.ilp = 2.0;
    p.granularityWeights = {18, 16, 18, 14, 10, 12, 12};
    // Memory-class mix as the baseline chip interprets it: ~35% hot
    // per-thread buffers/stack (cache-resident), ~25% sequential
    // payload streaming (spatially local), ~40% connection state
    // scattered over the whole live-connection table.
    p.fracSpmLocal = 0.35;
    p.fracSpmRemote = 0.0;
    p.fracHeap = 0.40;
    p.heapWorkingSet = std::max<std::uint64_t>(
        clients * params_.connStateBytes, 64 * 1024);
    p.heapZipf = 0.35; // little reuse across connections
    // Branch predictor state is also thrashed by connection multiplexing;
    // saturate towards the paper's >10% at the NIC limit.
    const double sat = static_cast<double>(saturationClients());
    const double x = static_cast<double>(clients) / sat;
    p.branchMissRate = 0.02 + 0.10 * std::min(1.2, x);
    p.opsPerTask = opsPerChunk();
    p.validate();
    return p;
}

} // namespace smarco::workloads
