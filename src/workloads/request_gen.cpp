#include "workloads/request_gen.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace smarco::workloads {

namespace {

TaskSpec
makeRequest(const BenchProfile &profile, const RequestGenParams &params,
            Rng &rng, std::uint64_t i, Cycle arrival)
{
    TaskSpec t;
    t.id = params.firstId + i;
    t.profile = &profile;
    const double jitter =
        1.0 + params.opsJitter * (2.0 * rng.nextDouble() - 1.0);
    const std::uint64_t base_ops =
        params.opsOverride ? params.opsOverride : profile.opsPerTask;
    t.numOps = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(
            static_cast<double>(base_ops) * jitter),
        16);
    t.inputBytes = profile.taskInputBytes;
    t.release = arrival;
    const bool slo = params.relativeDeadline != kNoCycle &&
                     rng.chance(params.deadlineFraction);
    if (slo) {
        t.deadline = arrival + params.relativeDeadline;
        t.realtime = params.realtime;
    }
    t.seed = params.seed * 0x10001 + t.id;
    return t;
}

} // namespace

std::vector<TaskSpec>
makePoissonRequests(const BenchProfile &profile,
                    const RequestGenParams &params)
{
    if (params.count == 0)
        panic("makePoissonRequests: empty request set");
    if (params.ratePerKCycle <= 0.0)
        panic("makePoissonRequests: rate %f must be positive",
              params.ratePerKCycle);
    if (params.opsJitter < 0.0 || params.opsJitter >= 1.0)
        panic("makePoissonRequests: opsJitter %f out of [0,1)",
              params.opsJitter);

    Rng rng = namedRng(params.seed, "overload.arrivals");
    const double mean_gap = 1000.0 / params.ratePerKCycle;
    std::vector<TaskSpec> requests;
    requests.reserve(params.count);
    Cycle arrival = params.start;
    for (std::uint64_t i = 0; i < params.count; ++i) {
        // Exponential inter-arrival gap, at least one cycle so two
        // requests never alias to the same submission instant.
        const double u = rng.nextDouble();
        const Cycle gap = std::max<Cycle>(
            1, static_cast<Cycle>(-mean_gap *
                                  std::log(1.0 - u)));
        arrival += gap;
        requests.push_back(
            makeRequest(profile, params, rng, i, arrival));
    }
    return requests;
}

std::vector<TaskSpec>
makeTraceRequests(const BenchProfile &profile,
                  const std::vector<Cycle> &arrivals,
                  const RequestGenParams &params)
{
    if (arrivals.empty())
        panic("makeTraceRequests: empty arrival trace");
    Rng rng = namedRng(params.seed, "overload.arrivals");
    std::vector<TaskSpec> requests;
    requests.reserve(arrivals.size());
    for (std::uint64_t i = 0; i < arrivals.size(); ++i)
        requests.push_back(
            makeRequest(profile, params, rng, i, arrivals[i]));
    return requests;
}

} // namespace smarco::workloads
