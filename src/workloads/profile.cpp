#include "workloads/profile.hpp"

#include "sim/logging.hpp"

namespace smarco::workloads {

void
BenchProfile::validate() const
{
    const double mix = fracMem + fracBranch + fracMul + fracFp;
    if (mix > 1.0 + 1e-9)
        panic("profile %s: instruction mix sums to %f > 1", name.c_str(),
              mix);
    const double mem = fracSpmLocal + fracSpmRemote + fracHeap;
    if (mem > 1.0 + 1e-9)
        panic("profile %s: memory class split sums to %f > 1",
              name.c_str(), mem);
    if (granularityWeights.size() != kNumGranularities)
        panic("profile %s: expected %zu granularity weights, got %zu",
              name.c_str(), kNumGranularities, granularityWeights.size());
    if (heapWorkingSet == 0 || streamWorkingSet == 0)
        panic("profile %s: zero working set", name.c_str());
    if (opsPerTask == 0)
        panic("profile %s: zero opsPerTask", name.c_str());
}

namespace {

/**
 * Calibrated HTC profiles. Granularity weights follow the Fig. 8
 * characterisation: HTC applications are dominated by 1-8 byte
 * accesses; K-means sits at 4-8 bytes (floats), KMP/RNC are
 * byte/half-word heavy.
 */
std::vector<BenchProfile>
makeHtcProfiles()
{
    std::vector<BenchProfile> v;

    BenchProfile wc;
    wc.name = "wordcount";
    wc.fracMem = 0.38;
    wc.fracLoadOfMem = 0.68;
    wc.fracBranch = 0.16;
    wc.fracMul = 0.01;
    wc.branchMissRate = 0.055;
    wc.ilp = 2.2;
    wc.granularityWeights = {30, 26, 24, 12, 5, 2, 1};
    wc.fracSpmLocal = 0.64;
    wc.fracSpmRemote = 0.04;
    wc.fracHeap = 0.10;
    wc.heapWorkingSet = 32 * 1024;
    wc.heapZipf = 1.1;
    wc.opsPerTask = 24000;
    wc.instrFootprint = 5 * 1024;
    wc.taskInputBytes = 10 * 1024;
    wc.streamWorkingSet = 16 * 1024 * 1024;
    v.push_back(wc);

    BenchProfile ts;
    ts.name = "terasort";
    ts.fracMem = 0.42;
    ts.fracLoadOfMem = 0.60;
    ts.fracBranch = 0.13;
    ts.fracMul = 0.01;
    ts.branchMissRate = 0.075;
    ts.ilp = 2.0;
    ts.granularityWeights = {10, 16, 28, 26, 12, 5, 3};
    ts.fracSpmLocal = 0.58;
    ts.fracSpmRemote = 0.06;
    ts.fracHeap = 0.10;
    ts.heapWorkingSet = 48 * 1024;
    ts.heapZipf = 1.0;
    ts.opsPerTask = 28000;
    ts.instrFootprint = 7 * 1024;
    ts.taskInputBytes = 12 * 1024;
    ts.streamWorkingSet = 32 * 1024 * 1024;
    v.push_back(ts);

    BenchProfile se;
    se.name = "search";
    // "search benchmark is characterized by lower memory instruction"
    se.fracMem = 0.20;
    se.fracLoadOfMem = 0.78;
    se.fracBranch = 0.18;
    se.fracMul = 0.03;
    se.branchMissRate = 0.05;
    se.ilp = 3.0;
    se.granularityWeights = {14, 20, 30, 20, 10, 4, 2};
    se.fracSpmLocal = 0.66;
    se.fracSpmRemote = 0.04;
    se.fracHeap = 0.15;
    se.heapWorkingSet = 24 * 1024;
    se.heapZipf = 1.2;
    se.streamLoadBlocking = 0.05;
    se.opsPerTask = 22000;
    se.instrFootprint = 12 * 1024;
    se.taskInputBytes = 8 * 1024;
    se.streamWorkingSet = 32 * 1024 * 1024;
    v.push_back(se);

    BenchProfile km;
    km.name = "kmeans";
    km.fracMem = 0.34;
    km.fracLoadOfMem = 0.72;
    km.fracBranch = 0.08;
    km.fracMul = 0.02;
    km.fracFp = 0.24;
    km.branchMissRate = 0.025;
    km.ilp = 2.4;
    // floats: 4-8 byte dominated, almost no 1-2 byte accesses
    km.granularityWeights = {1, 3, 42, 38, 11, 4, 1};
    km.fracSpmLocal = 0.86;
    km.fracSpmRemote = 0.02;
    km.fracHeap = 0.06;
    km.heapWorkingSet = 24 * 1024;
    km.heapZipf = 0.9;
    // Scattered per-point float accesses: no same-line bursts, so the
    // MACT mostly adds collection latency for K-means (Fig. 20).
    km.streamBurst = 1.0;
    km.opsPerTask = 30000;
    km.instrFootprint = 4 * 1024;
    km.taskInputBytes = 14 * 1024;
    km.streamWorkingSet = 16 * 1024 * 1024;
    v.push_back(km);

    BenchProfile kmp;
    kmp.name = "kmp";
    kmp.fracMem = 0.46;
    kmp.fracLoadOfMem = 0.82;
    kmp.fracBranch = 0.20;
    kmp.branchMissRate = 0.09;
    kmp.ilp = 1.8;
    // byte-at-a-time string matching
    kmp.granularityWeights = {52, 30, 11, 4, 2, 1, 0};
    kmp.fracSpmLocal = 0.55;
    kmp.fracSpmRemote = 0.03;
    kmp.fracHeap = 0.04;
    kmp.heapWorkingSet = 16 * 1024;
    kmp.heapZipf = 1.0;
    kmp.opsPerTask = 26000;
    kmp.instrFootprint = 2 * 1024;
    kmp.taskInputBytes = 10 * 1024;
    kmp.streamWorkingSet = 16 * 1024 * 1024;
    v.push_back(kmp);

    BenchProfile rnc;
    rnc.name = "rnc";
    rnc.fracMem = 0.40;
    rnc.fracLoadOfMem = 0.64;
    rnc.fracBranch = 0.22;
    rnc.branchMissRate = 0.10;
    rnc.ilp = 1.6;
    rnc.granularityWeights = {42, 34, 14, 6, 3, 1, 0};
    rnc.fracSpmLocal = 0.54;
    rnc.fracSpmRemote = 0.08;
    rnc.fracHeap = 0.06;
    rnc.heapWorkingSet = 16 * 1024;
    rnc.heapZipf = 1.0;
    rnc.fracPriority = 0.30;
    rnc.opsPerTask = 18000;
    rnc.instrFootprint = 8 * 1024;
    rnc.taskInputBytes = 4 * 1024;
    rnc.streamWorkingSet = 8 * 1024 * 1024;
    v.push_back(rnc);

    for (auto &p : v)
        p.validate();
    return v;
}

/**
 * SPLASH2-like conventional applications: larger access granularity
 * (cache-line friendly doubles / structs), bigger working sets, no
 * scratch-pad usage. Only the features used by Fig. 8 and Fig. 1
 * matter here.
 */
BenchProfile
makeConventional(const std::string &name, std::vector<double> gran,
                 double frac_mem, std::uint64_t ws_kb, double zipf)
{
    BenchProfile p;
    p.name = name;
    p.fracMem = frac_mem;
    p.fracBranch = 0.10;
    p.fracFp = 0.20;
    p.branchMissRate = 0.03;
    p.ilp = 2.4;
    p.granularityWeights = std::move(gran);
    p.fracSpmLocal = 0.0;
    p.fracSpmRemote = 0.0;
    p.fracHeap = 1.0; // everything cacheable
    p.heapWorkingSet = ws_kb * 1024;
    p.heapZipf = zipf;
    p.opsPerTask = 30000;
    p.instrFootprint = 24 * 1024;
    p.validate();
    return p;
}

std::vector<BenchProfile>
makeConventionalProfiles()
{
    std::vector<BenchProfile> v;
    v.push_back(makeConventional("barnes",
        {1, 2, 8, 24, 26, 22, 17}, 0.32, 2048, 0.6));
    v.push_back(makeConventional("cholesky",
        {0, 1, 6, 30, 28, 20, 15}, 0.35, 4096, 0.5));
    v.push_back(makeConventional("fft",
        {0, 1, 4, 34, 28, 18, 15}, 0.33, 8192, 0.3));
    v.push_back(makeConventional("fmm",
        {1, 2, 8, 28, 26, 20, 15}, 0.31, 2048, 0.6));
    v.push_back(makeConventional("lu",
        {0, 1, 5, 32, 28, 20, 14}, 0.36, 4096, 0.4));
    v.push_back(makeConventional("ocean",
        {0, 1, 4, 30, 30, 20, 15}, 0.38, 16384, 0.3));
    v.push_back(makeConventional("radiosity",
        {1, 3, 10, 26, 24, 21, 15}, 0.30, 2048, 0.7));
    v.push_back(makeConventional("radix",
        {1, 2, 12, 30, 25, 18, 12}, 0.37, 8192, 0.3));
    v.push_back(makeConventional("raytrace",
        {1, 3, 10, 26, 26, 19, 15}, 0.33, 4096, 0.7));
    v.push_back(makeConventional("volrend",
        {2, 4, 12, 26, 24, 18, 14}, 0.31, 2048, 0.7));
    v.push_back(makeConventional("water",
        {0, 1, 6, 30, 28, 21, 14}, 0.30, 1024, 0.6));
    return v;
}

} // namespace

const std::vector<BenchProfile> &
htcProfiles()
{
    static const std::vector<BenchProfile> profiles = makeHtcProfiles();
    return profiles;
}

const BenchProfile &
htcProfile(const std::string &name)
{
    for (const auto &p : htcProfiles()) {
        if (p.name == name)
            return p;
    }
    panic("unknown HTC profile '%s'", name.c_str());
}

const std::vector<BenchProfile> &
conventionalProfiles()
{
    static const std::vector<BenchProfile> profiles =
        makeConventionalProfiles();
    return profiles;
}

double
meanGranularity(const BenchProfile &profile)
{
    DiscreteDist dist(profile.granularityWeights);
    double mean = 0.0;
    for (std::size_t i = 0; i < kNumGranularities; ++i)
        mean += dist.probability(i) * kGranularitySizes[i];
    return mean;
}

} // namespace smarco::workloads
