#include "workloads/task.hpp"

#include <algorithm>

#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace smarco::workloads {

std::vector<TaskSpec>
makeTaskSet(const BenchProfile &profile, const TaskSetParams &params)
{
    if (params.count == 0)
        panic("makeTaskSet: empty task set requested");
    if (params.opsJitter < 0.0 || params.opsJitter >= 1.0)
        panic("makeTaskSet: opsJitter %f out of [0,1)", params.opsJitter);

    Rng rng(params.seed, 0x7a5c);
    std::vector<TaskSpec> tasks;
    tasks.reserve(params.count);
    for (std::uint64_t i = 0; i < params.count; ++i) {
        TaskSpec t;
        t.id = i;
        t.profile = &profile;
        const double jitter =
            1.0 + params.opsJitter * (2.0 * rng.nextDouble() - 1.0);
        t.numOps = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                static_cast<double>(profile.opsPerTask) * jitter),
            16);
        t.inputBytes = profile.taskInputBytes;
        t.release = params.releaseSpan == 0
            ? 0
            : rng.nextBelow(params.releaseSpan + 1);
        t.deadline = params.deadline;
        t.realtime = params.realtime;
        t.seed = params.seed * 0x10001 + i;
        tasks.push_back(t);
    }
    return tasks;
}

} // namespace smarco::workloads
