/**
 * @file
 * Content Delivery Network serving workload (paper Section 1, Fig. 2).
 *
 * The paper's motivating CDN study runs Nginx behind a 10 Gbps NIC
 * serving 25 Mbps video streams. We substitute a synthetic equivalent
 * (see DESIGN.md): each connection periodically requires a chunk of
 * server work (protocol processing + buffer copies), the NIC is a
 * hard egress cap, and per-connection state grows the working set so
 * branch and L1 behaviour degrade as clients increase.
 */
#pragma once

#include <cstdint>

#include "sim/types.hpp"
#include "workloads/profile.hpp"

namespace smarco::workloads {

/** Static parameters of the CDN testbed being modelled. */
struct CdnParams {
    double nicGbps = 10.0;       ///< NIC egress bandwidth
    double videoMbps = 25.0;     ///< per-client stream rate
    std::uint32_t chunkBytes = 64 * 1024; ///< service unit (sendfile chunk)
    /** Micro-ops of server work per KiB of chunk payload (protocol
     *  processing, buffer management, kernel network stack). */
    double opsPerKiB = 4000.0;
    /** Per-connection kernel/user state in bytes (sockets, TLS, ...). */
    std::uint64_t connStateBytes = 24 * 1024;
    double cpuGHz = 2.2;         ///< serving-core frequency
};

/** One row of the Fig. 2 sweep. */
struct CdnPoint {
    std::uint64_t clients = 0;
    double offeredGbps = 0.0;   ///< clients * videoMbps
    double achievedGbps = 0.0;  ///< min(offered, NIC)
    double cpuUtilisation = 0.0;///< fraction of core cycles doing work
    double branchMissRatio = 0.0;
    double l1MissRatio = 0.0;
};

/**
 * CDN workload model. chunkProfile(clients) yields the benchmark
 * profile of one chunk's server work at a given client count: the
 * heap working set scales with live connection state, which is what
 * drives the cache/branch degradation the paper observes.
 */
class CdnWorkload
{
  public:
    explicit CdnWorkload(CdnParams params = {});

    const CdnParams &params() const { return params_; }

    /** Chunks/second the NIC lets through at this client count. */
    double chunkRate(std::uint64_t clients) const;

    /** Micro-ops of server work for one chunk. */
    std::uint64_t opsPerChunk() const;

    /** Profile of chunk-service work at a given connection count. */
    BenchProfile chunkProfile(std::uint64_t clients) const;

    /** Client count at which the NIC saturates. */
    std::uint64_t saturationClients() const;

  private:
    CdnParams params_;
};

} // namespace smarco::workloads
