/**
 * @file
 * Per-benchmark workload profiles.
 *
 * The paper evaluates six HTC micro-benchmarks (WordCount, TeraSort,
 * Search, K-means, KMP, RNC) and contrasts them with eleven SPLASH2
 * applications (Fig. 8). We do not ship the original binaries; instead
 * each benchmark is characterised by a profile capturing the features
 * the evaluation depends on: instruction mix, ILP, branch behaviour,
 * memory access granularity distribution, and where accesses land in
 * the memory system. DESIGN.md documents this substitution.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace smarco::workloads {

/** Access sizes used by the granularity distributions (bytes). */
inline constexpr std::uint8_t kGranularitySizes[] = {1, 2, 4, 8, 16, 32, 64};
inline constexpr std::size_t kNumGranularities = 7;

/**
 * Static characterisation of one benchmark. All fractions are in
 * [0, 1]; instruction-mix fractions must sum to <= 1 with the
 * remainder being plain ALU ops.
 */
struct BenchProfile {
    std::string name;

    // --- instruction mix ------------------------------------------------
    double fracMem = 0.35;      ///< loads + stores among all ops
    double fracLoadOfMem = 0.65;///< loads among memory ops
    double fracBranch = 0.15;   ///< branches among all ops
    double fracMul = 0.02;      ///< multiply/divide class
    double fracFp = 0.0;        ///< floating-point class
    double branchMissRate = 0.06;
    /** Independent ops one thread can issue per cycle (ILP limit). */
    double ilp = 2.0;

    // --- memory behaviour -------------------------------------------------
    /** Weights over kGranularitySizes for load/store sizes. */
    std::vector<double> granularityWeights;
    double fracSpmLocal = 0.55; ///< of mem ops: local scratch-pad
    double fracSpmRemote = 0.04;///< of mem ops: neighbour scratch-pad
    double fracHeap = 0.25;     ///< of mem ops: cacheable heap
    // remainder of mem ops is Stream (uncached word-granularity DRAM)

    std::uint64_t heapWorkingSet = 256 * 1024; ///< bytes, zipf-visited
    double heapZipf = 0.8;      ///< skew of heap reuse
    std::uint64_t streamWorkingSet = 4 * 1024 * 1024;

    /** Fraction of ops tagged with superior real-time priority. */
    double fracPriority = 0.0;

    /** Mean length of a stream-access burst (consecutive small
     *  accesses to adjacent addresses, e.g. emitting one record).
     *  Bursts are what give the MACT same-line merging opportunities. */
    double streamBurst = 4.0;

    /** Typical micro-ops in one task of this benchmark. */
    std::uint64_t opsPerTask = 20000;
    /** Bytes of input staged into SPM per task (DMA prefetch). */
    std::uint64_t taskInputBytes = 32 * 1024;

    /** Fraction of stream remainder (see fracHeap) that is loads that
     *  block; the rest are non-blocking stores / prefetched reads. */
    double streamLoadBlocking = 0.15;

    /** Instruction-loop footprint of the kernel, in bytes. With the
     *  shared instruction segment every thread fetches from the same
     *  footprint (Section 3.1.2). */
    std::uint64_t instrFootprint = 6 * 1024;

    /** Sanity-check the profile; panics on inconsistent fractions. */
    void validate() const;

    /** Fraction of mem ops going to the Stream class. */
    double fracStream() const
    {
        return 1.0 - fracSpmLocal - fracSpmRemote - fracHeap;
    }
};

/** The six HTC benchmarks of the paper, in paper order. */
const std::vector<BenchProfile> &htcProfiles();

/** Look up an HTC profile by name; panics when unknown. */
const BenchProfile &htcProfile(const std::string &name);

/** Eleven SPLASH2-like conventional applications (Fig. 8, right). */
const std::vector<BenchProfile> &conventionalProfiles();

/**
 * Mean access granularity in bytes implied by a profile's
 * granularity distribution (used by Fig. 8 and tests).
 */
double meanGranularity(const BenchProfile &profile);

} // namespace smarco::workloads
