/**
 * @file
 * Profile-driven micro-op stream generator.
 */
#pragma once

#include <cstdint>

#include "isa/instr_stream.hpp"
#include "sim/random.hpp"
#include "workloads/profile.hpp"

namespace smarco::workloads {

/**
 * Where a thread's data lives in the unified address space. Filled in
 * by whoever places the task on a core (MapReduce runtime / chip
 * harness); the generator only needs region bases and sizes.
 */
struct AddressLayout {
    Addr spmLocalBase = 0;
    std::uint64_t spmLocalSize = 96 * 1024;
    Addr spmRemoteBase = 0;
    std::uint64_t spmRemoteSize = 96 * 1024;
    Addr heapBase = 0;
    std::uint64_t heapSize = 256 * 1024;
    Addr streamBase = 0;
    std::uint64_t streamSize = 4 * 1024 * 1024;
};

/**
 * Generates a bounded stream of micro-ops matching a BenchProfile:
 * instruction mix by Bernoulli mixing, access sizes from the
 * granularity distribution, heap addresses from a Zipf reuse pattern,
 * stream addresses sequential (scan-like), scratch-pad addresses
 * uniform within the region. The stream ends with a Halt op after
 * num_ops micro-ops.
 */
class ProfileStream : public isa::InstrStream
{
  public:
    ProfileStream(const BenchProfile &profile, AddressLayout layout,
                  std::uint64_t num_ops, std::uint64_t seed);

    bool next(isa::MicroOp &op) override;

    const BenchProfile &profile() const { return profile_; }
    std::uint64_t targetOps() const { return numOps_; }

  private:
    Addr heapAddr(std::uint8_t size);
    Addr streamAddr(std::uint8_t size);

    const BenchProfile &profile_;
    AddressLayout layout_;
    std::uint64_t numOps_;
    Rng rng_;
    DiscreteDist granularity_;
    ZipfDist heapReuse_;
    std::uint64_t produced_ = 0;
    bool haltEmitted_ = false;
    std::uint64_t streamCursor_ = 0;
    /** Remaining memory ops of the current stream burst. */
    std::uint32_t burstLeft_ = 0;
    bool burstIsStore_ = false;
    /** Burst-entry probability (see ctor). */
    double streamEntry_ = 0.0;
};

} // namespace smarco::workloads
