/**
 * @file
 * Minimal JSON emission helpers shared by the observability layer
 * (stats export, trace events, interval samples). Writing only — the
 * simulator never parses JSON; tests carry their own checker.
 */
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace smarco::json {

/** Escape a string for inclusion inside JSON double quotes. */
inline std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Quoted, escaped JSON string literal. */
inline std::string
str(const std::string &s)
{
    return '"' + escape(s) + '"';
}

/**
 * Finite-number JSON literal. JSON has no NaN/Inf, so non-finite
 * values (possible from degenerate ratios) become null.
 */
inline std::string
num(double v)
{
    if (!std::isfinite(v))
        return "null";
    if (v == 0.0)
        return "0"; // never-sampled stats must diff stably: no "-0"
    // %.17g round-trips doubles; trim to a compact form first.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

inline std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace smarco::json
