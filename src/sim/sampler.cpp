#include "sim/sampler.hpp"

#include <utility>

#include "sim/json_writer.hpp"
#include "sim/trace.hpp"

namespace smarco {

void
IntervalSampler::setInterval(Cycle n)
{
    interval_ = n;
    nextAt_ = n;
}

void
IntervalSampler::addProbe(std::string name, Probe probe)
{
    probes_.push_back(NamedProbe{std::move(name), std::move(probe)});
}

void
IntervalSampler::sampleAt(Cycle now)
{
    std::vector<double> row;
    row.reserve(probes_.size());
    for (auto &p : probes_) {
        const double v = p.fn ? p.fn() : 0.0;
        row.push_back(v);
        if (trace_)
            trace_->counter(TraceCat::Sim, p.name, now, v);
    }
    times_.push_back(now);
    rows_.push_back(std::move(row));
    if (interval_ > 0)
        nextAt_ = now - now % interval_ + interval_;
}

std::vector<std::string>
IntervalSampler::probeNames() const
{
    std::vector<std::string> names;
    names.reserve(probes_.size());
    for (const auto &p : probes_)
        names.push_back(p.name);
    return names;
}

void
IntervalSampler::dumpCsv(std::ostream &os) const
{
    os << "cycle";
    for (const auto &p : probes_)
        os << ',' << p.name;
    os << '\n';
    for (std::size_t i = 0; i < times_.size(); ++i) {
        os << times_[i];
        for (double v : rows_[i])
            os << ',' << json::num(v);
        os << '\n';
    }
}

void
IntervalSampler::dumpJson(std::ostream &os) const
{
    os << "{\"interval\":" << interval_ << ",\"probes\":[";
    for (std::size_t i = 0; i < probes_.size(); ++i)
        os << (i ? "," : "") << json::str(probes_[i].name);
    os << "],\"samples\":[";
    for (std::size_t i = 0; i < times_.size(); ++i) {
        os << (i ? "," : "") << '[' << times_[i];
        for (double v : rows_[i])
            os << ',' << json::num(v);
        os << ']';
    }
    os << "]}";
}

void
IntervalSampler::clearSamples()
{
    times_.clear();
    rows_.clear();
}

} // namespace smarco
