#include "sim/random.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"

namespace smarco {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id in so distinct components get distinct
    // sequences even with the same experiment seed.
    std::uint64_t sm = seed ^ (stream * 0xd1342543de82ef95ULL + 1);
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
rngStreamId(std::string_view name)
{
    // FNV-1a, 64-bit: stable across platforms and runs.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

Rng
namedRng(std::uint64_t seed, std::string_view name)
{
    return Rng(seed, rngStreamId(name));
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    // Lemire's multiply-shift with rejection for exact uniformity.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo %lld > hi %lld",
              static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double mean, std::uint64_t cap)
{
    if (mean <= 0.0)
        return 0;
    const double p = 1.0 / (mean + 1.0);
    const double u = std::max(nextDouble(), 1e-300);
    const double v = std::log(u) / std::log(1.0 - p);
    const auto draw = static_cast<std::uint64_t>(v);
    return std::min(draw, cap);
}

DiscreteDist::DiscreteDist(std::vector<double> weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("DiscreteDist: negative weight %f", w);
        total += w;
    }
    if (total <= 0.0)
        panic("DiscreteDist: weights sum to zero");
    cdf_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
        acc += w / total;
        cdf_.push_back(acc);
    }
    cdf_.back() = 1.0; // guard against fp drift
}

std::size_t
DiscreteDist::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
DiscreteDist::probability(std::size_t i) const
{
    if (i >= cdf_.size())
        panic("DiscreteDist::probability: index out of range");
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

ZipfDist::ZipfDist(std::size_t n, double s)
{
    if (n == 0)
        panic("ZipfDist: empty support");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
    cdf_.back() = 1.0;
}

std::size_t
ZipfDist::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace smarco
