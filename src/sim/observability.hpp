/**
 * @file
 * Process-level observability wiring.
 *
 * Every binary linking the simulator gains a shared set of
 * machine-readable output channels, configured from the command line
 * or the environment — no per-binary plumbing required (an ELF
 * .init_array hook scans argv before main on glibc; the environment
 * works everywhere):
 *
 *   --stats-json=PATH        SMARCO_STATS_JSON        JSON stat dump
 *   --trace=PATH             SMARCO_TRACE             Chrome trace
 *   --trace-categories=LIST  SMARCO_TRACE_CATEGORIES  e.g. core,noc
 *   --sample-interval=N      SMARCO_SAMPLE_INTERVAL   cycles
 *   --sample-out=PATH        SMARCO_SAMPLE_OUT        .csv or .json
 *   --no-fast-forward        SMARCO_NO_FAST_FORWARD   tick every cycle
 *   --faults=PATH            SMARCO_FAULTS            campaign JSON
 *   --fault-seed=N           SMARCO_FAULT_SEED        campaign seed
 *
 * Each Simulator constructed while an output is configured becomes
 * one "run": its stats land as one object in the stats JSON, its
 * trace events under its own pid, its samples tagged with its run id.
 * Files are finalised when the process exits.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace smarco {

class Simulator;
class TraceSink;

/** Parsed observability options (process-global). */
struct ObsOptions {
    std::string statsJsonPath;
    std::string tracePath;
    std::uint32_t traceCategories = 0xffffffffu; ///< kAllTraceCats
    Cycle sampleInterval = 0;
    std::string samplePath; ///< default: derived "<binary>.samples.csv"
    /** Disable the quiescence fast-forward kernel (escape hatch /
     *  slow reference mode for the golden-stats harness). */
    bool noFastForward = false;
    /** Fault campaign JSON spec; empty = no faults (see src/fault/). */
    std::string faultsPath;
    /** Seed for the campaign's named "fault.*" RNG streams. */
    std::uint64_t faultSeed = 1;

    bool faultsWanted() const { return !faultsPath.empty(); }
    bool statsWanted() const { return !statsJsonPath.empty(); }
    bool traceWanted() const { return !tracePath.empty(); }
    bool samplingWanted() const { return sampleInterval > 0; }
    bool anyWanted() const
    { return statsWanted() || traceWanted() || samplingWanted(); }
};

/** Mutable global options (normally filled before main). */
ObsOptions &obsOptions();

/**
 * Try to consume one --flag=value argument.
 * @return true when the argument was an observability flag.
 */
bool parseObsFlag(const std::string &arg);

/** Read SMARCO_* environment overrides into the global options. */
void obsInitFromEnv();

namespace detail {

/**
 * Process-wide collector behind the Simulator integration: assigns
 * run ids, owns the trace sink, buffers per-run stat/sample payloads
 * and writes all configured files at process exit.
 */
class ObsSession
{
  public:
    static ObsSession &instance();

    /** Register a new simulator run; returns its run id (1-based). */
    std::uint32_t beginRun();

    /** Trace sink for the configured trace file (null when off). */
    TraceSink *traceSink();

    /**
     * Record (or replace) the stats payload of a run — the body of
     * one JSON object, already serialised.
     */
    void recordStats(std::uint32_t run_id, std::string json_object);

    /** Record (or replace) the sample dump of a run. */
    void recordSamples(std::uint32_t run_id, std::string csv,
                       std::string json_payload);

    /** Header row of the sample CSV (latest run wins). */
    void setSampleHeader(std::string header);

    /** Write every configured file (idempotent; also runs at exit). */
    void finalise();

  private:
    ObsSession() = default;
    ~ObsSession();

    struct Impl;
    Impl *impl();
    Impl *impl_ = nullptr;
};

} // namespace detail

} // namespace smarco
