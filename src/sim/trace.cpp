#include "sim/trace.hpp"

#include <array>
#include <utility>

#include "sim/json_writer.hpp"
#include "sim/logging.hpp"

namespace smarco {

namespace {

constexpr std::array<std::pair<TraceCat, const char *>, 7> kCatNames{{
    {TraceCat::Core, "core"},
    {TraceCat::Noc, "noc"},
    {TraceCat::Mem, "mem"},
    {TraceCat::Sched, "sched"},
    {TraceCat::Runtime, "runtime"},
    {TraceCat::Sim, "sim"},
    {TraceCat::Fault, "fault"},
}};

/** Shared prefix of every event: name, category, pid/tid. */
std::string
eventHead(TraceCat cat, const std::string &name, std::uint32_t run_id,
          std::uint64_t tid)
{
    std::string s = "{\"name\":" + json::str(name) +
        ",\"cat\":\"" + traceCatName(cat) + "\"" +
        ",\"pid\":" + std::to_string(run_id) +
        ",\"tid\":" + std::to_string(tid);
    return s;
}

std::string
argsTail(const std::string &args_json)
{
    return args_json.empty() ? std::string("}")
                             : ",\"args\":" + args_json + "}";
}

} // namespace

const char *
traceCatName(TraceCat cat)
{
    for (const auto &[c, name] : kCatNames) {
        if (c == cat)
            return name;
    }
    return "?";
}

std::uint32_t
parseTraceCategories(const std::string &spec)
{
    if (spec.empty() || spec == "all")
        return kAllTraceCats;
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        bool known = false;
        for (const auto &[c, name] : kCatNames) {
            if (tok == name) {
                mask |= static_cast<std::uint32_t>(c);
                known = true;
                break;
            }
        }
        if (!known)
            warn("unknown trace category '%s' ignored", tok.c_str());
    }
    return mask;
}

TraceSink::TraceSink(std::ostream &os)
    : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

TraceSink::~TraceSink()
{
    os_ << "\n]}\n";
    os_.flush();
}

void
TraceSink::append(const std::string &event_json)
{
    if (events_ > 0)
        os_ << ",\n";
    os_ << event_json;
    ++events_;
}

void
TraceManager::enable(TraceSink *sink, std::uint32_t category_mask,
                     std::uint32_t run_id)
{
    sink_ = sink;
    mask_ = sink ? (category_mask & kAllTraceCats) : 0;
    runId_ = run_id;
}

void
TraceManager::labelRun(const std::string &label)
{
    if (!enabled())
        return;
    sink_->append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                  std::to_string(runId_) +
                  ",\"args\":{\"name\":" + json::str(label) + "}}");
}

void
TraceManager::emitComplete(TraceCat cat, const std::string &name,
                           Cycle start, Cycle end, std::uint64_t tid,
                           const std::string &args_json)
{
    const Cycle dur = end > start ? end - start : 0;
    sink_->append(eventHead(cat, name, runId_, tid) +
                  ",\"ph\":\"X\",\"ts\":" + std::to_string(start) +
                  ",\"dur\":" + std::to_string(dur) +
                  argsTail(args_json));
}

void
TraceManager::emitInstant(TraceCat cat, const std::string &name,
                          Cycle now, std::uint64_t tid,
                          const std::string &args_json)
{
    sink_->append(eventHead(cat, name, runId_, tid) +
                  ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
                  std::to_string(now) + argsTail(args_json));
}

void
TraceManager::emitCounter(TraceCat cat, const std::string &name,
                          Cycle now, double value)
{
    sink_->append(eventHead(cat, name, runId_, 0) +
                  ",\"ph\":\"C\",\"ts\":" + std::to_string(now) +
                  ",\"args\":{\"value\":" + json::num(value) + "}}");
}

} // namespace smarco
