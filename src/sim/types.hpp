/**
 * @file
 * Fundamental scalar types shared across the SmarCo simulator.
 */
#pragma once

#include <cstdint>

namespace smarco {

/** Simulated cycle count. The whole chip is modelled in core cycles. */
using Cycle = std::uint64_t;

/** Physical (simulated) byte address in the unified address space. */
using Addr = std::uint64_t;

/** Identifier of a hardware core within the chip (0..numCores-1). */
using CoreId = std::uint32_t;

/** Identifier of a hardware thread context within a core. */
using ThreadId = std::uint32_t;

/** Globally unique identifier of a software task. */
using TaskId = std::uint64_t;

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kNoCycle = ~Cycle{0};

/** Sentinel for invalid addresses. */
inline constexpr Addr kNoAddr = ~Addr{0};

} // namespace smarco
