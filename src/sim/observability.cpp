#include "sim/observability.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <utility>

#include "sim/logging.hpp"
#include "sim/trace.hpp"

namespace smarco {

ObsOptions &
obsOptions()
{
    static ObsOptions opts;
    return opts;
}

namespace {

/** Value of a --key=value argument, or empty when arg is not key. */
bool
flagValue(const std::string &arg, const char *key, std::string &out)
{
    const std::string prefix = std::string(key) + "=";
    if (arg.compare(0, prefix.size(), prefix) != 0)
        return false;
    out = arg.substr(prefix.size());
    return true;
}

} // namespace

bool
parseObsFlag(const std::string &arg)
{
    ObsOptions &o = obsOptions();
    std::string v;
    if (flagValue(arg, "--stats-json", v)) {
        o.statsJsonPath = v;
        return true;
    }
    if (flagValue(arg, "--trace", v)) {
        o.tracePath = v;
        return true;
    }
    if (flagValue(arg, "--trace-categories", v)) {
        o.traceCategories = parseTraceCategories(v);
        return true;
    }
    if (flagValue(arg, "--sample-interval", v)) {
        o.sampleInterval = std::strtoull(v.c_str(), nullptr, 10);
        return true;
    }
    if (flagValue(arg, "--sample-out", v)) {
        o.samplePath = v;
        return true;
    }
    if (arg == "--no-fast-forward") {
        o.noFastForward = true;
        return true;
    }
    if (flagValue(arg, "--faults", v)) {
        o.faultsPath = v;
        return true;
    }
    if (flagValue(arg, "--fault-seed", v)) {
        o.faultSeed = std::strtoull(v.c_str(), nullptr, 10);
        return true;
    }
    return false;
}

void
obsInitFromEnv()
{
    ObsOptions &o = obsOptions();
    if (const char *v = std::getenv("SMARCO_STATS_JSON"))
        o.statsJsonPath = v;
    if (const char *v = std::getenv("SMARCO_TRACE"))
        o.tracePath = v;
    if (const char *v = std::getenv("SMARCO_TRACE_CATEGORIES"))
        o.traceCategories = parseTraceCategories(v);
    if (const char *v = std::getenv("SMARCO_SAMPLE_INTERVAL"))
        o.sampleInterval = std::strtoull(v, nullptr, 10);
    if (const char *v = std::getenv("SMARCO_SAMPLE_OUT"))
        o.samplePath = v;
    if (const char *v = std::getenv("SMARCO_NO_FAST_FORWARD"))
        o.noFastForward = *v != '\0' && *v != '0';
    if (const char *v = std::getenv("SMARCO_FAULTS"))
        o.faultsPath = v;
    if (const char *v = std::getenv("SMARCO_FAULT_SEED"))
        o.faultSeed = std::strtoull(v, nullptr, 10);
}

namespace {

#if defined(__GLIBC__)
/**
 * glibc runs .init_array entries with (argc, argv, envp), so the
 * flags are picked up before main without touching any binary's
 * argument handling. Command line wins over environment.
 */
__attribute__((constructor)) void
obsPreMain(int argc, char **argv, char ** /*envp*/)
{
    obsInitFromEnv();
    for (int i = 1; i < argc; ++i)
        parseObsFlag(argv[i]);
}
#else
__attribute__((constructor)) void
obsPreMain()
{
    obsInitFromEnv();
}
#endif

} // namespace

namespace detail {

struct ObsSession::Impl {
    std::uint32_t nextRun = 0;
    std::ofstream traceFile;
    std::unique_ptr<TraceSink> sink;
    /** run id -> serialised {"run":..} object for the stats file. */
    std::map<std::uint32_t, std::string> stats;
    /** run id -> (csv body rows, json run object). */
    std::map<std::uint32_t, std::pair<std::string, std::string>> samples;
    std::string sampleHeader;
    bool finalised = false;
};

ObsSession &
ObsSession::instance()
{
    static ObsSession session;
    return session;
}

ObsSession::Impl *
ObsSession::impl()
{
    if (!impl_)
        impl_ = new Impl;
    return impl_;
}

ObsSession::~ObsSession()
{
    finalise();
    delete impl_;
    impl_ = nullptr;
}

std::uint32_t
ObsSession::beginRun()
{
    return ++impl()->nextRun;
}

TraceSink *
ObsSession::traceSink()
{
    Impl *im = impl();
    if (im->sink)
        return im->sink.get();
    const std::string &path = obsOptions().tracePath;
    if (path.empty() || im->finalised)
        return nullptr;
    im->traceFile.open(path);
    if (!im->traceFile) {
        warn("cannot open trace file '%s'; tracing disabled",
             path.c_str());
        obsOptions().tracePath.clear();
        return nullptr;
    }
    im->sink = std::make_unique<TraceSink>(im->traceFile);
    return im->sink.get();
}

void
ObsSession::recordStats(std::uint32_t run_id, std::string json_object)
{
    impl()->stats[run_id] = std::move(json_object);
}

void
ObsSession::recordSamples(std::uint32_t run_id, std::string csv,
                          std::string json_payload)
{
    impl()->samples[run_id] = {std::move(csv), std::move(json_payload)};
}

void
ObsSession::setSampleHeader(std::string header)
{
    impl()->sampleHeader = std::move(header);
}

void
ObsSession::finalise()
{
    Impl *im = impl();
    if (im->finalised)
        return;
    im->finalised = true;

    // Trace: destroying the sink writes the JSON footer.
    im->sink.reset();
    if (im->traceFile.is_open())
        im->traceFile.close();

    const ObsOptions &o = obsOptions();
    if (o.statsWanted() && !im->stats.empty()) {
        std::ofstream f(o.statsJsonPath);
        if (!f) {
            warn("cannot open stats file '%s'", o.statsJsonPath.c_str());
        } else {
            f << "{\"runs\":[\n";
            bool first = true;
            for (const auto &[id, obj] : im->stats) {
                f << (first ? "" : ",\n") << obj;
                first = false;
            }
            f << "\n]}\n";
        }
    }

    if (!im->samples.empty()) {
        std::string path = o.samplePath;
        if (path.empty())
            path = "samples.csv";
        const bool as_json =
            path.size() >= 5 &&
            path.compare(path.size() - 5, 5, ".json") == 0;
        std::ofstream f(path);
        if (!f) {
            warn("cannot open sample file '%s'", path.c_str());
        } else if (as_json) {
            f << "{\"runs\":[\n";
            bool first = true;
            for (const auto &[id, payload] : im->samples) {
                f << (first ? "" : ",\n") << payload.second;
                first = false;
            }
            f << "\n]}\n";
        } else {
            f << im->sampleHeader << '\n';
            for (const auto &[id, payload] : im->samples)
                f << payload.first;
        }
    }
}

} // namespace detail

} // namespace smarco
