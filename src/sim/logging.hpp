/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits with a
 * non-zero status; warn()/inform() never stop the simulation.
 */
#pragma once

#include <cstdarg>
#include <string>

#include "sim/types.hpp"

namespace smarco {

/** Verbosity knob for inform(); warnings are always printed. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global logging verbosity. */
void setLogLevel(LogLevel level);

/** Current global logging verbosity. */
LogLevel logLevel();

/**
 * Abort with a message. Call when an internal invariant is violated,
 * i.e. when the simulator itself is broken.
 */
[[noreturn]] void panic(const char *fmt, ...);

/**
 * Exit with an error message. Call when the simulation cannot continue
 * because of a user error (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a warning about questionable-but-survivable behaviour. */
void warn(const char *fmt, ...);

/** Print an informative status message (suppressed when Quiet). */
void inform(const char *fmt, ...);

/**
 * Install the simulated-clock source used to prefix warn()/inform()
 * lines with "@<cycle>" while a simulation is active, so log output
 * correlates with stats samples and trace events. The Simulator
 * installs its own cycle counter on construction and restores the
 * previous source on destruction; pass nullptr to clear.
 */
void setLogCycleSource(const Cycle *cycle);

/** Currently installed cycle source (nullptr when none). */
const Cycle *logCycleSource();

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...);

namespace detail {
std::string vstrprintf(const char *fmt, std::va_list args);
} // namespace detail

} // namespace smarco
