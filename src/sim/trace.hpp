/**
 * @file
 * Chrome-trace / Perfetto event tracing for the simulator.
 *
 * A TraceManager belongs to one Simulator and emits trace events into
 * a shared TraceSink (normally one JSON file per process; each
 * simulator run appears as its own "process" track, keyed by run id).
 * Timestamps are simulated cycles mapped 1:1 onto the trace's
 * microsecond axis, so a Perfetto "1 ms" ruler division reads as
 * 1000 cycles.
 *
 * The disabled path is near-free: every public emit call is an inline
 * bitmask test that falls through without formatting anything. Call
 * sites that build argument strings should additionally guard with
 * enabled(cat) so the formatting itself is skipped when off.
 */
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/types.hpp"

namespace smarco {

/** Trace event categories, one bit each (combine with |). */
enum class TraceCat : std::uint32_t {
    Core    = 1u << 0, ///< pipeline: task execution, stalls, starvation
    Noc     = 1u << 1, ///< rings: packet inject / eject, hop latency
    Mem     = 1u << 2, ///< MACT collection/flush, DRAM channel traffic
    Sched   = 1u << 3, ///< main/sub scheduler routing and task spans
    Runtime = 1u << 4, ///< programming frameworks (MapReduce phases)
    Sim     = 1u << 5, ///< kernel: run spans, interval-sampler counters
    Fault   = 1u << 6, ///< fault campaign: injections, recoveries
};

/** Bitmask covering every category. */
inline constexpr std::uint32_t kAllTraceCats = 0x7f;

/** Lower-case name of a single category ("core", "noc", ...). */
const char *traceCatName(TraceCat cat);

/**
 * Parse a comma-separated category list ("core,noc,sched") into a
 * bitmask. Empty or "all" selects every category; unknown names are
 * reported via warn() and ignored.
 */
std::uint32_t parseTraceCategories(const std::string &spec);

/**
 * Serialisation point of a trace stream: owns the comma/bracket state
 * of the JSON event array and the event count. One sink is shared by
 * every simulator run writing to the same file.
 */
class TraceSink
{
  public:
    /** Attach to an open stream; writes the JSON header. */
    explicit TraceSink(std::ostream &os);
    /** Writes the JSON footer. */
    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Append one pre-formatted event object. */
    void append(const std::string &event_json);

    std::uint64_t eventCount() const { return events_; }

  private:
    std::ostream &os_;
    std::uint64_t events_ = 0;
};

/**
 * Per-simulator trace event emitter. Disabled (default-constructed)
 * managers reject every event with one inline mask test.
 */
class TraceManager
{
  public:
    TraceManager() = default;

    /** Route events with the given category mask into sink. */
    void enable(TraceSink *sink, std::uint32_t category_mask,
                std::uint32_t run_id);

    /** True when any category is being recorded. */
    bool enabled() const { return mask_ != 0; }
    /** True when events of this category are being recorded. */
    bool enabled(TraceCat cat) const
    { return (mask_ & static_cast<std::uint32_t>(cat)) != 0; }

    std::uint32_t runId() const { return runId_; }

    /**
     * Duration ("complete") event spanning [start, end] cycles.
     * args_json, when non-empty, must be a JSON object literal.
     */
    void complete(TraceCat cat, const std::string &name, Cycle start,
                  Cycle end, std::uint64_t tid = 0,
                  const std::string &args_json = std::string())
    {
        if (!enabled(cat))
            return;
        emitComplete(cat, name, start, end, tid, args_json);
    }

    /** Instant event at one cycle. */
    void instant(TraceCat cat, const std::string &name, Cycle now,
                 std::uint64_t tid = 0,
                 const std::string &args_json = std::string())
    {
        if (!enabled(cat))
            return;
        emitInstant(cat, name, now, tid, args_json);
    }

    /** Counter event: one named time-series value at a cycle. */
    void counter(TraceCat cat, const std::string &name, Cycle now,
                 double value)
    {
        if (!enabled(cat))
            return;
        emitCounter(cat, name, now, value);
    }

    /** Name this run's process track in the trace viewer. */
    void labelRun(const std::string &label);

  private:
    void emitComplete(TraceCat cat, const std::string &name,
                      Cycle start, Cycle end, std::uint64_t tid,
                      const std::string &args_json);
    void emitInstant(TraceCat cat, const std::string &name, Cycle now,
                     std::uint64_t tid, const std::string &args_json);
    void emitCounter(TraceCat cat, const std::string &name, Cycle now,
                     double value);

    TraceSink *sink_ = nullptr;
    std::uint32_t mask_ = 0;
    std::uint32_t runId_ = 0;
};

} // namespace smarco
