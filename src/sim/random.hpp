/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every stochastic component owns its own Rng seeded from the
 * experiment seed plus a component-unique stream id, so adding or
 * removing components never perturbs the random streams of others.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace smarco {

/**
 * xoshiro256** generator with splitmix64 seeding. Small, fast, and
 * reproducible across platforms (unlike std::mt19937 + std::
 * distributions, whose outputs are implementation-defined).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; stream distinguishes instances. */
    explicit Rng(std::uint64_t seed = 0x5eed, std::uint64_t stream = 0);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Geometric-ish bounded draw: mean roughly m, capped at cap. */
    std::uint64_t nextGeometric(double mean, std::uint64_t cap);

  private:
    std::uint64_t s_[4];
};

/**
 * Stable 64-bit stream id for a named random stream (FNV-1a over the
 * name). Components that want an Rng decoupled from every numeric
 * stream id in the codebase derive theirs from a string instead:
 * adding a new named stream can never collide with or renumber the
 * positional ids handed out by chip construction.
 */
std::uint64_t rngStreamId(std::string_view name);

/**
 * Rng for the named stream under the given experiment seed. The fault
 * subsystem draws exclusively from named streams ("fault.*") so that
 * arming a campaign never perturbs workload or scheduler draws.
 */
Rng namedRng(std::uint64_t seed, std::string_view name);

/**
 * Discrete distribution over arbitrary weights, sampled by inverse
 * CDF lookup. Used for per-benchmark access-granularity histograms.
 */
class DiscreteDist
{
  public:
    DiscreteDist() = default;

    /** Build from (unnormalised) weights; weights must be >= 0. */
    explicit DiscreteDist(std::vector<double> weights);

    /** Sample an index according to the weights. */
    std::size_t sample(Rng &rng) const;

    /** Number of categories. */
    std::size_t size() const { return cdf_.size(); }

    /** Probability of category i (normalised). */
    double probability(std::size_t i) const;

  private:
    std::vector<double> cdf_;
};

/**
 * Zipf distribution over [0, n) with exponent s. Models the skewed
 * popularity of keys/pages in HTC workloads (web objects, words).
 * Sampling is by binary search over a precomputed CDF.
 */
class ZipfDist
{
  public:
    ZipfDist() = default;

    /** Build a Zipf(n, s) distribution; n > 0, s >= 0. */
    ZipfDist(std::size_t n, double s);

    /** Sample a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace smarco
