#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "sim/json_writer.hpp"
#include "sim/logging.hpp"

namespace smarco {

Stat::Stat(StatRegistry &registry, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    registry.add(this);
}

void
Stat::print(std::ostream &os) const
{
    os << name_ << " = " << value();
    if (!desc_.empty())
        os << "   # " << desc_;
    os << '\n';
}

void
Stat::printJsonHead(std::ostream &os, const char *kind) const
{
    os << "{\"kind\":\"" << kind << "\",\"value\":"
       << json::num(value()) << ",\"desc\":" << json::str(desc_);
}

void
Stat::printJson(std::ostream &os) const
{
    printJsonHead(os, "scalar");
    os << '}';
}

void
Average::printJson(std::ostream &os) const
{
    printJsonHead(os, "average");
    os << ",\"sum\":" << json::num(sum_)
       << ",\"count\":" << json::num(count_) << '}';
}

Histogram::Histogram(StatRegistry &registry, std::string name,
                     std::string desc, double lo, double hi,
                     std::size_t buckets)
    : Stat(registry, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    if (hi <= lo || buckets == 0)
        panic("Histogram %s: bad range [%f, %f) x %zu",
              this->name().c_str(), lo, hi, buckets);
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    if (weight == 0)
        return;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += weight;
    sum_ += v * static_cast<double>(weight);
    sumSq_ += v * v * static_cast<double>(weight);

    double idx_f = (v - lo_) / width_;
    auto idx = idx_f <= 0.0
        ? std::size_t{0}
        : std::min(static_cast<std::size_t>(idx_f), buckets_.size() - 1);
    buckets_[idx] += weight;
}

double
Histogram::value() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(count_);
    double seen = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double w = static_cast<double>(buckets_[i]);
        if (w == 0.0)
            continue;
        if (seen + w >= target) {
            const double frac = w > 0.0 ? (target - seen) / w : 0.0;
            const double v = bucketLow(i) + width_ * frac;
            return std::clamp(v, min_, max_);
        }
        seen += w;
    }
    return max_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    sumSq_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
Histogram::print(std::ostream &os) const
{
    os << name() << " mean=" << value() << " stddev=" << stddev()
       << " min=" << min_ << " max=" << max_ << " n=" << count_;
    if (!description().empty())
        os << "   # " << description();
    os << '\n';
}

void
Histogram::printJson(std::ostream &os) const
{
    printJsonHead(os, "histogram");
    os << ",\"count\":" << count_
       << ",\"stddev\":" << json::num(stddev())
       << ",\"min\":" << json::num(min_)
       << ",\"max\":" << json::num(max_)
       << ",\"lo\":" << json::num(lo_)
       << ",\"hi\":" << json::num(hi_)
       << ",\"bucketWidth\":" << json::num(width_)
       << ",\"p50\":" << json::num(percentile(0.50))
       << ",\"p95\":" << json::num(percentile(0.95))
       << ",\"p99\":" << json::num(percentile(0.99))
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        os << (i ? "," : "") << buckets_[i];
    os << "]}";
}

void
StatRegistry::add(Stat *stat)
{
    auto [it, inserted] = stats_.emplace(stat->name(), stat);
    (void)it;
    if (!inserted)
        panic("duplicate stat name '%s'", stat->name().c_str());
}

Stat *
StatRegistry::find(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second;
}

Stat &
StatRegistry::get(const std::string &name) const
{
    Stat *s = find(name);
    if (!s)
        panic("stat '%s' not registered", name.c_str());
    return *s;
}

std::vector<Stat *>
StatRegistry::findPrefix(const std::string &prefix) const
{
    std::vector<Stat *> out;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.push_back(it->second);
    }
    return out;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : stats_)
        stat->reset();
}

double
StatRegistry::total(const std::string &prefix,
                    const std::string &suffix) const
{
    double sum = 0.0;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        const std::string &n = it->first;
        if (n.compare(0, prefix.size(), prefix) != 0)
            break;
        if (n.size() >= suffix.size() &&
            n.compare(n.size() - suffix.size(), suffix.size(),
                      suffix) == 0)
            sum += it->second->value();
    }
    return sum;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (auto &[name, stat] : stats_)
        stat->print(os);
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    for (auto &[name, stat] : stats_) {
        os << (first ? "" : ",") << '\n' << json::str(name) << ':';
        stat->printJson(os);
        first = false;
    }
    os << "\n}";
}

void
StatRegistry::missingTyped(const std::string &name) const
{
    panic("stat '%s' not registered with the requested type",
          name.c_str());
}

} // namespace smarco
