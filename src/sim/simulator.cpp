#include "sim/simulator.hpp"

#include <sstream>

#include "sim/json_writer.hpp"
#include "sim/logging.hpp"
#include "sim/observability.hpp"

namespace smarco {

Simulator::Simulator()
{
    const ObsOptions &opts = obsOptions();
    fastForward_ = !opts.noFastForward;
    if (opts.anyWanted()) {
        auto &session = detail::ObsSession::instance();
        runId_ = session.beginRun();
        if (opts.traceWanted()) {
            if (TraceSink *sink = session.traceSink()) {
                trace_.enable(sink, opts.traceCategories, runId_);
                trace_.labelRun(strprintf("run %u", runId_));
            }
        }
        if (opts.samplingWanted())
            sampler_.setInterval(opts.sampleInterval);
    }
    sampler_.setTrace(&trace_);
    prevLogCycle_ = logCycleSource();
    setLogCycleSource(&now_);
}

Simulator::~Simulator()
{
    if (logCycleSource() == &now_)
        setLogCycleSource(prevLogCycle_);
}

void
Simulator::addTicking(Ticking *component)
{
    if (!component)
        panic("Simulator::addTicking: null component");
    if (component->simOwner_)
        panic("Simulator::addTicking: component registered twice");
    component->simOwner_ = this;
    component->simIndex_ =
        static_cast<std::uint32_t>(ticking_.size());
    ticking_.push_back(component);
    active_.push_back(1);
}

void
Simulator::advanceTo(Cycle target)
{
    if (target < now_ + 1)
        target = now_ + 1;
    if (sampler_.active()) {
        // Interval probes must fire at exact boundaries: land on the
        // boundary cycle and let the run loop sample it normally.
        const Cycle boundary = sampler_.nextBoundary();
        if (boundary > now_ && boundary < target)
            target = boundary;
    }
    if (target > now_ + 1) {
        ++fastForwards_;
        cyclesSkipped_ += target - now_ - 1;
    }
    now_ = target;
}

Cycle
Simulator::run(Cycle max_cycles)
{
    stopRequested_ = false;
    finishedIdle_ = false;
    const Cycle start = now_;
    const Cycle end = now_ + max_cycles;
    const bool sampling = sampler_.active();
    const std::size_t n = ticking_.size();

    // Components stimulated between runs (direct submit/attach/spawn
    // calls) have already woken themselves; re-arming everything once
    // per run() additionally shields against stimulus paths that
    // forget to wake — one round of provable no-op ticks at worst.
    for (std::size_t i = 0; i < n; ++i)
        active_[i] = 1;

    while (now_ < end && !stopRequested_) {
        while (!wakeHeap_.empty() && wakeHeap_.top().first <= now_) {
            active_[wakeHeap_.top().second] = 1;
            wakeHeap_.pop();
        }
        events_.runUntil(now_);

        if (fastForward_) {
            // Tick the active set only; a component woken mid-cycle
            // by an earlier-indexed one is picked up immediately,
            // matching the tick-every-cycle order.
            for (std::size_t i = 0; i < n; ++i)
                if (active_[i])
                    ticking_[i]->tick(now_);
            // Re-arm or retire based on each component's hint.
            for (std::size_t i = 0; i < n; ++i) {
                if (!active_[i])
                    continue;
                const Cycle next =
                    ticking_[i]->nextActiveCycle(now_);
                if (next <= now_ + 1)
                    continue;
                active_[i] = 0;
                if (next != kNoCycle)
                    wakeHeap_.emplace(
                        next, static_cast<std::uint32_t>(i));
            }
        } else {
            for (Ticking *t : ticking_)
                t->tick(now_);
        }
        if (sampling)
            sampler_.maybeSample(now_);

        // Idle detection: when nothing is in flight, fast-forward to
        // the next event or finish. Identical in both kernel modes.
        bool any_busy = false;
        for (Ticking *t : ticking_) {
            if (t->busy()) {
                any_busy = true;
                break;
            }
        }
        if (!any_busy) {
            const Cycle next = events_.nextEventCycle();
            if (next == kNoCycle) {
                ++now_;
                finishedIdle_ = true;
                break;
            }
            // Jump the clock to just before the next event fires.
            advanceTo(next);
            continue;
        }

        if (fastForward_) {
            // Quiescence fast-forward: with every ticking component
            // asleep, no state can change until the earliest wake-up
            // or event, so the skipped cycles are provably no-ops.
            bool any_active = false;
            for (std::size_t i = 0; i < n; ++i) {
                if (active_[i]) {
                    any_active = true;
                    break;
                }
            }
            if (!any_active) {
                Cycle target = events_.nextEventCycle();
                if (!wakeHeap_.empty() &&
                    wakeHeap_.top().first < target)
                    target = wakeHeap_.top().first;
                // Nothing scheduled at all: the system is frozen
                // (busy but stuck) — run out the clock like the
                // per-cycle mode would.
                if (target > end)
                    target = end;
                advanceTo(target);
                continue;
            }
        }
        ++now_;
    }

    trace_.complete(TraceCat::Sim, "run", start, now_);
    if (runId_ != 0)
        snapshotObservability();
    return now_;
}

void
Simulator::snapshotObservability()
{
    const ObsOptions &opts = obsOptions();
    auto &session = detail::ObsSession::instance();

    if (opts.statsWanted()) {
        std::ostringstream ss;
        ss << "{\"run\":" << runId_ << ",\"cycles\":" << now_
           << ",\"stats\":";
        stats_.dumpJson(ss);
        ss << '}';
        session.recordStats(runId_, ss.str());
    }

    if (sampler_.active() && !sampler_.times().empty()) {
        std::string header = "run,cycle";
        for (const auto &name : sampler_.probeNames())
            header += ',' + name;
        session.setSampleHeader(std::move(header));

        std::string body;
        const auto &times = sampler_.times();
        const auto &rows = sampler_.rows();
        for (std::size_t i = 0; i < times.size(); ++i) {
            body += std::to_string(runId_) + ',' +
                    std::to_string(times[i]);
            for (double v : rows[i])
                body += ',' + json::num(v);
            body += '\n';
        }

        std::ostringstream js;
        js << "{\"run\":" << runId_ << ',';
        std::ostringstream inner;
        sampler_.dumpJson(inner);
        js << inner.str().substr(1);
        session.recordSamples(runId_, std::move(body), js.str());
    }
}

} // namespace smarco
