#include "sim/simulator.hpp"

#include <sstream>

#include "sim/json_writer.hpp"
#include "sim/logging.hpp"
#include "sim/observability.hpp"

namespace smarco {

Simulator::Simulator()
{
    const ObsOptions &opts = obsOptions();
    if (opts.anyWanted()) {
        auto &session = detail::ObsSession::instance();
        runId_ = session.beginRun();
        if (opts.traceWanted()) {
            if (TraceSink *sink = session.traceSink()) {
                trace_.enable(sink, opts.traceCategories, runId_);
                trace_.labelRun(strprintf("run %u", runId_));
            }
        }
        if (opts.samplingWanted())
            sampler_.setInterval(opts.sampleInterval);
    }
    sampler_.setTrace(&trace_);
    prevLogCycle_ = logCycleSource();
    setLogCycleSource(&now_);
}

Simulator::~Simulator()
{
    if (logCycleSource() == &now_)
        setLogCycleSource(prevLogCycle_);
}

void
Simulator::addTicking(Ticking *component)
{
    if (!component)
        panic("Simulator::addTicking: null component");
    ticking_.push_back(component);
}

Cycle
Simulator::run(Cycle max_cycles)
{
    stopRequested_ = false;
    finishedIdle_ = false;
    const Cycle start = now_;
    const Cycle end = now_ + max_cycles;
    const bool sampling = sampler_.active();

    while (now_ < end && !stopRequested_) {
        events_.runUntil(now_);
        for (Ticking *t : ticking_)
            t->tick(now_);
        if (sampling)
            sampler_.maybeSample(now_);

        // Idle detection: when nothing is in flight, fast-forward to
        // the next event or finish.
        bool any_busy = false;
        for (Ticking *t : ticking_) {
            if (t->busy()) {
                any_busy = true;
                break;
            }
        }
        if (!any_busy) {
            const Cycle next = events_.nextEventCycle();
            if (next == kNoCycle) {
                ++now_;
                finishedIdle_ = true;
                break;
            }
            // Jump the clock to just before the next event fires.
            now_ = next > now_ + 1 ? next : now_ + 1;
            continue;
        }
        ++now_;
    }

    trace_.complete(TraceCat::Sim, "run", start, now_);
    if (runId_ != 0)
        snapshotObservability();
    return now_;
}

void
Simulator::snapshotObservability()
{
    const ObsOptions &opts = obsOptions();
    auto &session = detail::ObsSession::instance();

    if (opts.statsWanted()) {
        std::ostringstream ss;
        ss << "{\"run\":" << runId_ << ",\"cycles\":" << now_
           << ",\"stats\":";
        stats_.dumpJson(ss);
        ss << '}';
        session.recordStats(runId_, ss.str());
    }

    if (sampler_.active() && !sampler_.times().empty()) {
        std::string header = "run,cycle";
        for (const auto &name : sampler_.probeNames())
            header += ',' + name;
        session.setSampleHeader(std::move(header));

        std::string body;
        const auto &times = sampler_.times();
        const auto &rows = sampler_.rows();
        for (std::size_t i = 0; i < times.size(); ++i) {
            body += std::to_string(runId_) + ',' +
                    std::to_string(times[i]);
            for (double v : rows[i])
                body += ',' + json::num(v);
            body += '\n';
        }

        std::ostringstream js;
        js << "{\"run\":" << runId_ << ',';
        std::ostringstream inner;
        sampler_.dumpJson(inner);
        js << inner.str().substr(1);
        session.recordSamples(runId_, std::move(body), js.str());
    }
}

} // namespace smarco
