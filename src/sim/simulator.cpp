#include "sim/simulator.hpp"

#include "sim/logging.hpp"

namespace smarco {

void
Simulator::addTicking(Ticking *component)
{
    if (!component)
        panic("Simulator::addTicking: null component");
    ticking_.push_back(component);
}

Cycle
Simulator::run(Cycle max_cycles)
{
    stopRequested_ = false;
    finishedIdle_ = false;
    const Cycle end = now_ + max_cycles;

    while (now_ < end && !stopRequested_) {
        events_.runUntil(now_);
        for (Ticking *t : ticking_)
            t->tick(now_);

        // Idle detection: when nothing is in flight, fast-forward to
        // the next event or finish.
        bool any_busy = false;
        for (Ticking *t : ticking_) {
            if (t->busy()) {
                any_busy = true;
                break;
            }
        }
        if (!any_busy) {
            const Cycle next = events_.nextEventCycle();
            if (next == kNoCycle) {
                ++now_;
                finishedIdle_ = true;
                break;
            }
            // Jump the clock to just before the next event fires.
            now_ = next > now_ + 1 ? next : now_ + 1;
            continue;
        }
        ++now_;
    }
    return now_;
}

} // namespace smarco
