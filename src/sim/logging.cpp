#include "sim/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace smarco {

namespace {

LogLevel g_level = LogLevel::Normal;
const Cycle *g_cycle = nullptr;

/** " @<cycle>" when a simulation clock is installed, else "". */
std::string
cyclePrefix()
{
    if (!g_cycle)
        return std::string();
    return " @" + std::to_string(*g_cycle);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
setLogCycleSource(const Cycle *cycle)
{
    g_cycle = cycle;
}

const Cycle *
logCycleSource()
{
    return g_cycle;
}

namespace detail {

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace detail

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn%s: %s\n", cyclePrefix().c_str(),
                 msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info%s: %s\n", cyclePrefix().c_str(),
                 msg.c_str());
}

} // namespace smarco
