#include "sim/event_queue.hpp"

#include <utility>

#include "sim/logging.hpp"

namespace smarco {

void
EventQueue::schedule(Cycle when, EventFn fn)
{
    if (!fn)
        panic("EventQueue::schedule: empty callback");
    heap_.push(Entry{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(Cycle now, Cycle delay, EventFn fn)
{
    schedule(now + delay, std::move(fn));
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNoCycle : heap_.top().when;
}

std::size_t
EventQueue::runUntil(Cycle now)
{
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.top().when <= now) {
        // Copy out before pop so the callback may schedule new events.
        EventFn fn = heap_.top().fn;
        heap_.pop();
        fn();
        ++fired;
    }
    return fired;
}

} // namespace smarco
