/**
 * @file
 * Discrete-event queue for one-shot timed callbacks.
 *
 * The SmarCo simulator is primarily cycle-driven (see Simulator), but
 * components use the event queue for sparse, latency-shaped actions:
 * memory response arrival, MACT deadline expiry, DMA completion.
 * Events scheduled for the same cycle fire in scheduling order, which
 * keeps runs bit-reproducible.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace smarco {

/** Callback invoked when its scheduled cycle is reached. */
using EventFn = std::function<void()>;

/**
 * Min-heap of timed callbacks ordered by (cycle, insertion sequence).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Schedule fn to run at absolute cycle when (>= current head). */
    void schedule(Cycle when, EventFn fn);

    /** Schedule fn to run delay cycles after now. */
    void scheduleAfter(Cycle now, Cycle delay, EventFn fn);

    /** Cycle of the earliest pending event, or kNoCycle if empty. */
    Cycle nextEventCycle() const;

    /**
     * Fire every event with cycle <= now, in deterministic order.
     * Events scheduled during processing for cycles <= now also fire.
     * @return number of events fired.
     */
    std::size_t runUntil(Cycle now);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

  private:
    struct Entry {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;
    };
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace smarco
