/**
 * @file
 * Lightweight statistics framework.
 *
 * Components register named statistics in a StatRegistry; experiment
 * harnesses and tests look them up by hierarchical dotted name. Only
 * three concrete kinds are needed by the SmarCo models: Scalar
 * (counter/value), Average (ratio of two accumulators), and Histogram
 * (linear-bucket distribution with moment tracking).
 */
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace smarco {

class StatRegistry;

/** Base class for all named statistics. */
class Stat
{
  public:
    Stat(StatRegistry &registry, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

    /** Primary scalar summary of this statistic. */
    virtual double value() const = 0;

    /** Reset to the freshly-constructed state. */
    virtual void reset() = 0;

    /** One-or-more-line human readable dump. */
    virtual void print(std::ostream &os) const;

    /**
     * JSON value object of this stat (everything except the name),
     * e.g. {"kind":"scalar","value":3,"desc":"..."}. Every concrete
     * kind includes at least "kind", "value" and "desc".
     */
    virtual void printJson(std::ostream &os) const;

  protected:
    /** Opening fields shared by every printJson override. */
    void printJsonHead(std::ostream &os, const char *kind) const;

  private:
    std::string name_;
    std::string desc_;
};

/** A plain accumulating counter / settable value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }

    double value() const override { return value_; }
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Mean of a stream of samples (sum / count). */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v) { sum_ += v; count_ += 1.0; }

    double value() const override
    {
        return count_ > 0.0 ? sum_ / count_ : 0.0;
    }
    double sum() const { return sum_; }
    double count() const { return count_; }
    void reset() override { sum_ = 0.0; count_ = 0.0; }
    void printJson(std::ostream &os) const override;

  private:
    double sum_ = 0.0;
    double count_ = 0.0;
};

/**
 * Linear-bucket histogram over [lo, hi) with moment tracking.
 * Samples outside the range land in saturating edge buckets.
 *
 * Weights are frequency weights: sample(v, w) is equivalent to
 * sampling v w times, so count() is the total weight and mean,
 * stddev and the buckets are all weight-scaled. A weight of zero is
 * a complete no-op — it does not touch min/max, the moments or the
 * buckets.
 */
class Histogram : public Stat
{
  public:
    Histogram(StatRegistry &registry, std::string name,
              std::string desc, double lo, double hi,
              std::size_t buckets);

    void sample(double v, std::uint64_t weight = 1);

    /** value() reports the sample mean. */
    double value() const override;
    void reset() override;
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;

    std::uint64_t count() const { return count_; }
    double minSample() const { return min_; }
    double maxSample() const { return max_; }

    /**
     * p-quantile estimate in [0, 1], linearly interpolated within the
     * containing bucket and clamped to the observed [min, max] (so
     * edge-bucket saturation cannot report values never sampled).
     * Returns 0 when the histogram is empty.
     */
    double percentile(double p) const;
    double stddev() const;
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketLow(std::size_t i) const;
    double bucketWidth() const { return width_; }

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Owner-side registry mapping dotted names to statistics. Statistics
 * register themselves on construction and must outlive the registry
 * queries made against them (they are member fields of components in
 * practice).
 */
class StatRegistry
{
  public:
    /** Register a stat; names must be unique. Called by Stat ctor. */
    void add(Stat *stat);

    /** Look up by exact name; returns nullptr when absent. */
    Stat *find(const std::string &name) const;

    /** Look up and panic when absent (for tests/harnesses). */
    Stat &get(const std::string &name) const;

    /**
     * Typed lookup; nullptr when absent or of a different kind.
     * Harnesses use this instead of casting or name scraping.
     */
    template <typename T>
    T *findAs(const std::string &name) const
    { return dynamic_cast<T *>(find(name)); }

    /** Typed lookup that panics when absent or of the wrong kind. */
    template <typename T>
    T &getAs(const std::string &name) const
    {
        T *s = findAs<T>(name);
        if (!s)
            missingTyped(name);
        return *s;
    }

    /** All stats whose name starts with prefix, in name order. */
    std::vector<Stat *> findPrefix(const std::string &prefix) const;

    /**
     * Sum of value() over every stat whose name starts with prefix
     * and ends with suffix (e.g. total("chip.core", ".slotsUsed")
     * aggregates one per-core counter across the chip).
     */
    double total(const std::string &prefix,
                 const std::string &suffix) const;

    /** Reset every registered stat. */
    void resetAll();

    /** Dump every stat, one per line, in name order. */
    void dump(std::ostream &os) const;

    /**
     * Dump every stat as one JSON object keyed by name, in name
     * order. Histograms include their full buckets and moments.
     */
    void dumpJson(std::ostream &os) const;

    std::size_t size() const { return stats_.size(); }

  private:
    [[noreturn]] void missingTyped(const std::string &name) const;

    std::map<std::string, Stat *> stats_;
};

} // namespace smarco
