/**
 * @file
 * Interval time-series sampler.
 *
 * The Simulator owns one IntervalSampler and calls maybeSample() each
 * cycle of the run loop (an inline no-op until an interval is set and
 * a probe registered). Components register named probes — callables
 * returning one double — and the sampler snapshots every probe at
 * exact interval boundaries, building a time series that dumps as CSV
 * or JSON. Probes may carry internal state to report rates (e.g. IPC
 * over the last interval) rather than cumulative counters.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace smarco {

class TraceManager;

class IntervalSampler
{
  public:
    using Probe = std::function<double()>;

    /** Sample every n cycles; 0 disables. Resets the boundary clock. */
    void setInterval(Cycle n);
    Cycle interval() const { return interval_; }

    /** Register a named probe (columns appear in insertion order). */
    void addProbe(std::string name, Probe probe);

    /** True once sampling can actually happen. */
    bool active() const { return interval_ > 0 && !probes_.empty(); }

    /** Also mirror each sample as trace counter events (may be null). */
    void setTrace(TraceManager *trace) { trace_ = trace; }

    /** Per-cycle hook: snapshots when now crosses a boundary. */
    void maybeSample(Cycle now)
    {
        if (interval_ == 0 || now < nextAt_ || probes_.empty())
            return;
        sampleAt(now);
    }

    /** Force a snapshot at the given cycle (advances the boundary). */
    void sampleAt(Cycle now);

    /** Next boundary cycle a clock skip must not jump across. */
    Cycle nextBoundary() const { return nextAt_; }

    const std::vector<Cycle> &times() const { return times_; }
    const std::vector<std::vector<double>> &rows() const
    { return rows_; }
    std::vector<std::string> probeNames() const;

    /** One header row ("cycle,probe1,...") plus one row per sample. */
    void dumpCsv(std::ostream &os) const;
    /** {"interval":N,"probes":[...],"samples":[[cycle,v...],...]} */
    void dumpJson(std::ostream &os) const;

    void clearSamples();

  private:
    struct NamedProbe {
        std::string name;
        Probe fn;
    };

    Cycle interval_ = 0;
    Cycle nextAt_ = 0;
    std::vector<NamedProbe> probes_;
    std::vector<Cycle> times_;
    std::vector<std::vector<double>> rows_;
    TraceManager *trace_ = nullptr;
};

} // namespace smarco
