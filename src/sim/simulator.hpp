/**
 * @file
 * Cycle-driven simulation driver.
 *
 * The paper's evaluation platform is a PDES simulator; we substitute a
 * deterministic single-threaded kernel (see DESIGN.md) that combines a
 * fast per-cycle tick path for always-active structures (pipelines,
 * ring stops) with an event queue for sparse timed actions.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smarco {

/**
 * Interface for components evaluated once per simulated cycle.
 * Ticking objects are evaluated in registration order, which is part
 * of the deterministic contract of the simulator.
 */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Advance the component by one cycle. */
    virtual void tick(Cycle now) = 0;

    /**
     * Whether the component still has in-flight work. When every
     * ticking object is quiescent and the event queue is empty the
     * simulator stops early.
     */
    virtual bool busy() const { return true; }
};

/**
 * Simulation kernel: owns the clock, the event queue, and the list of
 * ticking components. One Simulator models one chip-under-test.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component for per-cycle evaluation. */
    void addTicking(Ticking *component);

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Timed-callback queue shared by all components. */
    EventQueue &events() { return events_; }

    /** Statistics registry shared by all components. */
    StatRegistry &stats() { return stats_; }

    /**
     * Run until max_cycles elapse, stop is requested, or the system
     * goes idle (no busy component, empty event queue).
     * @return the cycle at which the run stopped.
     */
    Cycle run(Cycle max_cycles);

    /** Ask the kernel to stop at the end of the current cycle. */
    void requestStop() { stopRequested_ = true; }

    /** True when the last run() ended because everything went idle. */
    bool finishedIdle() const { return finishedIdle_; }

  private:
    Cycle now_ = 0;
    bool stopRequested_ = false;
    bool finishedIdle_ = false;
    std::vector<Ticking *> ticking_;
    EventQueue events_;
    StatRegistry stats_;
};

} // namespace smarco
