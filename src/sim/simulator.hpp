/**
 * @file
 * Cycle-driven simulation driver.
 *
 * The paper's evaluation platform is a PDES simulator; we substitute a
 * deterministic single-threaded kernel (see DESIGN.md) that combines a
 * fast per-cycle tick path for always-active structures (pipelines,
 * ring stops) with an event queue for sparse timed actions.
 */
#pragma once

#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/sampler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace smarco {

class Simulator;

/**
 * Interface for components evaluated once per simulated cycle.
 * Ticking objects are evaluated in registration order, which is part
 * of the deterministic contract of the simulator.
 */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Advance the component by one cycle. */
    virtual void tick(Cycle now) = 0;

    /**
     * Whether the component still has in-flight work. When every
     * ticking object is quiescent and the event queue is empty the
     * simulator stops early.
     */
    virtual bool busy() const { return true; }

    /**
     * Quiescence hint: the earliest future cycle at which tick() might
     * do something, assuming no external stimulus arrives in between.
     * Contract: every tick() between now and the returned cycle must
     * be a provable no-op (no state change, no stats, no RNG draws),
     * so the fast-forward kernel may skip it. Return now + 1 (the
     * default) to stay on the per-cycle path, a future cycle for a
     * known timer (deadline, quantum boundary), or kNoCycle to sleep
     * until an external Simulator::wake(). A component whose state is
     * changed from outside tick() (inject/submit/attach/...) must
     * wake() itself there; spurious wakes are harmless by the no-op
     * contract.
     */
    virtual Cycle nextActiveCycle(Cycle now) const { return now + 1; }

  private:
    friend class Simulator;
    /** Registration slot in the owning simulator's active set. */
    std::uint32_t simIndex_ = 0;
    Simulator *simOwner_ = nullptr;
};

/**
 * Simulation kernel: owns the clock, the event queue, and the list of
 * ticking components. One Simulator models one chip-under-test.
 */
class Simulator
{
  public:
    /**
     * Hooks into the process-level observability options: when a
     * stats/trace/sample output is configured the simulator becomes
     * one numbered "run" in those files, and the logging layer
     * prefixes messages with this simulator's cycle while it lives.
     */
    Simulator();
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component for per-cycle evaluation. */
    void addTicking(Ticking *component);

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Timed-callback queue shared by all components. */
    EventQueue &events() { return events_; }

    /** Statistics registry shared by all components. */
    StatRegistry &stats() { return stats_; }

    /** Trace event emitter (disabled unless a trace file is set). */
    TraceManager &trace() { return trace_; }

    /** Interval time-series sampler driven by the run loop. */
    IntervalSampler &sampler() { return sampler_; }

    /** Run id in the process-wide observability outputs (0 = none). */
    std::uint32_t obsRunId() const { return runId_; }

    /**
     * Run until max_cycles elapse, stop is requested, or the system
     * goes idle (no busy component, empty event queue).
     * @return the cycle at which the run stopped.
     */
    Cycle run(Cycle max_cycles);

    /** Ask the kernel to stop at the end of the current cycle. */
    void requestStop() { stopRequested_ = true; }

    /** True when the last run() ended because everything went idle. */
    bool finishedIdle() const { return finishedIdle_; }

    /**
     * True when any registered component reports in-flight work.
     * External controllers (e.g. the fault campaign's watchdog and
     * dispatcher) use this to tell "workload still running" apart from
     * "only my own pending events keep the queue non-empty".
     */
    bool anyBusy() const
    {
        for (const Ticking *t : ticking_)
            if (t->busy())
                return true;
        return false;
    }

    /**
     * Return a sleeping component to the active set (idempotent; a
     * no-op for components registered to another simulator). Called
     * by components from their stimulus entry points.
     */
    void wake(Ticking *component)
    {
        if (component && component->simOwner_ == this)
            active_[component->simIndex_] = 1;
    }

    /**
     * Enable/disable quiescence-aware fast-forwarding (default on,
     * unless --no-fast-forward / SMARCO_NO_FAST_FORWARD is set). When
     * off, every registered component is ticked every cycle — the
     * slow reference mode the golden-stats harness compares against.
     */
    void setFastForward(bool on) { fastForward_ = on; }
    bool fastForward() const { return fastForward_; }

    /** Cycles skipped by quiescence fast-forwards (kernel metric;
     *  deliberately not a registered Stat so both kernel modes dump
     *  identical stats JSON). */
    std::uint64_t cyclesSkipped() const { return cyclesSkipped_; }
    /** Number of multi-cycle jumps the kernel performed. */
    std::uint64_t fastForwards() const { return fastForwards_; }

  private:
    /** Record this run's stats/samples in the process outputs. */
    void snapshotObservability();

    /**
     * Jump the clock forward to target (at least one cycle), clamped
     * to the next sampling boundary so interval probes still fire at
     * exact cycles across a skip.
     */
    void advanceTo(Cycle target);

    Cycle now_ = 0;
    bool stopRequested_ = false;
    bool finishedIdle_ = false;
    bool fastForward_ = true;
    std::vector<Ticking *> ticking_;
    /** Parallel to ticking_: 1 when the component must be ticked. */
    std::vector<std::uint8_t> active_;
    /** (wake cycle, registration index); entries may be stale — a
     *  popped entry merely re-activates the component, and spurious
     *  ticks are no-ops by the Ticking contract. */
    std::priority_queue<std::pair<Cycle, std::uint32_t>,
                        std::vector<std::pair<Cycle, std::uint32_t>>,
                        std::greater<>>
        wakeHeap_;
    std::uint64_t cyclesSkipped_ = 0;
    std::uint64_t fastForwards_ = 0;
    EventQueue events_;
    StatRegistry stats_;
    TraceManager trace_;
    IntervalSampler sampler_;
    std::uint32_t runId_ = 0;
    const Cycle *prevLogCycle_ = nullptr;
};

} // namespace smarco
