/**
 * @file
 * Cycle-driven simulation driver.
 *
 * The paper's evaluation platform is a PDES simulator; we substitute a
 * deterministic single-threaded kernel (see DESIGN.md) that combines a
 * fast per-cycle tick path for always-active structures (pipelines,
 * ring stops) with an event queue for sparse timed actions.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/sampler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace smarco {

/**
 * Interface for components evaluated once per simulated cycle.
 * Ticking objects are evaluated in registration order, which is part
 * of the deterministic contract of the simulator.
 */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Advance the component by one cycle. */
    virtual void tick(Cycle now) = 0;

    /**
     * Whether the component still has in-flight work. When every
     * ticking object is quiescent and the event queue is empty the
     * simulator stops early.
     */
    virtual bool busy() const { return true; }
};

/**
 * Simulation kernel: owns the clock, the event queue, and the list of
 * ticking components. One Simulator models one chip-under-test.
 */
class Simulator
{
  public:
    /**
     * Hooks into the process-level observability options: when a
     * stats/trace/sample output is configured the simulator becomes
     * one numbered "run" in those files, and the logging layer
     * prefixes messages with this simulator's cycle while it lives.
     */
    Simulator();
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component for per-cycle evaluation. */
    void addTicking(Ticking *component);

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Timed-callback queue shared by all components. */
    EventQueue &events() { return events_; }

    /** Statistics registry shared by all components. */
    StatRegistry &stats() { return stats_; }

    /** Trace event emitter (disabled unless a trace file is set). */
    TraceManager &trace() { return trace_; }

    /** Interval time-series sampler driven by the run loop. */
    IntervalSampler &sampler() { return sampler_; }

    /** Run id in the process-wide observability outputs (0 = none). */
    std::uint32_t obsRunId() const { return runId_; }

    /**
     * Run until max_cycles elapse, stop is requested, or the system
     * goes idle (no busy component, empty event queue).
     * @return the cycle at which the run stopped.
     */
    Cycle run(Cycle max_cycles);

    /** Ask the kernel to stop at the end of the current cycle. */
    void requestStop() { stopRequested_ = true; }

    /** True when the last run() ended because everything went idle. */
    bool finishedIdle() const { return finishedIdle_; }

  private:
    /** Record this run's stats/samples in the process outputs. */
    void snapshotObservability();

    Cycle now_ = 0;
    bool stopRequested_ = false;
    bool finishedIdle_ = false;
    std::vector<Ticking *> ticking_;
    EventQueue events_;
    StatRegistry stats_;
    TraceManager trace_;
    IntervalSampler sampler_;
    std::uint32_t runId_ = 0;
    const Cycle *prevLogCycle_ = nullptr;
};

} // namespace smarco
