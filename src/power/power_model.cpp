#include "power/power_model.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace smarco::power {

namespace {

// Calibration constants derived from Table 1 (32 nm, activity 1.0):
//   cores  634.32 mm2 / 209.91 W for 256 4-wide 8-thread cores @1.5GHz
//   ring    57.43 mm2 /  14.55 W for 22x64B + 272x32B ring stops
//   MACT     1.43 mm2 /   0.14 W for 16 tables of 32 lines
//   SRAM    44.90 mm2 /   1.84 W for 40 MB of SPM+cache
//   MC+PHY  12.92 mm2 /  13.65 W for 4 controllers, 136.5 GB/s
constexpr double kCoreArea = 0.50108;   // mm2 per unit core complexity
constexpr double kCoreDyn = 0.085848;   // W per complexity*GHz
constexpr double kCoreLeak = 0.099271;  // W per mm2
constexpr double kRingArea = 0.0056794; // mm2 per byte-stop
constexpr double kRingDyn = 0.00076729; // W per byte-stop*GHz
constexpr double kRingLeak = 0.050671;  // W per mm2
constexpr double kMactArea = 0.0027930; // mm2 per line
constexpr double kMactDyn = 0.00013021; // W per line*GHz
constexpr double kMactLeak = 0.027972;  // W per mm2
constexpr double kSramAreaPerMb = 1.1225;  // mm2 per MB
constexpr double kSramDynPerMb = 0.0073333;// W per MB*GHz
constexpr double kSramLeak = 0.031180;  // W per mm2
constexpr double kMcArea = 3.23;        // mm2 per controller
constexpr double kMcDyn = 0.080586;     // W per GB/s
constexpr double kMcLeak = 0.205108;    // W per mm2

double
coreComplexity(std::uint32_t issue_width, std::uint32_t threads)
{
    // Superlinear issue-width cost, modest per-context cost: the
    // shape McPAT reports for narrow in-order multithreaded cores.
    return std::pow(static_cast<double>(issue_width), 0.9) *
           (1.0 + 0.06 * static_cast<double>(threads - 1));
}

double
coreDynFactor(std::uint32_t issue_width, std::uint32_t threads)
{
    return std::pow(static_cast<double>(issue_width), 0.9) *
           (1.0 + 0.04 * static_cast<double>(threads - 1));
}

} // namespace

double
TechNode::areaScale() const
{
    return (nm / 32.0) * (nm / 32.0);
}

double
TechNode::dynScale() const
{
    return (nm / 32.0) * (vdd / 0.90) * (vdd / 0.90);
}

double
TechNode::leakScale() const
{
    return (nm / 32.0) * std::pow(vdd / 0.90, 3.0);
}

TechNode
TechNode::nm40()
{
    return TechNode{"tsmc-40nm", 40.0, 1.00};
}

TechNode
TechNode::nm32()
{
    return TechNode{"32nm", 32.0, 0.90};
}

TechNode
TechNode::nm14()
{
    return TechNode{"14nm", 14.0, 0.70};
}

double
ChipPowerReport::totalAreaMm2() const
{
    double a = 0.0;
    for (const auto &c : components)
        a += c.areaMm2;
    return a;
}

double
ChipPowerReport::totalPowerW() const
{
    double p = 0.0;
    for (const auto &c : components)
        p += c.totalW();
    return p;
}

const ComponentPower &
ChipPowerReport::component(const std::string &name) const
{
    for (const auto &c : components) {
        if (c.name == name)
            return c;
    }
    panic("power report has no component '%s'", name.c_str());
}

PowerModel::PowerModel(TechNode node)
    : node_(std::move(node))
{
    if (node_.nm <= 0.0 || node_.vdd <= 0.0)
        fatal("power model: bad tech node");
}

ComponentPower
PowerModel::cores(std::uint32_t count, std::uint32_t issue_width,
                  std::uint32_t threads, double freq_ghz,
                  double activity) const
{
    ComponentPower p;
    p.name = "Cores";
    const double n = static_cast<double>(count);
    p.areaMm2 = n * kCoreArea * coreComplexity(issue_width, threads) *
                node_.areaScale();
    p.dynamicW = n * kCoreDyn * coreDynFactor(issue_width, threads) *
                 freq_ghz * node_.dynScale() * activity;
    p.leakageW = p.areaMm2 * kCoreLeak * node_.leakScale() /
                 node_.areaScale();
    return p;
}

ComponentPower
PowerModel::ring(std::uint32_t main_stops, std::uint32_t sub_rings,
                 std::uint32_t stops_per_sub,
                 std::uint32_t main_bytes_per_cycle,
                 std::uint32_t sub_bytes_per_cycle, double freq_ghz,
                 double activity) const
{
    ComponentPower p;
    p.name = "Hierarchy Ring";
    const double byte_stops =
        static_cast<double>(main_stops) * main_bytes_per_cycle +
        static_cast<double>(sub_rings) * stops_per_sub *
            sub_bytes_per_cycle;
    p.areaMm2 = byte_stops * kRingArea * node_.areaScale();
    p.dynamicW = byte_stops * kRingDyn * freq_ghz * node_.dynScale() *
                 activity;
    p.leakageW = p.areaMm2 * kRingLeak * node_.leakScale() /
                 node_.areaScale();
    return p;
}

ComponentPower
PowerModel::mact(std::uint32_t count, std::uint32_t lines,
                 double freq_ghz, double activity) const
{
    ComponentPower p;
    p.name = "MACT";
    const double total_lines = static_cast<double>(count) * lines;
    p.areaMm2 = total_lines * kMactArea * node_.areaScale();
    p.dynamicW = total_lines * kMactDyn * freq_ghz * node_.dynScale() *
                 activity;
    p.leakageW = p.areaMm2 * kMactLeak * node_.leakScale() /
                 node_.areaScale();
    return p;
}

ComponentPower
PowerModel::sram(std::uint64_t total_bytes, double freq_ghz,
                 double activity) const
{
    ComponentPower p;
    p.name = "SPM+Cache";
    const double mb = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
    p.areaMm2 = mb * kSramAreaPerMb * node_.areaScale();
    p.dynamicW = mb * kSramDynPerMb * freq_ghz * node_.dynScale() *
                 activity;
    p.leakageW = p.areaMm2 * kSramLeak * node_.leakScale() /
                 node_.areaScale();
    return p;
}

ComponentPower
PowerModel::memCtrl(std::uint32_t count, double bandwidth_gbs,
                    double activity) const
{
    ComponentPower p;
    p.name = "MC+PHY";
    p.areaMm2 = static_cast<double>(count) * kMcArea *
                node_.areaScale();
    p.dynamicW = bandwidth_gbs * kMcDyn * node_.dynScale() * activity;
    p.leakageW = p.areaMm2 * kMcLeak * node_.leakScale() /
                 node_.areaScale();
    return p;
}

ChipPowerReport
smarcoPower(const SmarcoPowerSpec &spec)
{
    PowerModel model(spec.node);
    ChipPowerReport report;
    report.components.push_back(model.cores(
        spec.numCores, spec.issueWidth, spec.threadsPerCore,
        spec.freqGHz, spec.activity));
    report.components.push_back(model.ring(
        spec.mainStops, spec.numSubRings, spec.stopsPerSubRing,
        spec.mainBytesPerCycle, spec.subBytesPerCycle, spec.freqGHz,
        spec.activity));
    report.components.push_back(model.mact(
        spec.numSubRings, spec.mactLines, spec.freqGHz,
        spec.activity));
    report.components.push_back(model.sram(
        static_cast<std::uint64_t>(spec.numCores) *
            (spec.spmBytesPerCore + spec.cacheBytesPerCore),
        spec.freqGHz, spec.activity));
    report.components.push_back(model.memCtrl(
        spec.numMemCtrls, spec.memBandwidthGBs, spec.activity));
    return report;
}

double
xeonPowerW(double utilisation)
{
    // TDP 165 W; roughly 45% is uncore/leakage/idle cost that does
    // not scale with load on this class of server part.
    if (utilisation < 0.0)
        utilisation = 0.0;
    if (utilisation > 1.0)
        utilisation = 1.0;
    return 165.0 * (0.45 + 0.55 * utilisation);
}

} // namespace smarco::power
