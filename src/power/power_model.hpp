/**
 * @file
 * Analytical area/power models in the spirit of McPAT (cores),
 * CACTI 6.0 (SRAM arrays) and Orion 2.0 (routers), which the paper
 * uses for Table 1. Constants are calibrated so the default SmarCo
 * configuration at the 32 nm node reproduces Table 1; technology
 * scaling then derives the 40 nm prototype and the 14 nm Xeon
 * comparisons.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smarco::power {

/** A CMOS technology node with first-order scaling factors. */
struct TechNode {
    std::string name;
    double nm = 32.0;
    double vdd = 0.90;

    /** Area scale relative to the 32 nm calibration node. */
    double areaScale() const;
    /** Dynamic-power scale (CV^2f per transistor) vs 32 nm. */
    double dynScale() const;
    /** Leakage scale vs 32 nm. */
    double leakScale() const;

    static TechNode nm40();
    static TechNode nm32();
    static TechNode nm14();
};

/** Area and power of one chip component. */
struct ComponentPower {
    std::string name;
    double areaMm2 = 0.0;
    double dynamicW = 0.0;
    double leakageW = 0.0;

    double totalW() const { return dynamicW + leakageW; }
};

/** Whole-chip roll-up (Table 1 rows + total). */
struct ChipPowerReport {
    std::vector<ComponentPower> components;

    double totalAreaMm2() const;
    double totalPowerW() const;
    /** Row lookup by name; panics when missing. */
    const ComponentPower &component(const std::string &name) const;
};

/**
 * The analytical model. All methods take an activity factor in
 * [0, 1]: 1.0 reproduces the paper's Table 1 (peak design point).
 */
class PowerModel
{
  public:
    explicit PowerModel(TechNode node);

    const TechNode &node() const { return node_; }

    /** McPAT-like TCG core array model. */
    ComponentPower cores(std::uint32_t count, std::uint32_t issue_width,
                         std::uint32_t threads, double freq_ghz,
                         double activity = 1.0) const;

    /** Orion-like hierarchical ring model. */
    ComponentPower ring(std::uint32_t main_stops,
                        std::uint32_t sub_rings,
                        std::uint32_t stops_per_sub,
                        std::uint32_t main_bytes_per_cycle,
                        std::uint32_t sub_bytes_per_cycle,
                        double freq_ghz, double activity = 1.0) const;

    /** RAM-based MACT arrays at the gateways. */
    ComponentPower mact(std::uint32_t count, std::uint32_t lines,
                        double freq_ghz, double activity = 1.0) const;

    /** CACTI-like SRAM model covering all SPMs and caches. */
    ComponentPower sram(std::uint64_t total_bytes, double freq_ghz,
                        double activity = 1.0) const;

    /** Memory controllers + PHY. */
    ComponentPower memCtrl(std::uint32_t count, double bandwidth_gbs,
                           double activity = 1.0) const;

  private:
    TechNode node_;
};

/** Parameters of a SmarCo chip power evaluation. */
struct SmarcoPowerSpec {
    TechNode node = TechNode::nm32();
    std::uint32_t numCores = 256;
    std::uint32_t issueWidth = 4;
    std::uint32_t threadsPerCore = 8;
    double freqGHz = 1.5;
    std::uint32_t numSubRings = 16;
    std::uint32_t stopsPerSubRing = 17;
    std::uint32_t mainStops = 22;
    std::uint32_t mainBytesPerCycle = 64;
    std::uint32_t subBytesPerCycle = 32;
    std::uint32_t mactLines = 32;
    std::uint64_t spmBytesPerCore = 128 * 1024;
    std::uint64_t cacheBytesPerCore = 32 * 1024;
    std::uint32_t numMemCtrls = 4;
    double memBandwidthGBs = 136.5;
    /** Average chip activity (1.0 = Table 1 peak design point). */
    double activity = 1.0;
};

/** Build the Table 1 report for a SmarCo configuration. */
ChipPowerReport smarcoPower(const SmarcoPowerSpec &spec);

/**
 * Operating power of the Xeon E7-8890V4 baseline at a given
 * utilisation (TDP 165 W; ~45% of it idle/uncore).
 */
double xeonPowerW(double utilisation);

} // namespace smarco::power
