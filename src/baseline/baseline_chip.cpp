#include "baseline/baseline_chip.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::baseline {

using isa::MicroOp;
using isa::OpKind;

namespace {

Addr
kernelCodeBase(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return 0x7000'0000 + ((h & 0xffff) << 16);
}

constexpr Addr kDramBase = 0x1'0000'0000ULL;

} // namespace

BaselineChip::BaselineChip(Simulator &sim, BaselineParams params)
    : sim_(sim),
      params_(std::move(params)),
      committed_(sim.stats(), "base.committed", "micro-ops committed"),
      cycles_(sim.stats(), "base.cycles", "active cycles"),
      slotsOffered_(sim.stats(), "base.slotsOffered",
                    "issue slots offered"),
      slotsUsed_(sim.stats(), "base.slotsUsed", "issue slots used"),
      starveCycles_(sim.stats(), "base.starveCycles",
                    "thread-cycles lost to instruction starvation"),
      branches_(sim.stats(), "base.branches", "branches executed"),
      branchMisses_(sim.stats(), "base.branchMisses",
                    "branches mispredicted"),
      tasksDone_(sim.stats(), "base.tasksDone", "tasks completed"),
      switches_(sim.stats(), "base.switches", "OS context switches"),
      deadlineMisses_(sim.stats(), "base.deadlineMisses",
                      "tasks finishing past their deadline"),
      workerKills_(sim.stats(), "base.workerKills",
                   "worker threads killed by fault injection"),
      workerHangs_(sim.stats(), "base.workerHangs",
                   "worker threads frozen by fault injection"),
      recoveries_(sim.stats(), "base.recoveries",
                  "hung workers restarted by the OS watchdog"),
      l1Latency_(sim.stats(), "base.l1Latency",
                 "mean latency of L1-served accesses"),
      l2Latency_(sim.stats(), "base.l2Latency",
                 "mean latency of L2-served accesses"),
      llcLatency_(sim.stats(), "base.llcLatency",
                  "mean latency of LLC-served accesses")
{
    if (params_.numCores == 0 || params_.smtPerCore == 0)
        fatal("baseline: empty chip");

    llc_ = std::make_unique<mem::Cache>(sim.stats(), params_.llc,
                                        "base.llc");
    dram_ = std::make_unique<mem::DramController>(sim, params_.dram,
                                                  "base.dram");
    cores_.resize(params_.numCores);
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        Core &core = cores_[c];
        core.l1i = std::make_unique<mem::Cache>(
            sim.stats(), params_.l1i, strprintf("base.core%02u.l1i", c));
        core.l1d = std::make_unique<mem::Cache>(
            sim.stats(), params_.l1d, strprintf("base.core%02u.l1d", c));
        core.l2 = std::make_unique<mem::Cache>(
            sim.stats(), params_.l2, strprintf("base.core%02u.l2", c));
        mem::CacheParams tlb;
        tlb.name = "dtlb";
        tlb.lineBytes = params_.pageBytes;
        tlb.assoc = 8;
        tlb.sizeBytes = static_cast<std::uint64_t>(params_.tlbEntries) *
                        params_.pageBytes;
        core.dtlb = std::make_unique<mem::Cache>(
            sim.stats(), tlb, strprintf("base.core%02u.dtlb", c));
        core.slots.resize(params_.smtPerCore);
    }
    sim.addTicking(this);
}

workloads::AddressLayout
BaselineChip::layoutFor(const SwThread &t) const
{
    // On the conventional chip everything is cacheable DRAM; the
    // SmarCo memory classes map onto per-thread regions: the SPM
    // region becomes the thread's hot stack/TLS data, the remote SPM
    // becomes a neighbour's shared buffer.
    const std::uint64_t nthreads =
        std::max<std::uint64_t>(threads_.size(), 1);
    workloads::AddressLayout layout;
    layout.spmLocalBase = kDramBase + t.id * 0x100000ULL;
    layout.spmLocalSize = params_.hotRegionBytes;
    layout.spmRemoteBase =
        kDramBase + ((t.id + 1) % nthreads) * 0x100000ULL;
    layout.spmRemoteSize = params_.hotRegionBytes;
    layout.heapBase = kDramBase + 0x2000'0000ULL + t.id * 0x400000ULL;
    // Without an SPM to stage hot data into, the conventional chip
    // keeps the full server-side state cacheable: its heap working
    // set is far larger than the SmarCo-staged slice.
    layout.heapSize = 32 * (t.task.profile
                                ? t.task.profile->heapWorkingSet
                                : 256 * 1024);
    layout.streamBase =
        kDramBase + 0x2'0000'0000ULL + t.id * 0x400'0000ULL;
    layout.streamSize = t.task.profile
        ? t.task.profile->streamWorkingSet
        : 4 * 1024 * 1024;
    return layout;
}

void
BaselineChip::spawnWorkers(std::uint32_t num_threads,
                           std::vector<workloads::TaskSpec> tasks,
                           bool persistent)
{
    if (num_threads == 0)
        fatal("baseline: zero worker threads");
    persistent_ = persistent;
    for (auto &t : tasks)
        bag_.push_back(t);

    const std::uint32_t base =
        static_cast<std::uint32_t>(threads_.size());
    threads_.resize(base + num_threads);
    const std::uint32_t hw_slots =
        params_.numCores * params_.smtPerCore;
    for (std::uint32_t k = 0; k < num_threads; ++k) {
        SwThread &t = threads_[base + k];
        t.id = base + k;
        t.state = SwThread::State::Starting;
        // pthread_create is serialised through the spawning thread.
        t.readyAt = sim_.now() +
            static_cast<Cycle>(k + 1) * params_.threadCreateCost;
        t.rng = Rng(0xba5e + t.id, t.id);
        const std::uint32_t slot = t.id % hw_slots;
        cores_[slot / params_.smtPerCore]
            .slots[slot % params_.smtPerCore].push_back(t.id);
        ++liveThreads_;
        ++startingCount_;
    }
    sim_.wake(this);
}

void
BaselineChip::injectTask(const workloads::TaskSpec &task)
{
    bag_.push_back(task);
}

void
BaselineChip::enableAdmission(std::uint32_t queue_cap,
                              double latency_hist_max)
{
    if (queue_cap == 0)
        fatal("baseline: zero admission queue cap");
    admissionOn_ = true;
    bagCap_ = queue_cap;
    shedQueueFull_ = std::make_unique<Scalar>(
        sim_.stats(), "base.shedQueueFull",
        "tasks refused: shared bag at capacity");
    tasksExpired_ = std::make_unique<Scalar>(
        sim_.stats(), "base.tasksExpired",
        "queued tasks dropped: deadline became unreachable");
    e2eLatency_ = std::make_unique<Histogram>(
        sim_.stats(), "base.e2eLatency",
        "release-to-completion latency of completed tasks (cycles)",
        0.0, latency_hist_max, 64);
}

bool
BaselineChip::tryInjectTask(const workloads::TaskSpec &task)
{
    if (admissionOn_ && bag_.size() >= bagCap_) {
        ++*shedQueueFull_;
        return false;
    }
    bag_.push_back(task);
    return true;
}

void
BaselineChip::taskDone(SwThread &t, Cycle now)
{
    ++tasksDone_;
    lastTaskFinish_ = std::max(lastTaskFinish_, now);
    if (t.hasTask && t.task.hasDeadline() && now > t.task.deadline)
        ++deadlineMisses_;
    if (admissionOn_ && t.hasTask)
        e2eLatency_->sample(static_cast<double>(now - t.task.release));
    nextTask(t, now);
}

void
BaselineChip::restartWorker(SwThread &t, Cycle now)
{
    if (t.hasTask) {
        // Progress is lost; the task re-runs from scratch.
        bag_.push_front(t.task);
        t.hasTask = false;
        --activeTasks_;
    }
    // Outstanding miss callbacks stay valid: they only decrement the
    // in-flight counters once the restarted thread is Runnable.
    t.hung = false;
    t.mshrBlocked = false;
    t.stream.reset();
    t.hasPending = false;
    t.state = SwThread::State::Runnable;
    t.readyAt = now + params_.threadCreateCost;
}

bool
BaselineChip::injectWorkerFault(bool hang, Rng &rng, Cycle now)
{
    if (threads_.empty())
        return false;
    const std::uint32_t n =
        static_cast<std::uint32_t>(threads_.size());
    const std::uint32_t start =
        static_cast<std::uint32_t>(rng.nextBelow(n));
    for (std::uint32_t i = 0; i < n; ++i) {
        SwThread &t = threads_[(start + i) % n];
        if (!t.hasTask || t.hung ||
            t.state == SwThread::State::Starting ||
            t.state == SwThread::State::Finished)
            continue;
        if (hang) {
            t.hung = true;
            t.hungSince = now;
            ++workerHangs_;
        } else {
            ++workerKills_;
            restartWorker(t, now);
        }
        if (sim_.trace().enabled(TraceCat::Fault))
            sim_.trace().instant(
                TraceCat::Fault,
                hang ? "base.workerHang" : "base.workerKill", now,
                t.id);
        return true;
    }
    return false;
}

void
BaselineChip::armRecovery(Cycle interval, Cycle timeout)
{
    if (interval == 0 || timeout == 0)
        fatal("baseline: zero recovery interval");
    recoveryOn_ = true;
    recoveryInterval_ = interval;
    recoveryTimeout_ = timeout;
}

fault::FaultTargets
BaselineChip::faultTargets()
{
    fault::FaultTargets t;
    t.coreHang = [this](Rng &rng, Cycle now, const fault::FaultSpec &) {
        return injectWorkerFault(/*hang=*/true, rng, now);
    };
    t.coreKill = [this](Rng &rng, Cycle now, const fault::FaultSpec &) {
        return injectWorkerFault(/*hang=*/false, rng, now);
    };
    t.dramStall = [this](Rng &rng, Cycle now,
                         const fault::FaultSpec &spec) {
        const std::uint32_t ch = static_cast<std::uint32_t>(
            rng.nextBelow(params_.dram.channels));
        dram_->stallChannel(ch, spec.dramStallDuration, now);
        return true;
    };
    t.armContinuous = [this](const fault::FaultSpec &spec, Rng &) {
        armRecovery(spec.heartbeatInterval, spec.hangTimeout);
    };
    t.progress = [this]() {
        return static_cast<std::uint64_t>(committed_.value()) +
               static_cast<std::uint64_t>(tasksDone_.value()) +
               dram_->requestsServed();
    };
    return t;
}

void
BaselineChip::nextTask(SwThread &t, Cycle now)
{
    if (t.hasTask) {
        t.hasTask = false;
        --activeTasks_;
    }
    // Early drop: don't burn a worker's time (taskPopCost plus the
    // whole task body) on requests that can no longer meet their
    // deadline; goodput under overload comes from this triage.
    while (admissionOn_ && !bag_.empty()) {
        const workloads::TaskSpec &head = bag_.front();
        if (!head.hasDeadline() || now + head.numOps <= head.deadline)
            break;
        ++*tasksExpired_;
        bag_.pop_front();
    }
    if (bag_.empty()) {
        // Worker parks on the empty queue and polls again shortly
        // (condition-variable wait in a real server loop).
        t.hasTask = false;
        t.stream.reset();
        t.state = SwThread::State::Runnable;
        t.readyAt = now + 500;
        return;
    }
    t.task = bag_.front();
    bag_.pop_front();
    t.hasTask = true;
    ++activeTasks_;
    t.hasPending = false;
    t.fetchOff = 0;
    const std::string &kernel =
        t.task.profile ? t.task.profile->name : std::string("task");
    t.pcBase = kernelCodeBase(kernel);
    t.stream = std::make_unique<workloads::ProfileStream>(
        *t.task.profile, layoutFor(t), t.task.numOps, t.task.seed);
    t.state = SwThread::State::Runnable;
    t.readyAt = now + params_.taskPopCost;
}

bool
BaselineChip::fetchOk(Core &core, SwThread &t, Cycle now)
{
    // A server binary's resident code path is larger than the
    // extracted kernel (runtime/library/OS-stack code), and each
    // software thread takes data-dependent paths through a different
    // window of it, so the union of live code grows with the thread
    // count -- the source of Fig. 1b's rising starvation.
    const std::uint64_t kernel_fp = std::max<std::uint64_t>(
        3 * (t.task.profile ? t.task.profile->instrFootprint
                            : std::uint64_t{8 * 1024}),
        256);
    const std::uint64_t binary = 16 * kernel_fp;
    const Addr window =
        (static_cast<Addr>(t.id) * (kernel_fp / 2)) %
        (binary - kernel_fp);
    const Addr pc = t.pcBase + window + (t.fetchOff % kernel_fp);
    t.fetchOff += 16;
    if (core.l1i->access(pc, false).hit)
        return true;
    ++starveCycles_;
    if (core.l2->access(pc, false).hit) {
        t.readyAt = std::max(t.readyAt, now + params_.l2HitLatency);
        return false;
    }
    if (llc_->access(pc, false).hit) {
        t.readyAt = std::max(t.readyAt, now + params_.llcHitLatency);
        return false;
    }
    t.readyAt = std::max(t.readyAt, now + params_.memLatency);
    return false;
}

void
BaselineChip::memAccess(Core &core, SwThread &t, Addr addr,
                        bool is_store, Cycle now)
{
    // Address translation: a DTLB miss serialises a page walk in
    // front of the access (walks mostly hit the caches, ~22 cycles).
    if (!core.dtlb->access(addr & ~static_cast<Addr>(
                               params_.pageBytes - 1), false).hit)
        t.readyAt = std::max(t.readyAt,
                             now + params_.tlbWalkLatency);
    if (core.l1d->access(addr, is_store).hit) {
        l1Latency_.sample(
            static_cast<double>(params_.l1d.hitLatency));
        return;
    }
    if (core.l2->access(addr, is_store).hit) {
        l2Latency_.sample(static_cast<double>(params_.l2HitLatency));
        if (!is_store && t.rng.chance(params_.dependStall * 0.5))
            t.readyAt = std::max(t.readyAt,
                                 now + params_.l2HitLatency);
        return;
    }
    const auto llc_res = llc_->access(addr, is_store);
    if (llc_res.writeback)
        dram_->serve(llc_res.victimAddr, 64, now, nullptr,
                     /*is_write=*/true);
    if (llc_res.hit) {
        // Shared LLC: queueing grows mildly with in-flight misses.
        const double lat = static_cast<double>(params_.llcHitLatency) +
            static_cast<double>(pendingMisses_) / 16.0;
        llcLatency_.sample(lat);
        if (!is_store && t.rng.chance(params_.dependStall))
            t.readyAt = std::max(
                t.readyAt, now + static_cast<Cycle>(lat));
        return;
    }

    // DRAM fill.
    ++t.outstanding;
    ++pendingMisses_;
    const std::uint32_t tid = t.id;
    dram_->serve(addr, 64, now, [this, tid]() {
        SwThread &th = threads_[tid];
        --th.outstanding;
        --pendingMisses_;
        if (th.state == SwThread::State::Stalled) {
            th.state = SwThread::State::Runnable;
            th.readyAt = std::max(th.readyAt, sim_.now());
            th.mshrBlocked = false;
        }
    });

    if (!is_store && t.rng.chance(params_.dependStall)) {
        t.state = SwThread::State::Stalled;
        return;
    }
    if (t.outstanding >= params_.mshrPerThread) {
        t.state = SwThread::State::Stalled;
        t.mshrBlocked = true;
    }
}

bool
BaselineChip::executeOp(Core &core, SwThread &t, const MicroOp &op,
                        Cycle now)
{
    const auto consume = [&t, this]() {
        t.hasPending = false;
        ++committed_;
        ++slotsUsed_;
    };

    switch (op.kind) {
      case OpKind::Halt:
        t.hasPending = false;
        taskDone(t, now);
        return false;
      case OpKind::Alu:
      case OpKind::Mul:
      case OpKind::Fp:
        // OoO execution hides fixed ALU/FP latencies.
        consume();
        return true;
      case OpKind::Branch:
        consume();
        ++branches_;
        if (op.mispredict) {
            ++branchMisses_;
            t.readyAt = now + params_.branchPenalty;
            return false;
        }
        return true;
      case OpKind::Load:
      case OpKind::Store:
        consume();
        memAccess(core, t, op.addr, op.isStore(), now);
        return t.state == SwThread::State::Runnable;
    }
    panic("baseline: bad op kind");
}

void
BaselineChip::tick(Cycle now)
{
    if (liveThreads_ == 0)
        return;
    ++cycles_;

    // OS watchdog: restart workers hung past the timeout.
    if (recoveryOn_ && now >= nextScan_) {
        nextScan_ = now + recoveryInterval_;
        for (auto &t : threads_) {
            if (t.hung && now - t.hungSince >= recoveryTimeout_) {
                ++recoveries_;
                restartWorker(t, now);
            }
        }
    }

    for (auto &core : cores_) {
        // OS time slicing when software threads oversubscribe a slot.
        if (now >= core.nextRotate) {
            core.nextRotate = now + params_.schedQuantum;
            for (auto &slot : core.slots) {
                if (slot.size() > 1) {
                    slot.push_back(slot.front());
                    slot.pop_front();
                    SwThread &in = threads_[slot.front()];
                    in.readyAt = std::max(
                        in.readyAt, now + params_.contextSwitchCost);
                    ++switches_;
                }
            }
        }

        slotsOffered_ += static_cast<double>(params_.issueWidth);
        std::uint32_t budget = params_.issueWidth;
        for (auto &slot : core.slots) {
            if (budget == 0 || slot.empty())
                continue;
            SwThread &t = threads_[slot.front()];
            if (t.hung)
                continue; // frozen fault: holds the slot until restart
            if (t.state == SwThread::State::Starting) {
                if (now >= t.readyAt) {
                    --startingCount_;
                    nextTask(t, now);
                }
                continue;
            }
            if (t.state != SwThread::State::Runnable ||
                t.readyAt > now)
                continue;
            if (!t.hasTask) {
                nextTask(t, now); // poll the queue again
                if (!t.hasTask)
                    continue;
            }
            const double ilp =
                (t.task.profile ? t.task.profile->ilp : 2.0) *
                params_.ilpBoost;
            const auto base_cap = static_cast<std::uint32_t>(ilp);
            const std::uint32_t cap = base_cap +
                (t.rng.chance(ilp - base_cap) ? 1u : 0u);
            if (!fetchOk(core, t, now))
                continue;
            std::uint32_t issued = 0;
            while (budget > 0 && issued < cap &&
                   t.state == SwThread::State::Runnable &&
                   t.readyAt <= now) {
                if (!t.hasPending) {
                    if (!t.stream ||
                        !t.stream->next(t.pending)) {
                        taskDone(t, now);
                        break;
                    }
                    t.hasPending = true;
                }
                const MicroOp op = t.pending;
                const double before = committed_.value();
                const bool more = executeOp(core, t, op, now);
                if (committed_.value() > before) {
                    ++issued;
                    --budget;
                }
                if (!more)
                    break;
            }
        }
    }

    // Run completion (non-persistent pools): once the bag is dry and
    // every worker has parked, retire the pool so the simulator can
    // go idle.
    if (!persistent_ && bag_.empty() && pendingMisses_ == 0 &&
        activeTasks_ == 0 && startingCount_ == 0 &&
        liveThreads_ > 0) {
        for (auto &t : threads_) {
            if (t.state != SwThread::State::Finished) {
                t.state = SwThread::State::Finished;
                --liveThreads_;
            }
        }
    }
}

bool
BaselineChip::busy() const
{
    if (liveThreads_ == 0)
        return false;
    if (!persistent_)
        return true;
    return !bag_.empty() || pendingMisses_ > 0 || activeTasks_ > 0 ||
           startingCount_ > 0;
}

BaselineMetrics
BaselineChip::metrics() const
{
    BaselineMetrics m;
    m.cycles = static_cast<Cycle>(cycles_.value());
    m.tasksCompleted =
        static_cast<std::uint64_t>(tasksDone_.value());
    m.opsCommitted = static_cast<std::uint64_t>(committed_.value());
    if (m.cycles > 0) {
        m.aggregateIpc = committed_.value() / cycles_.value();
        m.tasksPerMCycle = 1e6 * tasksDone_.value() / cycles_.value();
    }
    const double offered = slotsOffered_.value();
    if (offered > 0.0) {
        m.idleSlotRatio = 1.0 - slotsUsed_.value() / offered;
        m.cpuUtilisation = slotsUsed_.value() / offered;
        m.starvationRatio = starveCycles_.value() /
            (offered / params_.issueWidth);
    }
    if (branches_.value() > 0.0)
        m.branchMissRatio = branchMisses_.value() / branches_.value();

    double l1h = 0, l1m = 0, l2h = 0, l2m = 0;
    for (const auto &core : cores_) {
        l1h += static_cast<double>(core.l1d->hits());
        l1m += static_cast<double>(core.l1d->misses());
        l2h += static_cast<double>(core.l2->hits());
        l2m += static_cast<double>(core.l2->misses());
    }
    if (l1h + l1m > 0.0)
        m.l1MissRatio = l1m / (l1h + l1m);
    if (l2h + l2m > 0.0)
        m.l2MissRatio = l2m / (l2h + l2m);
    m.llcMissRatio = llc_->missRatio();
    m.l1AvgLatency = l1Latency_.value();
    m.l2AvgLatency = l2Latency_.value();
    m.llcAvgLatency = llcLatency_.value();
    m.deadlineMisses =
        static_cast<std::uint64_t>(deadlineMisses_.value());
    m.lastTaskFinish = lastTaskFinish_;
    return m;
}

} // namespace smarco::baseline
