/**
 * @file
 * Conventional-CMP baseline standing in for the Intel Xeon E7-8890V4
 * the paper compares against (Table 2, Figs. 1, 22, 23).
 *
 * 24 out-of-order cores with 2-way SMT, a three-level cache hierarchy
 * (32 KB L1I/L1D, 256 KB L2 per core, 60 MB shared LLC) and 85 GB/s
 * of memory bandwidth. Out-of-order latency tolerance is approximated
 * by miss-level parallelism (loads only stall the thread when the
 * MSHR window fills or a dependence is drawn), and the OS threading
 * model charges thread-creation, task-queue and context-switch costs
 * so software-threading overhead appears at high thread counts
 * exactly where Fig. 23 shows it.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_campaign.hpp"
#include "isa/instr_stream.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workloads/profile_stream.hpp"
#include "workloads/task.hpp"

namespace smarco::baseline {

/** Configuration of the conventional chip. */
struct BaselineParams {
    std::string name = "xeon-e7-8890v4";
    std::uint32_t numCores = 24;
    std::uint32_t smtPerCore = 2;
    double freqGHz = 2.2;
    std::uint32_t issueWidth = 4;
    /** OoO cores extract more ILP than the profile's in-order value. */
    double ilpBoost = 1.5;
    /** Outstanding L1 misses a hardware thread tolerates (MLP). */
    std::uint32_t mshrPerThread = 6;
    /** Probability a miss is promptly consumed (ROB stalls on it). */
    double dependStall = 0.30;
    Cycle branchPenalty = 16;          ///< deep OoO pipeline flush
    Cycle l2HitLatency = 12;
    Cycle llcHitLatency = 38;
    Cycle memLatency = 180;            ///< ~82 ns at 2.2 GHz
    /** Second-level DTLB entries (4 KB pages). HTC's scattered
     *  record probes over multi-GB datasets miss here constantly;
     *  the SmarCo accelerator uses segment-based unified addressing
     *  and pays no equivalent cost (DESIGN.md). */
    std::uint32_t tlbEntries = 256;
    std::uint32_t pageBytes = 4096;
    Cycle tlbWalkLatency = 22;

    mem::CacheParams l1i{"l1i", 32 * 1024, 8, 64, 2};
    mem::CacheParams l1d{"l1d", 32 * 1024, 8, 64, 4};
    mem::CacheParams l2{"l2", 256 * 1024, 8, 64, 12};
    mem::CacheParams llc{"llc", 60 * 1024 * 1024, 20, 64, 38};

    /** 85 GB/s at 2.2 GHz core clock = 38.6 B/cycle across 4 channels. */
    mem::DramParams dram{4, 9.66, 180, 2, 16, 64};

    // --- OS / software threading model -----------------------------------
    Cycle threadCreateCost = 30000;
    Cycle contextSwitchCost = 5000;
    Cycle schedQuantum = 100000;
    /** Cost of popping the shared task queue (lock + dispatch). */
    Cycle taskPopCost = 600;
    /** Per-thread "hot data" region (stack/TLS) in bytes. */
    std::uint64_t hotRegionBytes = 24 * 1024;
};

/** Aggregated results of one baseline run. */
struct BaselineMetrics {
    Cycle cycles = 0;
    std::uint64_t tasksCompleted = 0;
    std::uint64_t opsCommitted = 0;
    double aggregateIpc = 0.0;
    double tasksPerMCycle = 0.0;
    double idleSlotRatio = 0.0;
    double starvationRatio = 0.0;
    double branchMissRatio = 0.0;
    double l1MissRatio = 0.0;
    double l2MissRatio = 0.0;
    double llcMissRatio = 0.0;
    double l1AvgLatency = 0.0;
    double l2AvgLatency = 0.0;
    double llcAvgLatency = 0.0;
    double cpuUtilisation = 0.0; ///< busy issue slots / all slots
    std::uint64_t deadlineMisses = 0;
    /** Finish cycle of the last completed task (see ChipMetrics). */
    Cycle lastTaskFinish = 0;
};

/**
 * The conventional chip. Usage: construct, submit tasks with a
 * software-thread count, run the simulator, read metrics().
 */
class BaselineChip : public Ticking
{
  public:
    BaselineChip(Simulator &sim, BaselineParams params);

    /**
     * Create num_threads software worker threads that drain the given
     * task bag. Threads are created serially by a main thread (cost
     * threadCreateCost each), then repeatedly pop tasks until the bag
     * empties.
     */
    void spawnWorkers(std::uint32_t num_threads,
                      std::vector<workloads::TaskSpec> tasks,
                      bool persistent = false);

    /** Append tasks to the shared bag while workers run (CDN). */
    void injectTask(const workloads::TaskSpec &task);

    /**
     * Overload control for open-loop injection: bound the shared bag
     * at queue_cap tasks and, at pop time, drop queued tasks whose
     * deadline has become unreachable (the software analogue of the
     * SmarCo schedulers' admission + early-drop). Also records an
     * end-to-end latency histogram of completions. Off by default —
     * an uncontrolled run keeps its stats dump byte-identical.
     */
    void enableAdmission(std::uint32_t queue_cap,
                         double latency_hist_max = 4'000'000.0);

    /**
     * Bounded-bag injection: false when admission is on and the bag
     * is full (the caller owns the retry policy — never drop
     * silently). Without admission this always succeeds.
     */
    bool tryInjectTask(const workloads::TaskSpec &task);

    std::uint64_t tasksShed() const
    { return shedQueueFull_
          ? static_cast<std::uint64_t>(shedQueueFull_->value())
          : 0; }
    std::uint64_t tasksExpired() const
    { return tasksExpired_
          ? static_cast<std::uint64_t>(tasksExpired_->value())
          : 0; }

    void tick(Cycle now) override;
    bool busy() const override;
    /** A chip with no live software thread sleeps until spawn. */
    Cycle nextActiveCycle(Cycle now) const override
    { return liveThreads_ == 0 ? kNoCycle : now + 1; }

    BaselineMetrics metrics() const;
    const BaselineParams &params() const { return params_; }
    std::uint64_t tasksCompleted() const
    { return static_cast<std::uint64_t>(tasksDone_.value()); }

    /**
     * Fault model: hang (thread freezes holding its SMT slot until
     * the OS watchdog restarts it) or kill (the worker dies; its task
     * returns to the shared bag and the thread respawns, paying
     * threadCreateCost). The victim is a pseudo-randomly chosen
     * worker that currently holds a task.
     * @return false when no eligible victim exists.
     */
    bool injectWorkerFault(bool hang, Rng &rng, Cycle now);

    /** OS watchdog: scan every interval, restart workers hung for
     *  at least timeout cycles. */
    void armRecovery(Cycle interval, Cycle timeout);

    /** Injection surfaces for a fault::FaultCampaign (core + DRAM
     *  only: the baseline has no ring NoC or MACT). */
    fault::FaultTargets faultTargets();

    std::uint64_t workerKills() const
    { return static_cast<std::uint64_t>(workerKills_.value()); }
    std::uint64_t workerRecoveries() const
    { return static_cast<std::uint64_t>(recoveries_.value()); }

  private:
    /** One software thread. */
    struct SwThread {
        enum class State : std::uint8_t {
            Starting, Runnable, Stalled, Finished
        };
        State state = State::Starting;
        std::unique_ptr<workloads::ProfileStream> stream;
        workloads::TaskSpec task;
        bool hasTask = false;
        Cycle readyAt = 0;
        std::uint32_t outstanding = 0; ///< in-flight L1 miss count
        bool mshrBlocked = false;
        Addr pcBase = 0;
        std::uint64_t fetchOff = 0;
        isa::MicroOp pending{};
        bool hasPending = false;
        /** Fault model: frozen in place, holding its SMT slot. */
        bool hung = false;
        Cycle hungSince = 0;
        Rng rng{0, 0};
        std::uint32_t id = 0;
    };

    /** One physical core: its private caches, DTLB and SMT slots. */
    struct Core {
        std::unique_ptr<mem::Cache> l1i;
        std::unique_ptr<mem::Cache> l1d;
        std::unique_ptr<mem::Cache> l2;
        std::unique_ptr<mem::Cache> dtlb;
        /** Software threads affined to each SMT slot, front = live. */
        std::vector<std::deque<std::uint32_t>> slots;
        Cycle nextRotate = 0;
    };

    workloads::AddressLayout layoutFor(const SwThread &t) const;
    void nextTask(SwThread &t, Cycle now);
    /** Record a completion (deadline check) and pop the next task. */
    void taskDone(SwThread &t, Cycle now);
    /** Return the worker's task to the bag and respawn it. */
    void restartWorker(SwThread &t, Cycle now);
    bool fetchOk(Core &core, SwThread &t, Cycle now);
    /** @return true when the thread may keep issuing this cycle. */
    bool executeOp(Core &core, SwThread &t, const isa::MicroOp &op,
                   Cycle now);
    void memAccess(Core &core, SwThread &t, Addr addr, bool is_store,
                   Cycle now);

    Simulator &sim_;
    BaselineParams params_;
    std::vector<Core> cores_;
    std::vector<SwThread> threads_;
    std::unique_ptr<mem::Cache> llc_;
    std::unique_ptr<mem::DramController> dram_;
    std::deque<workloads::TaskSpec> bag_;
    std::uint64_t liveThreads_ = 0;
    std::uint64_t pendingMisses_ = 0;
    std::uint64_t activeTasks_ = 0;   ///< threads mid-task
    std::uint64_t startingCount_ = 0; ///< threads not yet created
    bool persistent_ = false;         ///< CDN-style worker pool
    bool admissionOn_ = false;
    std::uint32_t bagCap_ = 0;
    bool recoveryOn_ = false;
    Cycle recoveryInterval_ = 10'000;
    Cycle recoveryTimeout_ = 60'000;
    Cycle nextScan_ = 0;
    Cycle lastTaskFinish_ = 0;

    Scalar committed_;
    Scalar cycles_;
    Scalar slotsOffered_;
    Scalar slotsUsed_;
    Scalar starveCycles_;
    Scalar branches_;
    Scalar branchMisses_;
    Scalar tasksDone_;
    Scalar switches_;
    Scalar deadlineMisses_;
    Scalar workerKills_;
    Scalar workerHangs_;
    Scalar recoveries_;
    Average l1Latency_;
    Average l2Latency_;
    Average llcLatency_;
    // Lazily created on enableAdmission() (see that method's doc).
    std::unique_ptr<Scalar> shedQueueFull_;
    std::unique_ptr<Scalar> tasksExpired_;
    std::unique_ptr<Histogram> e2eLatency_;
};

} // namespace smarco::baseline
