/**
 * @file
 * NoC packet and endpoint naming.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/types.hpp"

namespace smarco::noc {

/** Classes of NoC endpoints on the SmarCo chip. */
enum class NodeKind : std::uint8_t {
    Core,    ///< one of the 256 TCG cores
    MemCtrl, ///< one of the 4 DDR controllers on the main ring
    Gateway, ///< sub-ring <-> main-ring router (MACT lives here)
    Io       ///< PCIe / host interface stop on the main ring
};

/** Address of a NoC endpoint. */
struct NodeId {
    NodeKind kind = NodeKind::Core;
    std::uint32_t index = 0;

    bool
    operator==(const NodeId &o) const
    {
        return kind == o.kind && index == o.index;
    }
};

/** Human-readable endpoint name, e.g. "core42" or "mc1". */
std::string toString(NodeId node);

/** Payload classes, for statistics and interception decisions. */
enum class PacketKind : std::uint8_t {
    MemReadReq,
    MemWriteReq,
    MemReadResp,
    MemWriteAck,
    MactBatchReq,
    MactBatchResp,
    DmaChunk,
    SpmRemoteReq,
    SpmRemoteResp,
    Control
};

std::string toString(PacketKind kind);

/**
 * One NoC packet. Semantics travel in the onDeliver closure set by
 * the sender; the network only moves bytes and invokes the closure at
 * the destination. meta carries a sender-defined token (request id)
 * for interceptors that need it.
 */
struct Packet {
    std::uint64_t id = 0;
    NodeId src;
    NodeId dst;
    PacketKind kind = PacketKind::Control;
    std::uint32_t payloadBytes = 8;
    bool priority = false;
    Cycle created = 0;
    std::uint64_t meta = 0;
    std::function<void()> onDeliver;
};

} // namespace smarco::noc
