/**
 * @file
 * Bidirectional ring with high-density sliced links (Sections 3.2-3.3).
 *
 * Both the main ring and the sub-rings are built from this class.
 * Each direction owns a number of fixed 64-bit datapaths plus a pool
 * of bidirectional datapaths assigned per cycle to the more loaded
 * direction. Links are sliced into self-governed narrow channels;
 * the switch allocator greedily packs as many queued packets as fit
 * into one cycle's slices (high-density NoC). Setting the slice size
 * equal to the full direction width recovers a conventional wide
 * link, where one small packet wastes the whole cycle.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "noc/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace smarco::noc {

/** Configuration of one ring instance. */
struct RingParams {
    std::string name = "ring";
    std::uint32_t numStops = 17;
    /** Bytes per cycle of the fixed datapaths of ONE direction. */
    std::uint32_t fixedBytesPerDir = 8;
    /** Bytes per cycle of the shared bidirectional datapath pool. */
    std::uint32_t flexBytes = 16;
    /** Unit in which the flex pool is assigned (one datapath). */
    std::uint32_t flexUnitBytes = 8;
    /**
     * High-density slice width in bytes. 0 means conventional mode:
     * the whole per-direction width acts as a single channel.
     */
    std::uint32_t sliceBytes = 2;
    /** Max packets a stop's through-queue holds per direction. */
    std::uint32_t stopQueueCap = 16;
    /** Max packets a stop's injection queue holds per direction. */
    std::uint32_t injectQueueCap = 64;
    /** Packets a stop may eject per direction per cycle. */
    std::uint32_t ejectPerCycle = 2;
};

/**
 * Link-level fault model (see src/fault/). A dropped packet is lost
 * at the end of its link crossing — the wire bytes are already spent,
 * as with a real CRC-fail-at-receiver — and the sender's NACK timer
 * re-enqueues it at the head of the source queue after nackDelay.
 * Once a packet has been retransmitted maxRetransmits times it rides
 * a protected (assumed ECC-escorted) channel and can no longer drop,
 * so delivery is guaranteed and faulted runs always drain.
 */
struct RingFaultParams {
    /** Per-link-crossing drop probability (0 disables). */
    double dropProb = 0.0;
    /** Cycles from loss to the retransmission re-entering the queue. */
    Cycle nackDelay = 12;
    /** Drops after which a packet becomes undroppable. */
    std::uint32_t maxRetransmits = 4;
    /** Fault RNG (a named "fault.*" stream); not owned, may be null
     *  when dropProb is 0. */
    Rng *rng = nullptr;
};

/**
 * The ring. Stops are indexed 0..numStops-1; direction 0 moves from
 * stop i to i+1 (mod N), direction 1 the other way. Packets are
 * injected with a destination stop; delivery invokes the stop's
 * handler. Direction is chosen at injection: shortest path, switched
 * when the preferred side is congested (Fig. 7).
 */
class Ring : public Ticking
{
  public:
    using Handler = std::function<void(Packet &&)>;

    Ring(Simulator &sim, RingParams params,
         const std::string &stat_prefix);

    /** Install the ejection handler of a stop. */
    void setHandler(std::uint32_t stop, Handler handler);

    /**
     * Inject a packet at src_stop destined for dst_stop.
     * @return false when the injection queue is full (backpressure).
     */
    bool inject(std::uint32_t src_stop, std::uint32_t dst_stop,
                Packet &&pkt);

    void tick(Cycle now) override;
    bool busy() const override { return inFlight_ > 0; }
    /** Quiet rings sleep; inject() wakes them. */
    Cycle nextActiveCycle(Cycle now) const override
    { return inFlight_ > 0 ? now + 1 : kNoCycle; }

    /** Hop count from a to b along the given direction. */
    std::uint32_t distance(std::uint32_t a, std::uint32_t b,
                           std::uint32_t dir) const;

    const RingParams &params() const { return params_; }
    std::uint64_t packetsDelivered() const
    { return static_cast<std::uint64_t>(delivered_.value()); }
    double avgHopLatency() const { return hopLatency_.value(); }
    /** Fraction of link capacity carrying payload so far. */
    double utilisation(Cycle elapsed) const;
    std::uint64_t inFlight() const { return inFlight_; }

    /** Enable/update the probabilistic link fault model. */
    void setFaults(const RingFaultParams &faults);

    /**
     * Deterministic test hook: drop the next count eligible link
     * crossings regardless of dropProb (each still NACKs/retransmits).
     */
    void armDrop(std::uint32_t count);

    /**
     * Deterministic test hook: duplicate the next count full link
     * crossings of packets with a nonzero id. Arming (or a dup-capable
     * campaign) also turns on receiver-side duplicate suppression.
     */
    void armDuplicate(std::uint32_t count);

    /**
     * Degrade the (stop, dir) link to factor x its normal budget until
     * the given cycle (budgets are floored at one byte per cycle).
     */
    void degradeLink(std::uint32_t stop, std::uint32_t dir,
                     double factor, Cycle until);

    std::uint64_t faultDrops() const
    { return static_cast<std::uint64_t>(drops_.value()); }
    std::uint64_t retransmits() const
    { return static_cast<std::uint64_t>(retransmits_.value()); }
    std::uint64_t dupsSuppressed() const
    { return static_cast<std::uint64_t>(dupsSuppressed_.value()); }

  private:
    struct Transit {
        Packet pkt;
        std::uint32_t dstStop = 0;
        std::uint32_t remBytes = 0;
        Cycle enqueued = 0;
        /** Times this packet has been dropped and re-sent. */
        std::uint32_t retries = 0;
    };

    struct Degrade {
        std::uint32_t stop;
        std::uint32_t dir;
        double factor;
        Cycle until;
    };

    struct Stop {
        std::deque<Transit> through[2];
        std::deque<Transit> inject[2];
        /** Arrivals staged during the current tick. */
        std::vector<Transit> staged[2];
        Handler handler;
    };

    /** Queued payload bytes wanting to leave stop s in direction d. */
    std::uint64_t pendingBytes(const Stop &s, std::uint32_t d) const;
    std::uint32_t dirBudget(const Stop &s, std::uint32_t stop_idx,
                            std::uint32_t d, Cycle now) const;
    void eject(Stop &s, std::uint32_t stop_idx, Cycle now);
    /** Slice-quantised wire bytes a payload consumes. */
    std::uint32_t quantise(std::uint32_t bytes,
                           std::uint32_t slice) const;
    /** Fault model: does this completed crossing get dropped? */
    bool shouldDrop(const Transit &t);
    /** NACK path: re-enqueue t at the source stop after nackDelay. */
    void scheduleRetransmit(std::uint32_t src_stop, std::uint32_t d,
                            Transit t, Cycle now);
    /** Receiver dedup window: true when id was delivered recently. */
    bool dedupSeen(std::uint64_t id);
    void dedupRecord(std::uint64_t id);

    Simulator &sim_;
    RingParams params_;
    std::vector<Stop> stops_;
    std::uint64_t inFlight_ = 0;

    RingFaultParams faults_;
    std::uint32_t dropArm_ = 0;
    std::uint32_t dupArm_ = 0;
    /** Receiver-side dedup active (only once duplication is possible,
     *  so clean runs pay nothing). */
    bool dedupOn_ = false;
    std::deque<std::uint64_t> dedupFifo_;
    std::unordered_set<std::uint64_t> dedupSet_;
    std::vector<Degrade> degrades_;

    Scalar delivered_;
    Scalar injected_;
    Scalar injectRejects_;
    Scalar bytesMoved_;
    Scalar wireBytesUsed_;
    Scalar cyclesTicked_;
    Scalar drops_;
    Scalar retransmits_;
    Scalar dupsSuppressed_;
    Scalar linkDegrades_;
    Average hopLatency_;
    Average occupancy_;
};

} // namespace smarco::noc
