#include "noc/packet.hpp"

#include "sim/logging.hpp"

namespace smarco::noc {

std::string
toString(NodeId node)
{
    const char *prefix = nullptr;
    switch (node.kind) {
      case NodeKind::Core: prefix = "core"; break;
      case NodeKind::MemCtrl: prefix = "mc"; break;
      case NodeKind::Gateway: prefix = "gw"; break;
      case NodeKind::Io: prefix = "io"; break;
    }
    if (!prefix)
        panic("toString: bad NodeKind");
    return strprintf("%s%u", prefix, node.index);
}

std::string
toString(PacketKind kind)
{
    switch (kind) {
      case PacketKind::MemReadReq: return "mem-read-req";
      case PacketKind::MemWriteReq: return "mem-write-req";
      case PacketKind::MemReadResp: return "mem-read-resp";
      case PacketKind::MemWriteAck: return "mem-write-ack";
      case PacketKind::MactBatchReq: return "mact-batch-req";
      case PacketKind::MactBatchResp: return "mact-batch-resp";
      case PacketKind::DmaChunk: return "dma-chunk";
      case PacketKind::SpmRemoteReq: return "spm-remote-req";
      case PacketKind::SpmRemoteResp: return "spm-remote-resp";
      case PacketKind::Control: return "control";
    }
    panic("toString: bad PacketKind %d", static_cast<int>(kind));
}

} // namespace smarco::noc
