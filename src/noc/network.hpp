/**
 * @file
 * Hierarchical ring network (Section 3.2, Fig. 4).
 *
 * 256 cores sit on 16 sub-rings of 16 cores each; every sub-ring
 * connects to the main ring through a gateway router. Four memory
 * controllers are spaced equally around the main ring, plus I/O
 * (PCIe/host) stops. This class owns all the rings, installs the
 * routing handlers, and exposes a single send() interface between
 * NodeIds. The chip hooks gateway interceptors for the MACT.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/packet.hpp"
#include "noc/ring.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace smarco::noc {

/** Configuration of the whole on-chip network. */
struct NetworkParams {
    std::uint32_t numSubRings = 16;
    std::uint32_t coresPerSubRing = 16;
    std::uint32_t numMemCtrls = 4;
    std::uint32_t numIo = 2;
    /**
     * Main ring: 512-bit total = 64 B/cycle; per direction three
     * fixed 64-bit datapaths (24 B) plus two bidirectional (16 B).
     */
    std::uint32_t mainFixedBytesPerDir = 24;
    std::uint32_t mainFlexBytes = 16;
    /**
     * Sub-ring: 256-bit total = 32 B/cycle; one fixed datapath per
     * direction (8 B) plus two bidirectional (16 B).
     */
    std::uint32_t subFixedBytesPerDir = 8;
    std::uint32_t subFlexBytes = 16;
    /** High-density slice width; 0 = conventional wide links. */
    std::uint32_t sliceBytes = 2;
    std::uint32_t stopQueueCap = 16;
    std::uint32_t injectQueueCap = 64;
};

/**
 * The hierarchical ring NoC. Endpoint handlers receive packets whose
 * dst matches their NodeId; unhandled deliveries fall back to the
 * packet's own onDeliver closure.
 */
class Network
{
  public:
    using Handler = std::function<void(Packet &&)>;
    /** Gateway hook for sub-ring-to-main-ring packets; return true
     *  to consume the packet (MACT collection). */
    using Interceptor = std::function<bool(Packet &)>;

    Network(Simulator &sim, NetworkParams params,
            const std::string &stat_prefix);

    /** Register the consumer of packets addressed to node. */
    void setEndpointHandler(NodeId node, Handler handler);

    /** Hook outbound packets at a sub-ring's gateway. */
    void setGatewayInterceptor(std::uint32_t sub_ring,
                               Interceptor interceptor);

    /**
     * Send a packet from pkt.src to pkt.dst. Delivery is guaranteed;
     * congestion shows up as latency, not loss.
     */
    void send(Packet &&pkt);

    std::uint32_t numCores() const
    { return params_.numSubRings * params_.coresPerSubRing; }
    std::uint32_t subRingOf(CoreId core) const
    { return core / params_.coresPerSubRing; }
    std::uint32_t subStopOf(CoreId core) const
    { return core % params_.coresPerSubRing; }

    Ring &mainRing() { return *main_; }
    Ring &subRing(std::uint32_t i) { return *subs_[i]; }
    const NetworkParams &params() const { return params_; }

    std::uint64_t packetsDelivered() const
    { return static_cast<std::uint64_t>(delivered_.value()); }
    /** Injection attempts bounced by a full ring inject queue (each
     *  is retried next cycle — backpressure, never loss). */
    std::uint64_t injectRejected() const
    { return static_cast<std::uint64_t>(injectRejected_.value()); }
    double avgEndToEndLatency() const { return endToEnd_.value(); }
    /** Packets currently queued or traversing any ring. */
    std::uint64_t totalInFlight() const
    {
        std::uint64_t n = main_->inFlight();
        for (const auto &s : subs_)
            n += s->inFlight();
        return n;
    }
    /** Aggregate link utilisation across all rings. */
    double utilisation(Cycle elapsed) const;

  private:
    /** Main-ring stop index of a gateway / MC / IO node. */
    std::uint32_t mainStopOf(NodeId node) const;
    /** Main-ring stop a packet must reach for its final dst. */
    std::uint32_t mainStopFor(NodeId dst) const;
    void injectWithRetry(Ring &ring, std::uint32_t src,
                         std::uint32_t dst, Packet &&pkt);
    void deliver(Packet &&pkt);
    void onSubRingEject(std::uint32_t sub_ring, Packet &&pkt);
    void onMainRingEject(std::uint32_t stop, Packet &&pkt);

    Simulator &sim_;
    NetworkParams params_;
    std::unique_ptr<Ring> main_;
    std::vector<std::unique_ptr<Ring>> subs_;
    /** main-ring stop index -> node at that stop. */
    std::vector<NodeId> mainLayout_;
    /** gateway index -> main-ring stop. */
    std::vector<std::uint32_t> gatewayStop_;
    /** mem-ctrl index -> main-ring stop. */
    std::vector<std::uint32_t> mcStop_;
    /** io index -> main-ring stop. */
    std::vector<std::uint32_t> ioStop_;

    std::vector<Handler> coreHandlers_;
    std::vector<Handler> mcHandlers_;
    std::vector<Handler> ioHandlers_;
    std::vector<Handler> gatewayHandlers_;
    std::vector<Interceptor> interceptors_;

    std::uint64_t nextPacketId_ = 1;

    Scalar delivered_;
    Average endToEnd_;
    Scalar gatewayCrossings_;
    Scalar injectRejected_;
};

} // namespace smarco::noc
