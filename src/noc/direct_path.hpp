/**
 * @file
 * Direct memory-access datapath (Section 3.5.2, Fig. 14).
 *
 * Each sub-ring owns a dedicated star-shaped link to the memory
 * complex so that control messages and high-real-time-priority read
 * requests can bypass the rings entirely, keeping their latency
 * predictable even when the NoC is congested.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace smarco::noc {

/** Configuration of the star datapath. */
struct DirectPathParams {
    bool enabled = true;
    std::uint32_t numSubRings = 16;
    /** One-way latency of a star link, in cycles. */
    Cycle linkLatency = 6;
    /** Bytes one star link moves per cycle. */
    double bytesPerCycle = 8.0;
};

/**
 * Star links from sub-rings to the memory complex. transfer() moves
 * payload_bytes one way and fires done at arrival; each link is a
 * bandwidth-limited pipe with FIFO queueing.
 */
class DirectPath
{
  public:
    using Done = std::function<void()>;

    DirectPath(Simulator &sim, DirectPathParams params,
               const std::string &stat_prefix);

    bool enabled() const { return params_.enabled; }

    /**
     * Move payload_bytes over sub-ring's star link starting at now;
     * done fires at the arrival cycle.
     */
    void transfer(std::uint32_t sub_ring, std::uint32_t payload_bytes,
                  Cycle now, Done done);

    std::uint64_t transfers() const
    { return static_cast<std::uint64_t>(transfers_.value()); }
    double avgLatency() const { return latency_.value(); }

  private:
    Simulator &sim_;
    DirectPathParams params_;
    std::vector<Cycle> nextFree_;

    Scalar transfers_;
    Scalar bytes_;
    Average latency_;
};

} // namespace smarco::noc
