#include "noc/ring.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::noc {

Ring::Ring(Simulator &sim, RingParams params,
           const std::string &stat_prefix)
    : sim_(sim),
      params_(std::move(params)),
      stops_(params_.numStops),
      delivered_(sim.stats(), stat_prefix + ".delivered",
                 "packets delivered"),
      injected_(sim.stats(), stat_prefix + ".injected",
                "packets injected"),
      injectRejects_(sim.stats(), stat_prefix + ".injectRejects",
                     "injections refused (queue full)"),
      bytesMoved_(sim.stats(), stat_prefix + ".bytesMoved",
                  "payload bytes moved across links"),
      wireBytesUsed_(sim.stats(), stat_prefix + ".wireBytesUsed",
                     "slice-quantised wire bytes consumed"),
      cyclesTicked_(sim.stats(), stat_prefix + ".cycles",
                    "cycles this ring was ticked"),
      drops_(sim.stats(), stat_prefix + ".faultDrops",
             "packets dropped by the link fault model"),
      retransmits_(sim.stats(), stat_prefix + ".retransmits",
                   "NACK-triggered retransmissions"),
      dupsSuppressed_(sim.stats(), stat_prefix + ".dupsSuppressed",
                      "duplicate deliveries suppressed at ejection"),
      linkDegrades_(sim.stats(), stat_prefix + ".linkDegrades",
                    "link degradation windows applied"),
      hopLatency_(sim.stats(), stat_prefix + ".latency",
                  "mean in-ring packet latency (cycles)"),
      occupancy_(sim.stats(), stat_prefix + ".occupancy",
                 "mean queued packets per cycle")
{
    if (params_.numStops < 3)
        fatal("ring %s: need at least 3 stops", params_.name.c_str());
    if (params_.fixedBytesPerDir == 0 && params_.flexBytes == 0)
        fatal("ring %s: zero link width", params_.name.c_str());
    // Slices wider than a datapath are clamped to the per-cycle
    // budget at transfer time (they behave like conventional links).
    sim.addTicking(this);
}

void
Ring::setHandler(std::uint32_t stop, Handler handler)
{
    if (stop >= stops_.size())
        panic("ring %s: setHandler on stop %u of %zu",
              params_.name.c_str(), stop, stops_.size());
    stops_[stop].handler = std::move(handler);
}

std::uint32_t
Ring::distance(std::uint32_t a, std::uint32_t b, std::uint32_t dir) const
{
    const std::uint32_t n = params_.numStops;
    return dir == 0 ? (b + n - a) % n : (a + n - b) % n;
}

std::uint32_t
Ring::quantise(std::uint32_t bytes, std::uint32_t slice) const
{
    return ((bytes + slice - 1) / slice) * slice;
}

bool
Ring::inject(std::uint32_t src_stop, std::uint32_t dst_stop,
             Packet &&pkt)
{
    if (src_stop >= stops_.size() || dst_stop >= stops_.size())
        panic("ring %s: inject %u->%u out of range",
              params_.name.c_str(), src_stop, dst_stop);
    if (src_stop == dst_stop)
        panic("ring %s: self-injection at stop %u",
              params_.name.c_str(), src_stop);

    Stop &s = stops_[src_stop];

    // Direction choice (Fig. 7): shortest path first, but divert to
    // the longer way when the preferred side is clearly congested and
    // the detour is not much longer.
    const std::uint32_t d0 = distance(src_stop, dst_stop, 0);
    const std::uint32_t d1 = distance(src_stop, dst_stop, 1);
    std::uint32_t dir = d0 <= d1 ? 0 : 1;
    const std::uint32_t alt = dir ^ 1;
    const std::uint64_t pref_q =
        s.inject[dir].size() + s.through[dir].size();
    const std::uint64_t alt_q =
        s.inject[alt].size() + s.through[alt].size();
    const std::uint32_t detour =
        (dir == 0 ? d1 : d0) - std::min(d0, d1);
    if (pref_q > alt_q + 4 && detour <= params_.numStops / 4)
        dir = alt;

    if (s.inject[dir].size() >= params_.injectQueueCap) {
        ++injectRejects_;
        return false;
    }

    Transit t;
    t.dstStop = dst_stop;
    t.remBytes = std::max<std::uint32_t>(pkt.payloadBytes, 1);
    t.enqueued = sim_.now();
    t.pkt = std::move(pkt);
    const std::uint32_t traced_bytes = t.remBytes;
    if (t.pkt.priority)
        s.inject[dir].push_front(std::move(t));
    else
        s.inject[dir].push_back(std::move(t));
    ++inFlight_;
    ++injected_;
    sim_.wake(this);
    if (sim_.trace().enabled(TraceCat::Noc))
        sim_.trace().instant(
            TraceCat::Noc, params_.name + ".inject", sim_.now(),
            src_stop,
            strprintf("{\"dst\":%u,\"dir\":%u,\"bytes\":%u}",
                      dst_stop, dir, traced_bytes));
    return true;
}

std::uint64_t
Ring::pendingBytes(const Stop &s, std::uint32_t d) const
{
    std::uint64_t total = 0;
    for (const auto &t : s.through[d])
        total += t.remBytes;
    for (const auto &t : s.inject[d])
        total += t.remBytes;
    return total;
}

void
Ring::setFaults(const RingFaultParams &faults)
{
    faults_ = faults;
    if (faults_.dropProb > 0.0 && !faults_.rng)
        panic("ring %s: dropProb without an RNG", params_.name.c_str());
}

void
Ring::armDrop(std::uint32_t count)
{
    dropArm_ += count;
}

void
Ring::armDuplicate(std::uint32_t count)
{
    dupArm_ += count;
    dedupOn_ = true;
}

void
Ring::degradeLink(std::uint32_t stop, std::uint32_t dir, double factor,
                  Cycle until)
{
    if (stop >= stops_.size() || dir > 1)
        panic("ring %s: degradeLink(%u, %u) out of range",
              params_.name.c_str(), stop, dir);
    degrades_.push_back({stop, dir, factor, until});
    ++linkDegrades_;
    if (sim_.trace().enabled(TraceCat::Fault))
        sim_.trace().complete(
            TraceCat::Fault, params_.name + ".degrade", sim_.now(),
            until, stop,
            strprintf("{\"dir\":%u,\"factor\":%f}", dir, factor));
}

bool
Ring::shouldDrop(const Transit &t)
{
    if (t.retries >= faults_.maxRetransmits)
        return false; // protected retransmission: must get through
    if (dropArm_ > 0) {
        --dropArm_;
        return true;
    }
    return faults_.dropProb > 0.0 && faults_.rng &&
        faults_.rng->chance(faults_.dropProb);
}

void
Ring::scheduleRetransmit(std::uint32_t src_stop, std::uint32_t d,
                         Transit t, Cycle now)
{
    ++drops_;
    ++retransmits_;
    if (sim_.trace().enabled(TraceCat::Fault))
        sim_.trace().instant(
            TraceCat::Fault, params_.name + ".drop", now, src_stop,
            strprintf("{\"dir\":%u,\"retries\":%u}", d, t.retries));
    // The packet stays accounted in inFlight_ (the ring remains busy)
    // while the NACK is in flight; the retransmission re-enters at
    // the head of the source through-queue, ahead of younger traffic.
    sim_.events().schedule(
        now + faults_.nackDelay,
        [this, src_stop, d, t = std::move(t)]() mutable {
            stops_[src_stop].through[d].push_front(std::move(t));
            sim_.wake(this);
        });
}

bool
Ring::dedupSeen(std::uint64_t id)
{
    return dedupSet_.count(id) != 0;
}

void
Ring::dedupRecord(std::uint64_t id)
{
    if (!dedupSet_.insert(id).second)
        return;
    dedupFifo_.push_back(id);
    if (dedupFifo_.size() > 512) {
        dedupSet_.erase(dedupFifo_.front());
        dedupFifo_.pop_front();
    }
}

std::uint32_t
Ring::dirBudget(const Stop &s, std::uint32_t stop_idx, std::uint32_t d,
                Cycle now) const
{
    std::uint32_t budget = params_.fixedBytesPerDir;
    if (params_.flexBytes > 0) {
        // Assign each bidirectional datapath unit to the direction
        // with more pending bytes this cycle.
        const std::uint64_t p0 = pendingBytes(s, 0);
        const std::uint64_t p1 = pendingBytes(s, 1);
        const std::uint32_t units =
            params_.flexBytes / params_.flexUnitBytes;
        std::uint32_t mine = 0;
        if (p0 == p1) {
            mine = units / 2 + (d == 0 ? units % 2 : 0);
        } else {
            const std::uint32_t heavy = p0 > p1 ? 0u : 1u;
            // Heavier side takes all but one unit (keeps a trickle
            // flowing the other way), unless the light side is empty.
            const std::uint64_t light_pending = heavy == 0 ? p1 : p0;
            std::uint32_t heavy_units =
                light_pending == 0 ? units
                                   : (units > 1 ? units - 1 : units);
            mine = d == heavy ? heavy_units : units - heavy_units;
        }
        budget += mine * params_.flexUnitBytes;
    }
    bool degraded = false;
    for (const Degrade &g : degrades_) {
        if (g.stop == stop_idx && g.dir == d && now < g.until) {
            budget = static_cast<std::uint32_t>(
                static_cast<double>(budget) * g.factor);
            degraded = true;
        }
    }
    // A degraded link still trickles (floored at one byte per cycle)
    // so traffic behind it drains instead of wedging.
    return degraded ? std::max<std::uint32_t>(budget, 1) : budget;
}

void
Ring::eject(Stop &s, std::uint32_t stop_idx, Cycle now)
{
    // The ejection port mirrors the link: sliced links can sink
    // several small packets per cycle, a conventional wide link
    // delivers one packet per cycle per direction.
    const std::uint32_t port_bytes =
        params_.fixedBytesPerDir + params_.flexBytes;
    for (std::uint32_t d = 0; d < 2; ++d) {
        const std::uint32_t slice = params_.sliceBytes == 0
            ? port_bytes
            : std::min(params_.sliceBytes, port_bytes);
        std::uint32_t remaining = port_bytes;
        while (!s.through[d].empty() && remaining > 0) {
            Transit &head = s.through[d].front();
            if (head.dstStop != stop_idx)
                break;
            const std::uint32_t need =
                quantise(std::max<std::uint32_t>(
                             head.pkt.payloadBytes, 1), slice);
            if (need > remaining && remaining != port_bytes)
                break; // next cycle
            remaining -= std::min(need, remaining);
            Packet pkt = std::move(head.pkt);
            const Cycle lat = now - pkt.created;
            s.through[d].pop_front();
            --inFlight_;
            if (dedupOn_ && pkt.id != 0) {
                if (dedupSeen(pkt.id)) {
                    // Retired duplicate: port bytes were consumed,
                    // but the payload is delivered exactly once.
                    ++dupsSuppressed_;
                    continue;
                }
                dedupRecord(pkt.id);
            }
            ++delivered_;
            hopLatency_.sample(static_cast<double>(lat));
            if (sim_.trace().enabled(TraceCat::Noc))
                sim_.trace().instant(
                    TraceCat::Noc, params_.name + ".eject", now,
                    stop_idx,
                    strprintf("{\"latency\":%llu,\"bytes\":%u}",
                              static_cast<unsigned long long>(lat),
                              std::max<std::uint32_t>(
                                  pkt.payloadBytes, 1)));
            if (s.handler)
                s.handler(std::move(pkt));
            else if (pkt.onDeliver)
                pkt.onDeliver();
        }
    }
}

void
Ring::tick(Cycle now)
{
    // Empty ring: a provable no-op, so the kernel may skip it (the
    // cycles/occupancy stats deliberately cover loaded cycles only —
    // identical in fast-forward and tick-every-cycle mode).
    if (inFlight_ == 0)
        return;
    ++cyclesTicked_;

    std::uint64_t queued = 0;
    for (auto &s : stops_)
        for (std::uint32_t d = 0; d < 2; ++d)
            queued += s.through[d].size() + s.inject[d].size();
    occupancy_.sample(static_cast<double>(queued));

    // Phase 1: ejection at every stop.
    for (std::uint32_t i = 0; i < stops_.size(); ++i)
        eject(stops_[i], i, now);

    // Phase 2: link traversal. Arrivals are staged so a packet moves
    // at most one hop per cycle.
    const std::uint32_t n = params_.numStops;
    for (std::uint32_t i = 0; i < n; ++i) {
        Stop &s = stops_[i];
        for (std::uint32_t d = 0; d < 2; ++d) {
            const std::uint32_t next = d == 0 ? (i + 1) % n
                                              : (i + n - 1) % n;
            Stop &ns = stops_[next];
            const std::uint32_t budget = dirBudget(s, i, d, now);
            const std::uint32_t slice = params_.sliceBytes == 0
                ? budget
                : std::min(params_.sliceBytes, budget);
            std::uint32_t remaining = budget;

            // Greedy switch allocation: drain through-traffic first,
            // then local injections, packing packets while slices
            // remain (Section 3.3).
            for (int source = 0; source < 2 && remaining > 0; ++source) {
                auto &q = source == 0 ? s.through[d] : s.inject[d];
                while (!q.empty() && remaining > 0) {
                    if (ns.through[d].size() + ns.staged[d].size() >=
                        params_.stopQueueCap)
                        break; // backpressure: next stop is full
                    Transit &head = q.front();
                    if (source == 0 && head.dstStop == i)
                        break; // waits for next cycle's eject phase
                    const std::uint32_t need =
                        quantise(head.remBytes, slice);
                    const std::uint32_t grant =
                        std::min(need, (remaining / slice) * slice);
                    if (grant == 0)
                        break;
                    remaining -= grant;
                    wireBytesUsed_ += static_cast<double>(grant);
                    const std::uint32_t moved =
                        std::min(head.remBytes, grant);
                    bytesMoved_ += static_cast<double>(moved);
                    head.remBytes -= moved;
                    if (head.remBytes == 0) {
                        // Fully across: restore wire size for the
                        // next link and stage at the neighbour.
                        Transit t = std::move(head);
                        q.pop_front();
                        t.remBytes = std::max<std::uint32_t>(
                            t.pkt.payloadBytes, 1);
                        if ((dropArm_ > 0 ||
                             faults_.dropProb > 0.0) &&
                            shouldDrop(t)) {
                            // Lost at the end of the crossing: the
                            // wire bytes above are already spent.
                            ++t.retries;
                            scheduleRetransmit(i, d, std::move(t),
                                               now);
                        } else if (dupArm_ > 0 && t.pkt.id != 0) {
                            --dupArm_;
                            Transit copy = t;
                            ++inFlight_;
                            ns.staged[d].push_back(std::move(t));
                            ns.staged[d].push_back(std::move(copy));
                        } else {
                            ns.staged[d].push_back(std::move(t));
                        }
                    } else {
                        break; // partially sent; keeps the channel
                    }
                }
            }
        }
    }

    // Phase 3: merge staged arrivals.
    for (auto &s : stops_) {
        for (std::uint32_t d = 0; d < 2; ++d) {
            for (auto &t : s.staged[d])
                s.through[d].push_back(std::move(t));
            s.staged[d].clear();
        }
    }
}

double
Ring::utilisation(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    const double capacity =
        static_cast<double>(params_.numStops) *
        (2.0 * params_.fixedBytesPerDir + params_.flexBytes) *
        static_cast<double>(elapsed);
    return capacity > 0.0 ? wireBytesUsed_.value() / capacity : 0.0;
}

} // namespace smarco::noc
