#include "noc/network.hpp"

#include <utility>

#include "sim/logging.hpp"

namespace smarco::noc {

Network::Network(Simulator &sim, NetworkParams params,
                 const std::string &stat_prefix)
    : sim_(sim),
      params_(params),
      coreHandlers_(numCores()),
      mcHandlers_(params.numMemCtrls),
      ioHandlers_(params.numIo),
      gatewayHandlers_(params.numSubRings),
      interceptors_(params.numSubRings),
      delivered_(sim.stats(), stat_prefix + ".delivered",
                 "packets delivered end to end"),
      endToEnd_(sim.stats(), stat_prefix + ".endToEnd",
                "mean end-to-end packet latency (cycles)"),
      gatewayCrossings_(sim.stats(), stat_prefix + ".gatewayCrossings",
                        "packets crossing a sub/main gateway"),
      injectRejected_(sim.stats(), stat_prefix + ".injectRejected",
                      "injections bounced by a full inject queue "
                      "(retried next cycle)")
{
    if (params_.numSubRings == 0 || params_.coresPerSubRing == 0)
        fatal("network: empty topology");
    if (params_.numMemCtrls == 0)
        fatal("network: need at least one memory controller");
    if (params_.numSubRings % params_.numMemCtrls != 0)
        fatal("network: %u MCs cannot be equally spaced among %u "
              "gateways", params_.numMemCtrls, params_.numSubRings);

    // Main-ring layout: MCs equally spaced between gateway groups,
    // I/O stops at the end (Fig. 4).
    const std::uint32_t group = params_.numSubRings / params_.numMemCtrls;
    std::uint32_t g = 0;
    for (std::uint32_t m = 0; m < params_.numMemCtrls; ++m) {
        for (std::uint32_t k = 0; k < group; ++k, ++g) {
            gatewayStop_.push_back(
                static_cast<std::uint32_t>(mainLayout_.size()));
            mainLayout_.push_back(NodeId{NodeKind::Gateway, g});
        }
        mcStop_.push_back(static_cast<std::uint32_t>(mainLayout_.size()));
        mainLayout_.push_back(NodeId{NodeKind::MemCtrl, m});
    }
    for (std::uint32_t i = 0; i < params_.numIo; ++i) {
        ioStop_.push_back(static_cast<std::uint32_t>(mainLayout_.size()));
        mainLayout_.push_back(NodeId{NodeKind::Io, i});
    }

    RingParams mp;
    mp.name = "mainRing";
    mp.numStops = static_cast<std::uint32_t>(mainLayout_.size());
    mp.fixedBytesPerDir = params_.mainFixedBytesPerDir;
    mp.flexBytes = params_.mainFlexBytes;
    mp.sliceBytes = params_.sliceBytes;
    mp.stopQueueCap = params_.stopQueueCap;
    mp.injectQueueCap = params_.injectQueueCap;
    main_ = std::make_unique<Ring>(sim, mp, stat_prefix + ".main");
    for (std::uint32_t s = 0; s < mp.numStops; ++s) {
        main_->setHandler(s, [this, s](Packet &&pkt) {
            onMainRingEject(s, std::move(pkt));
        });
    }

    for (std::uint32_t r = 0; r < params_.numSubRings; ++r) {
        RingParams sp;
        sp.name = strprintf("subRing%u", r);
        sp.numStops = params_.coresPerSubRing + 1; // + gateway stop
        sp.fixedBytesPerDir = params_.subFixedBytesPerDir;
        sp.flexBytes = params_.subFlexBytes;
        sp.sliceBytes = params_.sliceBytes;
        sp.stopQueueCap = params_.stopQueueCap;
        sp.injectQueueCap = params_.injectQueueCap;
        subs_.push_back(std::make_unique<Ring>(
            sim, sp, strprintf("%s.sub%u", stat_prefix.c_str(), r)));
        for (std::uint32_t s = 0; s < sp.numStops; ++s) {
            subs_[r]->setHandler(s, [this, r](Packet &&pkt) {
                onSubRingEject(r, std::move(pkt));
            });
        }
    }
}

void
Network::setEndpointHandler(NodeId node, Handler handler)
{
    switch (node.kind) {
      case NodeKind::Core:
        if (node.index >= coreHandlers_.size())
            panic("network: bad core endpoint %u", node.index);
        coreHandlers_[node.index] = std::move(handler);
        return;
      case NodeKind::MemCtrl:
        if (node.index >= mcHandlers_.size())
            panic("network: bad MC endpoint %u", node.index);
        mcHandlers_[node.index] = std::move(handler);
        return;
      case NodeKind::Io:
        if (node.index >= ioHandlers_.size())
            panic("network: bad IO endpoint %u", node.index);
        ioHandlers_[node.index] = std::move(handler);
        return;
      case NodeKind::Gateway:
        if (node.index >= gatewayHandlers_.size())
            panic("network: bad gateway endpoint %u", node.index);
        gatewayHandlers_[node.index] = std::move(handler);
        return;
    }
    panic("network: bad endpoint kind");
}

void
Network::setGatewayInterceptor(std::uint32_t sub_ring,
                               Interceptor interceptor)
{
    if (sub_ring >= interceptors_.size())
        panic("network: bad interceptor sub-ring %u", sub_ring);
    interceptors_[sub_ring] = std::move(interceptor);
}

std::uint32_t
Network::mainStopOf(NodeId node) const
{
    switch (node.kind) {
      case NodeKind::Gateway:
        return gatewayStop_[node.index];
      case NodeKind::MemCtrl:
        return mcStop_[node.index];
      case NodeKind::Io:
        return ioStop_[node.index];
      case NodeKind::Core:
        break;
    }
    panic("network: node %s has no main-ring stop",
          toString(node).c_str());
}

std::uint32_t
Network::mainStopFor(NodeId dst) const
{
    if (dst.kind == NodeKind::Core)
        return gatewayStop_[subRingOf(dst.index)];
    return mainStopOf(dst);
}

void
Network::injectWithRetry(Ring &ring, std::uint32_t src,
                         std::uint32_t dst, Packet &&pkt)
{
    if (ring.inject(src, dst, std::move(pkt)))
        return;
    // Injection queue full: model an endpoint-side buffer by
    // retrying next cycle. Congestion thus shows up as latency.
    ++injectRejected_;
    auto retry = [this, &ring, src, dst, p = std::move(pkt)]() mutable {
        injectWithRetry(ring, src, dst, std::move(p));
    };
    sim_.events().scheduleAfter(sim_.now(), 1, std::move(retry));
}

void
Network::send(Packet &&pkt)
{
    if (pkt.id == 0)
        pkt.id = nextPacketId_++;
    if (pkt.created == 0)
        pkt.created = sim_.now();
    if (pkt.src == pkt.dst) {
        deliver(std::move(pkt));
        return;
    }

    switch (pkt.src.kind) {
      case NodeKind::Core: {
        const std::uint32_t r = subRingOf(pkt.src.index);
        const std::uint32_t src_stop = subStopOf(pkt.src.index);
        std::uint32_t dst_stop;
        if (pkt.dst.kind == NodeKind::Core &&
            subRingOf(pkt.dst.index) == r) {
            dst_stop = subStopOf(pkt.dst.index);
        } else if (pkt.dst.kind == NodeKind::Gateway &&
                   pkt.dst.index == r) {
            dst_stop = params_.coresPerSubRing;
        } else {
            dst_stop = params_.coresPerSubRing; // local gateway
        }
        injectWithRetry(*subs_[r], src_stop, dst_stop, std::move(pkt));
        return;
      }
      case NodeKind::Gateway: {
        const std::uint32_t r = pkt.src.index;
        if (pkt.dst.kind == NodeKind::Core &&
            subRingOf(pkt.dst.index) == r) {
            injectWithRetry(*subs_[r], params_.coresPerSubRing,
                            subStopOf(pkt.dst.index), std::move(pkt));
        } else {
            injectWithRetry(*main_, gatewayStop_[r],
                            mainStopFor(pkt.dst), std::move(pkt));
        }
        return;
      }
      case NodeKind::MemCtrl:
      case NodeKind::Io: {
        injectWithRetry(*main_, mainStopOf(pkt.src),
                        mainStopFor(pkt.dst), std::move(pkt));
        return;
      }
    }
    panic("network: bad source kind");
}

void
Network::deliver(Packet &&pkt)
{
    ++delivered_;
    endToEnd_.sample(static_cast<double>(sim_.now() - pkt.created));

    Handler *h = nullptr;
    switch (pkt.dst.kind) {
      case NodeKind::Core: h = &coreHandlers_[pkt.dst.index]; break;
      case NodeKind::MemCtrl: h = &mcHandlers_[pkt.dst.index]; break;
      case NodeKind::Io: h = &ioHandlers_[pkt.dst.index]; break;
      case NodeKind::Gateway: h = &gatewayHandlers_[pkt.dst.index]; break;
    }
    if (h && *h) {
        (*h)(std::move(pkt));
        return;
    }
    if (pkt.onDeliver) {
        pkt.onDeliver();
        return;
    }
    warn("network: packet %llu (%s) delivered to %s with no handler",
         static_cast<unsigned long long>(pkt.id),
         toString(pkt.kind).c_str(), toString(pkt.dst).c_str());
}

void
Network::onSubRingEject(std::uint32_t sub_ring, Packet &&pkt)
{
    // A packet ejected inside a sub-ring either reached its final
    // core, or reached the gateway stop on its way out.
    if (pkt.dst.kind == NodeKind::Core &&
        subRingOf(pkt.dst.index) == sub_ring) {
        deliver(std::move(pkt));
        return;
    }
    if (pkt.dst.kind == NodeKind::Gateway &&
        pkt.dst.index == sub_ring) {
        deliver(std::move(pkt));
        return;
    }
    // Outbound: offer to the gateway interceptor (MACT), then cross
    // onto the main ring.
    ++gatewayCrossings_;
    if (interceptors_[sub_ring] && interceptors_[sub_ring](pkt))
        return;
    injectWithRetry(*main_, gatewayStop_[sub_ring],
                    mainStopFor(pkt.dst), std::move(pkt));
}

void
Network::onMainRingEject(std::uint32_t stop, Packet &&pkt)
{
    const NodeId here = mainLayout_[stop];
    if (pkt.dst == here) {
        deliver(std::move(pkt));
        return;
    }
    if (here.kind == NodeKind::Gateway) {
        // Descend into the sub-ring towards the destination core.
        ++gatewayCrossings_;
        const std::uint32_t r = here.index;
        if (pkt.dst.kind != NodeKind::Core || subRingOf(pkt.dst.index) != r)
            panic("network: packet %llu for %s ejected at %s",
                  static_cast<unsigned long long>(pkt.id),
                  toString(pkt.dst).c_str(), toString(here).c_str());
        injectWithRetry(*subs_[r], params_.coresPerSubRing,
                        subStopOf(pkt.dst.index), std::move(pkt));
        return;
    }
    panic("network: stray packet %llu for %s at main stop %u",
          static_cast<unsigned long long>(pkt.id),
          toString(pkt.dst).c_str(), stop);
}

double
Network::utilisation(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    // Capacity-weighted mean of per-ring utilisation.
    double used = 0.0;
    double cap = 0.0;
    const auto ringCap = [](const Ring &r) {
        return static_cast<double>(r.params().numStops) *
               (2.0 * r.params().fixedBytesPerDir +
                r.params().flexBytes);
    };
    used += main_->utilisation(elapsed) * ringCap(*main_);
    cap += ringCap(*main_);
    for (const auto &s : subs_) {
        used += s->utilisation(elapsed) * ringCap(*s);
        cap += ringCap(*s);
    }
    return cap > 0.0 ? used / cap : 0.0;
}

} // namespace smarco::noc
