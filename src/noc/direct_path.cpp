#include "noc/direct_path.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/logging.hpp"

namespace smarco::noc {

DirectPath::DirectPath(Simulator &sim, DirectPathParams params,
                       const std::string &stat_prefix)
    : sim_(sim),
      params_(params),
      nextFree_(params.numSubRings, 0),
      transfers_(sim.stats(), stat_prefix + ".transfers",
                 "direct-path transfers"),
      bytes_(sim.stats(), stat_prefix + ".bytes",
             "direct-path payload bytes"),
      latency_(sim.stats(), stat_prefix + ".latency",
               "mean direct-path latency (cycles)")
{
    if (params_.numSubRings == 0)
        fatal("direct path: zero sub-rings");
    if (params_.bytesPerCycle <= 0.0)
        fatal("direct path: non-positive bandwidth");
}

void
DirectPath::transfer(std::uint32_t sub_ring,
                     std::uint32_t payload_bytes, Cycle now, Done done)
{
    if (!params_.enabled)
        panic("direct path used while disabled");
    if (sub_ring >= nextFree_.size())
        panic("direct path: bad sub-ring %u", sub_ring);

    const Cycle start = std::max(now, nextFree_[sub_ring]);
    const Cycle serialise = static_cast<Cycle>(std::ceil(
        static_cast<double>(payload_bytes) / params_.bytesPerCycle));
    nextFree_[sub_ring] = start + std::max<Cycle>(serialise, 1);
    const Cycle arrive = start + params_.linkLatency + serialise;

    ++transfers_;
    bytes_ += static_cast<double>(payload_bytes);
    latency_.sample(static_cast<double>(arrive - now));

    if (done)
        sim_.events().schedule(arrive, std::move(done));
}

} // namespace smarco::noc
